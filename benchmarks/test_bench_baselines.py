"""Network-loading comparison across all three protocols (Section 5).

Asserts both baseline failure modes: flooding maximizes broker load and
wasted deliveries; match-first matches link matching's message counts but
pays growing header bytes for its destination lists.
"""

from __future__ import annotations

from conftest import archive_table, paper_scale

from repro.experiments import BaselineConfig, run_baseline_comparison


def baseline_config() -> BaselineConfig:
    if paper_scale():
        return BaselineConfig(
            subscription_counts=(500, 2000, 8000),
            subscribers_per_broker=10,
            num_events_per_publisher=300,
        )
    return BaselineConfig(
        subscription_counts=(100, 400, 1600),
        subscribers_per_broker=3,
        num_events_per_publisher=120,
    )


def test_network_loading_comparison(once):
    config = baseline_config()
    table = once(lambda: run_baseline_comparison(config))
    archive_table(
        "baseline_network_loading",
        table,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    rows = {}
    for row in table.rows:
        by_column = dict(zip(table.columns, row))
        rows[(by_column["subscriptions"], by_column["protocol"])] = by_column
    for count in config.subscription_counts:
        lm = rows[(count, "link-matching")]
        flood = rows[(count, "flooding")]
        match_first = rows[(count, "match-first")]
        # Flooding loads every broker and wastes deliveries.
        assert flood["broker_msgs"] > lm["broker_msgs"]
        assert flood["wasted_deliveries"] > 0
        assert lm["wasted_deliveries"] == 0
        # Match-first uses the same links but fatter messages.
        assert match_first["link_msgs"] == lm["link_msgs"]
        assert match_first["link_kbytes"] > lm["link_kbytes"]
        assert match_first["hdr_bytes_per_delivery"] > 0
        assert lm["hdr_bytes_per_delivery"] == 0
