"""Chart 3 — prototype matching time vs number of subscriptions.

Regenerates the paper's Chart 3 on this machine: average wall-clock matching
time per event as the subscription count grows to 25,000 (the paper's top
point; their 200 MHz Pentium Pro took ~4 ms there).  The asserted shape is
sublinear growth of matching *steps* in the subscription count.
"""

from __future__ import annotations

from conftest import archive_table, paper_scale

from repro.experiments import Chart3Config, run_chart3


def chart3_config() -> Chart3Config:
    if paper_scale():
        return Chart3Config(
            subscription_counts=(1000, 5000, 10000, 25000), num_events=300
        )
    return Chart3Config(subscription_counts=(1000, 5000, 15000), num_events=120)


def test_chart3_matching_time(once):
    config = chart3_config()
    table = once(lambda: run_chart3(config))
    archive_table(
        "chart3_matching_time",
        table,
        engine=config.engine,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    subs = table.column("subscriptions")
    steps = table.column("avg_steps")
    for i in range(1, len(subs)):
        subscription_growth = subs[i] / subs[i - 1]
        step_growth = steps[i] / max(1, steps[i - 1])
        assert step_growth < subscription_growth, (
            "matching steps must grow sublinearly in the subscription count"
        )


def test_single_match_latency(benchmark):
    """Microbenchmark: one match against 10,000 subscriptions (the hot path
    the paper quotes at ~4 ms for 25,000 subscriptions on 1999 hardware)."""
    from repro.broker import MatchingEngine
    from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

    spec = CHART1_SPEC
    engine = MatchingEngine(
        spec.schema(),
        domains=spec.domains(),
        factoring_attributes=spec.factoring_attributes,
    )
    generator = SubscriptionGenerator(spec, seed=1)
    for subscription in generator.subscriptions_for(["c"], 10000):
        engine.matcher.insert(subscription)
    events = EventGenerator(spec, seed=2)
    sample = [events.event_for() for _ in range(64)]
    state = {"i": 0}

    def one_match():
        state["i"] = (state["i"] + 1) % len(sample)
        return engine.match(sample[state["i"]])

    benchmark(one_match)
