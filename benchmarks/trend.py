"""ASCII trend tables over a directory of ``BENCH_*.json`` artifacts.

Every benchmark entry point emits a schema-versioned artifact (see
:mod:`repro.obs.bench`); point this script at a directory of them —
``benchmarks/results/`` by default, or a directory of CI artifact
downloads — and it renders one trend table per benchmark name, ordered by
creation time, so perf drift across commits is visible without any plotting
dependency.

Run from the repo root::

    PYTHONPATH=src python benchmarks/trend.py
    PYTHONPATH=src python benchmarks/trend.py path/to/artifacts --metric engine.matches
    PYTHONPATH=src python benchmarks/trend.py --name compare_engines

``--metric`` adds a column with one counter (flat instrument key, exact or
prefix) from each artifact's embedded registry snapshot.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from repro.experiments.tables import ExperimentTable
from repro.obs.bench import load_bench_dir

DEFAULT_DIR = pathlib.Path(__file__).parent / "results"


def _metric_value(payload: Dict[str, Any], key: Optional[str]) -> Any:
    """One value from the embedded snapshot: exact flat key, else the sum of
    every instrument whose key starts with it (labeled families)."""
    if key is None:
        return ""
    metrics = payload.get("metrics", {})
    entry = metrics.get(key)
    if entry is not None:
        return entry.get("value", entry.get("count", ""))
    total = 0.0
    hit = False
    for flat_key, candidate in metrics.items():
        if flat_key.startswith(key):
            value = candidate.get("value", candidate.get("count"))
            if isinstance(value, (int, float)):
                total += value
                hit = True
    return total if hit else ""


def _speedup_cell(payload: Dict[str, Any]) -> Any:
    """compare_engines/batch_scaling/shard_scaling/backend_scaling/
    aggregation_scaling artifacts carry sweep rows in ``extra``.

    The cell shows the sweep's headline row: the vector kernel
    (backend_scaling), the largest subscription count (compare_engines and
    aggregation_scaling — the latter's baseline may be skipped at scale, so
    the cell can be empty), the pooled stream's largest batch
    (batch_scaling), or the churn stream's best serial shard count
    (shard_scaling).
    """
    rows = payload.get("extra", {}).get("rows")
    if not rows:
        return ""
    if any("mode" in row for row in rows):
        gate_row = next(
            (row for row in rows if row.get("backend") == "vector"), rows[0]
        )
    elif any("compression" in row for row in rows):
        # aggregation_scaling: rows also carry "subscriptions", so this
        # discriminant must be checked before the compare_engines one.
        gate_row = max(rows, key=lambda row: row.get("subscriptions", 0))
    elif any("subscriptions" in row for row in rows):
        gate_row = max(rows, key=lambda row: row.get("subscriptions", 0))
    elif any("shards" in row for row in rows):
        serial_churn = [
            row
            for row in rows
            if row.get("stream") == "churn"
            and row.get("workers") == 0
            and row.get("shards", 0) > 0
        ]
        if not serial_churn:
            return ""
        gate_row = max(serial_churn, key=lambda row: row.get("speedup", 0.0))
    else:
        gate_row = max(
            rows, key=lambda row: (row.get("stream") == "pooled", row.get("batch", 0))
        )
    speedup = gate_row.get("speedup")
    return f"{speedup:.2f}x" if isinstance(speedup, (int, float)) else ""


def _compression_cell(payload: Dict[str, Any]) -> Any:
    """Subscription-aggregation compression at the largest sweep point
    (aggregation_scaling artifacts only; empty for every other benchmark)."""
    rows = payload.get("extra", {}).get("rows") or []
    if not any("compression" in row for row in rows):
        return ""
    gate_row = max(rows, key=lambda row: row.get("subscriptions", 0))
    compression = gate_row.get("compression")
    return (
        f"{compression:.2f}x" if isinstance(compression, (int, float)) else ""
    )


def _ingest_cell(payload: Dict[str, Any]) -> Any:
    """Subscription-ingest throughput (aggregation_scaling artifacts only).

    Prefers the covering-index gate comparison (``extra.ingest_gate`` —
    indexed subs/s at the gate count), falling back to the largest sweep
    row's insert-loop throughput; empty for every other benchmark.
    """
    extra = payload.get("extra", {})
    gate = extra.get("ingest_gate")
    if isinstance(gate, dict):
        rate = gate.get("indexed_subs_per_s")
        if isinstance(rate, (int, float)):
            return f"{rate:,.0f}/s"
    rows = extra.get("rows") or []
    if not any("ingest_subs_per_s" in row for row in rows):
        return ""
    gate_row = max(rows, key=lambda row: row.get("subscriptions", 0))
    rate = gate_row.get("ingest_subs_per_s")
    return f"{rate:,.0f}/s" if isinstance(rate, (int, float)) else ""


def _hop_cost_cell(payload: Dict[str, Any]) -> Any:
    """Match-once step reduction at the deepest/largest sweep point
    (hop_cost artifacts only; empty for every other benchmark)."""
    rows = payload.get("extra", {}).get("rows") or []
    if not any("step_reduction" in row for row in rows):
        return ""
    gate_row = max(
        rows, key=lambda row: (row.get("depth", 0), row.get("subscriptions", 0))
    )
    reduction = gate_row.get("step_reduction")
    return f"{reduction:.2f}x" if isinstance(reduction, (int, float)) else ""


def _backend_cell(payload: Dict[str, Any]) -> Any:
    """The kernel backend a sweep ran on.

    backend_scaling artifacts sweep the whole axis; the other scripts
    record a single ``--backend`` choice in their workload block (absent
    or null means the engine default).
    """
    rows = payload.get("extra", {}).get("rows") or []
    if any("mode" in row for row in rows):
        # Same headline row the speedup cell shows.
        gate_row = next(
            (row for row in rows if row.get("backend") == "vector"), rows[0]
        )
        return gate_row.get("backend", "")
    return payload.get("workload", {}).get("backend") or ""


def trend_tables(
    payloads: List[Dict[str, Any]],
    *,
    metric: Optional[str] = None,
    only_name: Optional[str] = None,
) -> List[ExperimentTable]:
    """One table per benchmark name, rows ordered by ``created_unix``."""
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    for payload in payloads:
        if only_name is not None and payload["name"] != only_name:
            continue
        by_name.setdefault(payload["name"], []).append(payload)

    tables = []
    for name in sorted(by_name):
        columns = [
            "created", "git_sha", "engine", "backend", "wall_clock_s",
            "speedup", "compression", "ingest", "hop_cost",
        ]
        if metric:
            columns.append(metric)
        table = ExperimentTable(f"Trend: {name}", columns)
        for payload in by_name[name]:  # load_bench_dir sorts by created_unix
            created = time.strftime(
                "%Y-%m-%d %H:%M", time.localtime(payload["created_unix"])
            )
            wall = payload.get("wall_clock_s")
            row = [
                created,
                str(payload.get("git_sha", ""))[:10],
                payload.get("engine") or "",
                _backend_cell(payload),
                f"{wall:.2f}" if isinstance(wall, (int, float)) else "",
                _speedup_cell(payload),
                _compression_cell(payload),
                _ingest_cell(payload),
                _hop_cost_cell(payload),
            ]
            if metric:
                row.append(_metric_value(payload, metric))
            table.add_row(*row)
        tables.append(table)
    return tables


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "directory", nargs="?", default=str(DEFAULT_DIR),
        help=f"directory of BENCH_*.json files (default: {DEFAULT_DIR})",
    )
    parser.add_argument(
        "--metric", default=None, metavar="KEY",
        help="add a column with this instrument (flat key, exact or prefix)",
    )
    parser.add_argument(
        "--name", default=None, help="show only this benchmark name"
    )
    args = parser.parse_args(argv)

    payloads = load_bench_dir(args.directory)
    if not payloads:
        print(f"no BENCH_*.json artifacts under {args.directory}", file=sys.stderr)
        return 1
    tables = trend_tables(payloads, metric=args.metric, only_name=args.name)
    if not tables:
        print(f"no artifacts named {args.name!r} under {args.directory}", file=sys.stderr)
        return 1
    for table in tables:
        print(table.format())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
