"""Chart 2 — cumulative matching steps per hop count vs subscriptions.

Regenerates the paper's Chart 2: the average cumulative link-matching steps
for deliveries 1-6 broker hops from the publisher, against the centralized
(non-trit) algorithm's steps at the publishing broker.  The asserted shapes:
1-hop link matching costs less than centralized matching, and cumulative
steps grow with distance.
"""

from __future__ import annotations

from conftest import archive_table, paper_scale

from repro.experiments import Chart2Config, run_chart2


def chart2_config() -> Chart2Config:
    if paper_scale():
        return Chart2Config(
            subscription_counts=(2000, 4000, 6000, 8000, 10000),
            num_events=1000,
            subscribers_per_broker=10,
        )
    return Chart2Config(
        subscription_counts=(500, 1000, 2000),
        num_events=120,
        subscribers_per_broker=3,
    )


def test_chart2_matching_steps(once):
    config = chart2_config()
    table = once(lambda: run_chart2(config))
    archive_table(
        "chart2_matching_steps",
        table,
        engine=config.engine,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    for row in table.rows:
        by_column = dict(zip(table.columns, row))
        lm_1 = by_column["lm_1_hop"]
        if lm_1 != "":
            assert lm_1 <= by_column["centralized"]
        series = [
            by_column[f"lm_{h}_hop" if h == 1 else f"lm_{h}_hops"]
            for h in range(1, config.max_hops + 1)
        ]
        series = [value for value in series if value != ""]
        assert series and series[-1] >= series[0]
