"""Failover benchmark: mid-stream broker failure + recovery under load.

Runs the same Chart-1-style workload twice over a five-broker chain with a
lateral bypass link — once healthy (an *armed* but empty fault plan, so the
invariant bookkeeping runs byte-for-byte identically) and once with a
mid-stream broker failure, a later link failure, and recoveries.  Both runs
feed :func:`repro.sim.check_invariants`, which enforces the two first-class
delivery properties:

* **no event lost** — every event a live subscriber's active subscription
  matched is delivered (offline-logged events replayed after recovery
  count);
* **at most one copy per link** — undisturbed events never cross a link
  twice (events in flight across a failure or repair are exempt, exactly
  like the paper's "disturbed" window).

The comparison rows report delivered throughput, latency, and link traffic
healthy-vs-faulted; ``speedup`` on the faulted row is the delivered-
throughput ratio (faulted / healthy), so a regression shows up as the cell
dropping further below 1.0 in the trend table.

Run from the repo root::

    PYTHONPATH=src python benchmarks/failover.py
    PYTHONPATH=src python benchmarks/failover.py --quick
    PYTHONPATH=src python benchmarks/failover.py --subscriptions 25000 --save

The invariant gate is unconditional: exit code 1 if either run loses an
event or double-sends an undisturbed one.  ``--save``/``--bench-out`` emit
the schema-versioned ``BENCH_failover.json`` artifact.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.network.figures import linear_chain
from repro.obs import bench as obs_bench
from repro.obs import get_registry
from repro.protocols import LinkMatchingProtocol, ProtocolContext
from repro.sim import FaultAction, FaultPlan, NetworkSimulation, check_invariants
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "failover.txt"

#: The broker that fails mid-stream and the lateral link that keeps its
#: subtree reachable while it is down.
FAILED_BROKER = "B2"
LATERAL = ("B1", "B3")


def build_topology(subscribers_per_broker):
    topology = linear_chain(5, subscribers_per_broker=subscribers_per_broker)
    topology.add_link(*LATERAL, latency_ms=25.0)
    return topology


def fault_plan(total_events):
    """Fail a mid-chain broker at ~1/3 of the stream, recover at ~2/3, and
    squeeze a link flap in between — all by event index, so the plan scales
    with ``--events`` instead of assuming a rate."""
    third = max(1, total_events // 3)
    return FaultPlan(
        [
            FaultAction.fail_broker(FAILED_BROKER, after_events=third),
            FaultAction.fail_link("B3", "B4", after_events=third + third // 2),
            FaultAction.recover_link("B3", "B4", after_events=2 * third - third // 4),
            FaultAction.recover_broker(FAILED_BROKER, after_events=2 * third),
        ]
    )


def run_mode(mode, args):
    """One full simulation; returns (row, invariant_report, wall_s)."""
    topology = build_topology(args.subscribers_per_broker)
    subscribers = sorted(topology.subscribers())
    generator = SubscriptionGenerator(CHART1_SPEC, seed=args.seed)
    subscriptions = generator.subscriptions_for(subscribers, args.subscriptions)
    context = ProtocolContext(
        topology,
        CHART1_SPEC.schema(),
        subscriptions,
        domains=CHART1_SPEC.domains(),
    )
    plan = fault_plan(args.events) if mode == "faulted" else FaultPlan([])
    simulation = NetworkSimulation(
        topology,
        LinkMatchingProtocol(context),
        seed=args.seed,
        fault_plan=plan,
        repair_delay_ms=args.repair_delay_ms,
        annotation_lag_ms=args.annotation_lag_ms,
    )
    events = EventGenerator(CHART1_SPEC, seed=args.seed + 1)
    simulation.add_poisson_publisher(
        "P1", args.rate, events.factory_for("P1"), args.events
    )
    start = time.perf_counter()
    result = simulation.run()
    wall = time.perf_counter() - start
    report = check_invariants(result, simulation.faults)
    matched = result.matched_deliveries
    row = {
        "mode": mode,
        "events": result.published_events,
        "deliveries": len(result.deliveries),
        "matched": len(matched),
        "expected": report.expected_deliveries,
        "lost": len(report.lost),
        "duplicates": len(report.duplicates),
        "disturbed": report.disturbed_events,
        "mean_latency_ms": result.mean_latency_ms() or 0.0,
        "p99_latency_ms": result.latency_percentile_ms(99) or 0.0,
        "link_messages": result.total_link_messages,
        "elapsed_s": result.elapsed_seconds,
        "overloaded": result.is_overloaded,
        "speedup": 1.0,
    }
    return row, report, wall


def format_table(rows, args):
    header = (
        f"{'mode':>8} {'events':>6} {'matched':>8} {'expected':>8} "
        f"{'lost':>4} {'dup':>4} {'mean_ms':>8} {'p99_ms':>8} "
        f"{'link_msgs':>9} {'ratio':>6}"
    )
    lines = [
        f"subscriptions={args.subscriptions} events={args.events} "
        f"rate={args.rate}/s repair_delay={args.repair_delay_ms}ms "
        f"annotation_lag={args.annotation_lag_ms}ms seed={args.seed}",
        "",
        header,
        "-" * len(header),
    ]
    for row in sorted(rows, key=lambda r: r["mode"], reverse=True):  # healthy first
        lines.append(
            f"{row['mode']:>8} {row['events']:>6} {row['matched']:>8} "
            f"{row['expected']:>8} {row['lost']:>4} {row['duplicates']:>4} "
            f"{row['mean_latency_ms']:>8.2f} {row['p99_latency_ms']:>8.2f} "
            f"{row['link_messages']:>9} {row['speedup']:>5.2f}x"
        )
    return "\n".join(lines)


def emit_bench(rows, args, wall_s, directory):
    payload = obs_bench.bench_payload(
        "failover",
        engine="link-matching",
        workload={
            "spec": "CHART1_SPEC",
            "subscriptions": args.subscriptions,
            "subscribers_per_broker": args.subscribers_per_broker,
            "events": args.events,
            "rate_per_s": args.rate,
            "repair_delay_ms": args.repair_delay_ms,
            "annotation_lag_ms": args.annotation_lag_ms,
            "failed_broker": FAILED_BROKER,
            "seed": args.seed,
        },
        wall_clock_s=wall_s,
        metrics=get_registry(),
        extra={"rows": rows},
    )
    directory.mkdir(parents=True, exist_ok=True)
    return obs_bench.write_bench(payload, directory)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subscriptions", type=int, default=25000,
        help="subscription count (default: Chart 3's largest point)",
    )
    parser.add_argument(
        "--subscribers-per-broker", type=int, default=3,
        help="subscriber clients per broker on the chain",
    )
    parser.add_argument("--events", type=int, default=300, help="events to publish")
    parser.add_argument("--rate", type=float, default=60.0, help="events/s")
    parser.add_argument("--repair-delay-ms", type=float, default=5.0)
    parser.add_argument(
        "--annotation-lag-ms", type=float, default=0.0,
        help="stale window after each repair (>0 exercises flood fallback)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: 2000 subscriptions, 120 events",
    )
    parser.add_argument("--save", action="store_true", help=f"write table to {RESULTS_PATH}")
    parser.add_argument(
        "--bench-out", metavar="DIR", default=None,
        help="emit BENCH_failover.json into DIR (implied by --save)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.subscriptions = min(args.subscriptions, 2000)
        args.events = min(args.events, 120)

    get_registry().enable()
    rows = []
    reports = {}
    total_wall = 0.0
    for mode in ("faulted", "healthy"):  # faulted first: trend's headline row
        row, report, wall = run_mode(mode, args)
        rows.append(row)
        reports[mode] = report
        total_wall += wall
    healthy = next(row for row in rows if row["mode"] == "healthy")
    faulted = next(row for row in rows if row["mode"] == "faulted")
    if healthy["matched"]:
        faulted["speedup"] = faulted["matched"] / healthy["matched"] * (
            healthy["elapsed_s"] / faulted["elapsed_s"]
            if faulted["elapsed_s"]
            else 1.0
        )

    print(format_table(rows, args))
    for mode, report in reports.items():
        print(f"\n{mode}: {report.summary()}")
    if args.save:
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(format_table(rows, args) + "\n")
        print(f"\nsaved to {RESULTS_PATH}")
    if args.save or args.bench_out:
        out_dir = pathlib.Path(args.bench_out) if args.bench_out else RESULTS_DIR
        path = emit_bench(rows, args, total_wall, out_dir)
        print(f"bench artifact: {path}")

    failed = [mode for mode, report in reports.items() if not report.ok]
    if failed:
        for mode in failed:
            report = reports[mode]
            print(
                f"INVARIANT GATE FAILED ({mode}): "
                f"{len(report.lost)} lost, {len(report.duplicates)} duplicated "
                f"(first lost: {report.lost[:3]!r}, "
                f"first duplicates: {report.duplicates[:3]!r})",
                file=sys.stderr,
            )
        return 1
    print("\ninvariant gate passed: no event lost, <=1 copy per link")
    return 0


if __name__ == "__main__":
    sys.exit(main())
