"""Hop-cost sweep: total network matching steps, digests on vs off.

Match-once forwarding's claim is a *network-wide* one: on a broker chain of
depth D, classic link matching runs the full refinement kernel at every hop
(D full matches per event), while the digest path matches once at the
publisher's broker and turns every downstream hop into |M(e)| mask ORs over
the precomputed leaf→link projection (see ``docs/performance.md``).  This
sweep drives the same events through the same
:class:`~repro.protocols.link_matching.LinkMatchingProtocol` twice — digests
enabled and disabled — over :func:`~repro.network.figures.linear_chain`
topologies of growing depth and subscription count, and charts the total
matching steps each configuration spends across the whole network.

The win is regime-dependent, and the sweep makes the regime explicit
(``--spec``, ``--subscribers-per-broker``): digests pay when matches are
sparse relative to links — small match sets keep the digest and its
projection cheap while every classic hop still walks the matcher tree to
prove most links *No*.  Under the paper's dense Chart 1 parameters an event
matches hundreds of subscriptions and the projection ORs rival a refinement
descent; the ``selective`` spec (the default) is the regime content-based
pub-sub deployments actually run in.

Each row reports::

    steps_off        total matching steps, per-hop rematching (baseline)
    steps_on         total matching steps, match-once forwarding
    step_reduction   steps_off / steps_on  (the headline ratio)
    origin_steps_on  steps spent at the publisher's broker (match + mint)
    downstream_mean  mean steps per downstream hop on the digest path
    digest_bytes     mean wire size of the minted digests

Run from the repo root::

    PYTHONPATH=src python benchmarks/hop_cost.py
    PYTHONPATH=src python benchmarks/hop_cost.py \\
        --depths 6 --counts 25000 --events 200 \\
        --subscribers-per-broker 50 --min-step-reduction 2.0

``--save`` archives the table under ``benchmarks/results/`` and emits
``BENCH_hop_cost.json`` next to it.  ``--min-step-reduction X`` turns the
script into the CI gate: exit 1 unless the deepest/largest sweep point
reduces total matching steps by at least X.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.network.figures import linear_chain
from repro.obs import bench as obs_bench
from repro.obs import get_registry
from repro.protocols import LinkMatchingProtocol, ProtocolContext
from repro.workload import (
    CHART1_SPEC,
    CHART2_SPEC,
    EventGenerator,
    SubscriptionGenerator,
    WorkloadSpec,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "hop_cost.txt"

#: Workloads by matching density.  ``chart1``/``chart2`` are the paper's
#: simulation parameters (dense: a Chart 1 event matches a few hundred of
#: 25k subscriptions, so digests are big and projection ORs rival a
#: refinement descent).  ``selective`` slows the non-* decay so
#: subscriptions constrain more attributes — each event matches a handful
#: of subscriptions, the regime content-based pub-sub actually runs in and
#: the one where match-once forwarding pays: digests stay tiny while every
#: classic hop still walks the matcher tree to prove its links No.
SPECS = {
    "chart1": CHART1_SPEC,
    "chart2": CHART2_SPEC,
    "selective": WorkloadSpec(
        num_attributes=10,
        values_per_attribute=5,
        factoring_levels=2,
        first_non_star_probability=0.98,
        non_star_decay=0.92,
    ),
}


def drive_totals(protocol, root, events):
    """Route every event hop by hop; returns per-run totals.

    The chain topology has no cycles, so a simple frontier walk visits each
    broker at most once per event — the same walk the simulator's trace
    performs, minus queueing.
    """
    total_steps = 0
    origin_steps = 0
    downstream_steps = 0
    downstream_hops = 0
    digest_bytes = []
    start = time.perf_counter()
    for event in events:
        frontier = [(root, protocol.make_message(event, root))]
        while frontier:
            broker, message = frontier.pop()
            decision = protocol.handle(broker, message)
            total_steps += decision.matching_steps
            if broker == root:
                origin_steps += decision.matching_steps
            else:
                downstream_steps += decision.matching_steps
                downstream_hops += 1
            for neighbor, forward in decision.sends:
                if broker == root and forward.digest is not None:
                    digest_bytes.append(forward.digest.encoded_size_bytes)
                frontier.append((neighbor, forward))
    elapsed = time.perf_counter() - start
    return {
        "total_steps": total_steps,
        "origin_steps": origin_steps,
        "downstream_steps": downstream_steps,
        "downstream_hops": downstream_hops,
        "digest_bytes": digest_bytes,
        "wall_s": elapsed,
    }


def run(depths, counts, num_events, seed, engine, subscribers_per_broker,
        spec_name="selective"):
    """Sweep depth × subscription count; returns (rows, rendered table)."""
    spec = SPECS[spec_name]
    schema = spec.schema()
    domains = spec.domains()
    event_generator = EventGenerator(spec, seed=seed + 1)
    events = [event_generator.event_for() for _ in range(num_events)]

    header = (
        f"{'depth':>5} {'subscriptions':>13} {'steps_off':>12} {'steps_on':>12} "
        f"{'reduction':>9} {'origin_on':>10} {'down_mean':>9} {'digest_B':>8}"
    )
    lines = [
        f"engine={engine} spec={spec_name} events={num_events} seed={seed} "
        f"subscribers_per_broker={subscribers_per_broker}",
        "",
        header,
        "-" * len(header),
    ]
    rows = []
    for depth in depths:
        topology = linear_chain(
            depth, subscribers_per_broker=subscribers_per_broker
        )
        subscribers = topology.subscribers()
        for count in counts:
            subscriptions = SubscriptionGenerator(
                spec, seed=seed
            ).subscriptions_for(subscribers, count)
            context = ProtocolContext(
                topology, schema, subscriptions, domains=domains, engine=engine
            )
            digest_on = LinkMatchingProtocol(context, use_digests=True)
            digest_off = LinkMatchingProtocol(context, use_digests=False)
            root = topology.broker_of(topology.publishers()[0])
            off = drive_totals(digest_off, root, events)
            on = drive_totals(digest_on, root, events)
            reduction = (
                off["total_steps"] / on["total_steps"]
                if on["total_steps"]
                else float("inf")
            )
            downstream_mean = (
                on["downstream_steps"] / on["downstream_hops"]
                if on["downstream_hops"]
                else 0.0
            )
            mean_digest_bytes = (
                sum(on["digest_bytes"]) / len(on["digest_bytes"])
                if on["digest_bytes"]
                else 0.0
            )
            row = {
                "spec": spec_name,
                "depth": depth,
                "subscriptions": count,
                "events": num_events,
                "steps_off": off["total_steps"],
                "steps_on": on["total_steps"],
                "step_reduction": reduction,
                "origin_steps_on": on["origin_steps"],
                "downstream_mean_steps_on": downstream_mean,
                "mean_digest_bytes": mean_digest_bytes,
                "wall_s_off": off["wall_s"],
                "wall_s_on": on["wall_s"],
            }
            rows.append(row)
            lines.append(
                f"{depth:>5} {count:>13} {off['total_steps']:>12} "
                f"{on['total_steps']:>12} {reduction:>8.2f}x "
                f"{on['origin_steps']:>10} {downstream_mean:>9.1f} "
                f"{mean_digest_bytes:>8.1f}"
            )
    return rows, "\n".join(lines)


def emit_bench(rows, args, directory):
    payload = obs_bench.bench_payload(
        "hop_cost",
        engine=args.engine,
        workload={
            "spec": args.spec,
            "depths": args.depths,
            "counts": args.counts,
            "events": args.events,
            "seed": args.seed,
            "subscribers_per_broker": args.subscribers_per_broker,
        },
        wall_clock_s=None,
        metrics=get_registry(),
        extra={"rows": rows},
    )
    directory.mkdir(parents=True, exist_ok=True)
    return obs_bench.write_bench(payload, directory)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--depths", type=int, nargs="+", default=[2, 4, 6],
        help="broker-chain depths to sweep",
    )
    parser.add_argument(
        "--counts", type=int, nargs="+", default=[2000, 25000],
        help="subscription counts to sweep",
    )
    parser.add_argument("--events", type=int, default=200, help="events per run")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--engine", default="compiled", choices=["tree", "compiled"],
        help="matching engine behind every broker's router",
    )
    parser.add_argument(
        "--spec", default="selective", choices=sorted(SPECS),
        help="workload density: the paper's chart parameters (dense matches) "
        "or the selective regime where digests stay small",
    )
    parser.add_argument(
        "--subscribers-per-broker", type=int, default=20, metavar="N",
        help="subscriber clients attached to each chain broker — more "
        "subscribers per broker means more links for the classic refinement "
        "descent to resolve at every hop",
    )
    parser.add_argument("--save", action="store_true", help=f"write table to {RESULTS_PATH}")
    parser.add_argument(
        "--bench-out", metavar="DIR", default=None,
        help="emit BENCH_hop_cost.json into DIR (implied by --save)",
    )
    parser.add_argument(
        "--min-step-reduction", type=float, default=None, metavar="X",
        help="gate: exit 1 unless the deepest/largest sweep point cuts total "
        "matching steps by X",
    )
    args = parser.parse_args(argv)

    get_registry().enable()  # before any router exists, so instruments record
    rows, table = run(
        args.depths, args.counts, args.events, args.seed, args.engine,
        args.subscribers_per_broker, spec_name=args.spec,
    )
    print(table)

    if args.save:
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(table + "\n")
        print(f"\nsaved to {RESULTS_PATH}")
    if args.save or args.bench_out:
        out_dir = pathlib.Path(args.bench_out) if args.bench_out else RESULTS_DIR
        path = emit_bench(rows, args, out_dir)
        print(f"bench artifact: {path}")

    if args.min_step_reduction is not None:
        top = max(rows, key=lambda row: (row["depth"], row["subscriptions"]))
        if top["step_reduction"] < args.min_step_reduction:
            print(
                f"PERF GATE FAILED: step reduction {top['step_reduction']:.2f}x "
                f"< {args.min_step_reduction:.2f}x at depth {top['depth']}, "
                f"{top['subscriptions']} subscriptions",
                file=sys.stderr,
            )
            return 1
        print(
            f"perf gate passed: step reduction {top['step_reduction']:.2f}x "
            f">= {args.min_step_reduction:.2f}x at depth {top['depth']}, "
            f"{top['subscriptions']} subscriptions"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
