"""Aggregation sweep: covering-forest compression at growing subscription counts.

Sweeps Chart-1-spec subscription counts with a Zipf-duplicated predicate pool
(``SubscriptionGenerator(duplicate_rate=...)`` — many subscribers registering
the same popular bodies, the regime subscription aggregation compresses) and,
for each count, builds an aggregated compiled engine
(:class:`~repro.matching.aggregation.AggregatingEngine` around a
:class:`~repro.matching.engines.CompiledEngine`) next to an unaggregated
baseline:

``compression``
    Registered subscriptions per compiled leaf (``engine.compression_ratio``).

``program_cells`` / ``cells_per_sub``
    Compiled-program memory proxy: ``node_count + len(subs_flat) +
    len(value_ids) + len(range_tests)`` of the inner program.  Sub-linear
    growth — ``cells_per_sub`` falling as counts rise — is the whole point:
    the arrays track *distinct* predicates while the duplicated pool keeps
    handing out repeats.

``per_event_us`` / ``speedup``
    Warm-stream per-event matching time against the unaggregated compiled
    baseline at the same count.  The baseline is skipped above
    ``--baseline-limit`` (building a million-subscription unaggregated
    program exists to be avoided, not timed).

``ingest_subs_per_s`` / ``mean_cover_candidates``
    Ingest throughput of the insert loop and the mean number of
    ``predicate_subsumes`` verifications per cover search — the covering
    index's whole job is keeping the latter at the handful of real
    candidates instead of the bounded-scan's ``cover_scan_limit``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/aggregation_scaling.py
    PYTHONPATH=src python benchmarks/aggregation_scaling.py \\
        --counts 1000000 --baseline-limit 0 --cover-scan-limit 16

``--save`` archives the table under ``benchmarks/results/`` and emits
``BENCH_aggregation_scaling.json`` next to it.  Four flags turn the script
into the CI gate: ``--min-compression X`` (exit 1 unless the largest sweep
point compresses by X), ``--check-sublinear`` (exit 1 unless
``cells_per_sub`` falls from the first sweep point to the last),
``--max-slowdown X`` (exit 1 unless, on a *dedup-free* workload where
aggregation can only add overhead, the aggregated engine stays within X of
the baseline per event), and ``--min-ingest-speedup X`` (exit 1 unless the
covering index beats the linear-scan attach by X at ``--ingest-count``
subscriptions with equal-or-better compression).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.matching.aggregation import AggregatingEngine
from repro.matching.engines import create_engine
from repro.obs import bench as obs_bench
from repro.obs import get_registry
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "aggregation_scaling.txt"


def build_engine(subscriptions, *, aggregate, cover_scan_limit, cache, use_index=True):
    spec = CHART1_SPEC
    inner = create_engine(
        "compiled",
        spec.schema(),
        domains=spec.domains(),
        match_cache_capacity=cache,
    )
    engine = (
        AggregatingEngine(inner, cover_scan_limit=cover_scan_limit, use_index=use_index)
        if aggregate
        else inner
    )
    for subscription in subscriptions:
        engine.insert(subscription)
    return engine


def program_cells(engine):
    """Memory proxy: total compiled-array entries of the inner program."""
    inner = engine.inner if isinstance(engine, AggregatingEngine) else engine
    program = inner.program
    return (
        program.node_count
        + len(program.subs_flat)
        + len(program.value_ids)
        + len(program.range_tests)
    )


def time_events(engine, events, repeats):
    """Best seconds/event over the warm ``match`` stream.

    Caches stay on — aggregation's descent cache and the compiled engine's
    projection cache both serve the repeated Zipf stream, which is the
    deployment regime the sweep models.  The first repeat pays compilation
    and cache warmup; best-of keeps the warm number.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for event in events:
            engine.match(event)
        best = min(best, time.perf_counter() - start)
    return best / len(events)


def run(counts, num_events, repeats, seed, dup_rate, cover_scan_limit,
        cache, baseline_limit):
    """Sweep the subscription-count axis; returns (rows, rendered table).

    Each row:
    ``{subscriptions, compression, roots, forest_nodes, program_cells,
    cells_per_sub, ingest_subs_per_s, mean_cover_candidates, per_event_us,
    baseline_per_event_us, speedup}`` — the last two ``None`` when the count
    exceeds ``baseline_limit``.
    """
    spec = CHART1_SPEC
    event_generator = EventGenerator(spec, seed=seed + 1)
    events = [event_generator.event_for() for _ in range(num_events)]

    header = (
        f"{'subscriptions':>13} {'compression':>11} {'roots':>8} "
        f"{'cells':>10} {'cells/sub':>9} {'ingest/s':>9} {'cands':>6} "
        f"{'agg_us':>8} {'base_us':>8} {'speedup':>8}"
    )
    lines = [
        f"events={num_events} repeats={repeats} dup_rate={dup_rate} "
        f"cover_scan_limit={cover_scan_limit} cache={cache} "
        f"baseline_limit={baseline_limit}",
        "",
        header,
        "-" * len(header),
    ]
    rows = []
    for count in counts:
        # One generator per count: each sweep point sees the same duplicated
        # pool prefix it would see in a growing deployment.
        subscriptions = SubscriptionGenerator(
            spec, seed=seed, duplicate_rate=dup_rate
        ).subscriptions_for(["client"], count)

        ingest_start = time.perf_counter()
        engine = build_engine(
            subscriptions, aggregate=True,
            cover_scan_limit=cover_scan_limit, cache=cache,
        )
        ingest_s = time.perf_counter() - ingest_start
        engine.match(events[0])  # compile outside the timed region
        per_event = time_events(engine, events, repeats)
        cells = program_cells(engine)
        row = {
            "subscriptions": count,
            "compression": engine.compression_ratio,
            "roots": engine.root_count,
            "forest_nodes": engine.forest_nodes,
            "program_cells": cells,
            "cells_per_sub": cells / count,
            "ingest_subs_per_s": count / ingest_s,
            "mean_cover_candidates": engine.mean_cover_candidates,
            "per_event_us": per_event * 1e6,
            "baseline_per_event_us": None,
            "speedup": None,
        }

        if count <= baseline_limit:
            baseline = build_engine(
                subscriptions, aggregate=False,
                cover_scan_limit=cover_scan_limit, cache=cache,
            )
            baseline.match(events[0])
            baseline_per_event = time_events(baseline, events, repeats)
            row["baseline_per_event_us"] = baseline_per_event * 1e6
            row["speedup"] = baseline_per_event / per_event

        rows.append(row)
        base_cell = (
            f"{row['baseline_per_event_us']:>8.1f}"
            if row["baseline_per_event_us"] is not None
            else f"{'-':>8}"
        )
        speedup_cell = (
            f"{row['speedup']:>7.2f}x" if row["speedup"] is not None else f"{'-':>8}"
        )
        lines.append(
            f"{count:>13} {row['compression']:>10.2f}x {row['roots']:>8} "
            f"{cells:>10} {row['cells_per_sub']:>9.3f} "
            f"{row['ingest_subs_per_s']:>9,.0f} "
            f"{row['mean_cover_candidates']:>6.1f} "
            f"{per_event * 1e6:>8.1f} {base_cell} {speedup_cell}"
        )
    return rows, "\n".join(lines)


def ingest_speedup(count, seed, dup_rate, cover_scan_limit, cache):
    """Covering-index ingest gain: indexed vs linear-scan attach over the
    same duplicated pool.

    Builds the aggregated engine twice — ``use_index=True`` (the
    attribute-inverted :class:`~repro.matching.covering_index.CoveringIndex`
    candidate filter) and ``use_index=False`` (bounded linear sibling scans)
    — timing the insert loop of each.  Returns a dict with both throughputs,
    their ratio, and both compression ratios: the index must be faster
    *without* giving up compression at the same ``cover_scan_limit`` (in
    practice it compresses far better — the linear scan stops at the first
    ``cover_scan_limit`` siblings, the index verifies only real candidates).
    """
    spec = CHART1_SPEC
    subscriptions = SubscriptionGenerator(
        spec, seed=seed, duplicate_rate=dup_rate
    ).subscriptions_for(["client"], count)
    result = {"subscriptions": count}
    for label, use_index in (("indexed", True), ("linear", False)):
        start = time.perf_counter()
        engine = build_engine(
            subscriptions, aggregate=True,
            cover_scan_limit=cover_scan_limit, cache=cache, use_index=use_index,
        )
        elapsed = time.perf_counter() - start
        result[f"{label}_subs_per_s"] = count / elapsed
        result[f"{label}_compression"] = engine.compression_ratio
        engine.close()
    result["speedup"] = result["indexed_subs_per_s"] / result["linear_subs_per_s"]
    return result


def dedup_free_slowdown(count, num_events, repeats, seed, cover_scan_limit, cache):
    """Aggregated/baseline per-event ratio on a duplicate-free workload.

    With no duplicates to absorb, every subscription is its own root and
    aggregation is pure overhead (canonicalization at insert, one descent
    cache probe per event) — the honest worst case the ``--max-slowdown``
    gate bounds.
    """
    spec = CHART1_SPEC
    subscriptions = SubscriptionGenerator(spec, seed=seed).subscriptions_for(
        ["client"], count
    )
    event_generator = EventGenerator(spec, seed=seed + 1)
    events = [event_generator.event_for() for _ in range(num_events)]

    aggregated = build_engine(
        subscriptions, aggregate=True,
        cover_scan_limit=cover_scan_limit, cache=cache,
    )
    baseline = build_engine(
        subscriptions, aggregate=False,
        cover_scan_limit=cover_scan_limit, cache=cache,
    )
    aggregated.match(events[0])
    baseline.match(events[0])
    aggregated_per_event = time_events(aggregated, events, repeats)
    baseline_per_event = time_events(baseline, events, repeats)
    return aggregated_per_event / baseline_per_event


def emit_bench(rows, args, directory, extra):
    payload = obs_bench.bench_payload(
        "aggregation_scaling",
        engine="compiled+aggregation",
        workload={
            "spec": "CHART1_SPEC",
            "counts": args.counts,
            "events": args.events,
            "repeats": args.repeats,
            "seed": args.seed,
            "dup_rate": args.dup_rate,
            "cover_scan_limit": args.cover_scan_limit,
            "cache": args.cache,
            "baseline_limit": args.baseline_limit,
        },
        wall_clock_s=None,
        metrics=get_registry(),
        extra=dict({"rows": rows}, **extra),
    )
    directory.mkdir(parents=True, exist_ok=True)
    return obs_bench.write_bench(payload, directory)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--counts", type=int, nargs="+", default=[2000, 10000, 50000],
        help="subscription counts to sweep",
    )
    parser.add_argument("--events", type=int, default=400, help="events per stream")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best kept)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--dup-rate", type=float, default=0.9, metavar="D",
        help="workload duplicate rate (Zipf-weighted re-registration of "
        "popular predicate bodies)",
    )
    parser.add_argument(
        "--cover-scan-limit", type=int, default=64, metavar="N",
        help="bounded cover search per forest level (small keeps million-"
        "subscription ingest fast; dedup compression is unaffected)",
    )
    parser.add_argument(
        "--cache", type=int, default=None, metavar="N",
        help="projection/descent cache capacity (default: engine default)",
    )
    parser.add_argument(
        "--baseline-limit", type=int, default=100000, metavar="N",
        help="skip the unaggregated baseline above this count",
    )
    parser.add_argument("--save", action="store_true", help=f"write table to {RESULTS_PATH}")
    parser.add_argument(
        "--bench-out", metavar="DIR", default=None,
        help="emit BENCH_aggregation_scaling.json into DIR (implied by --save)",
    )
    parser.add_argument(
        "--min-compression", type=float, default=None, metavar="X",
        help="gate: exit 1 unless the largest sweep point compresses by X",
    )
    parser.add_argument(
        "--check-sublinear", action="store_true",
        help="gate: exit 1 unless cells_per_sub falls across the sweep "
        "(compiled memory grows sub-linearly in subscriptions)",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=None, metavar="X",
        help="gate: exit 1 unless a dedup-free workload (duplicate_rate=0, "
        "smallest sweep count) keeps the aggregated engine within X of the "
        "unaggregated baseline per event",
    )
    parser.add_argument(
        "--min-ingest-speedup", type=float, default=None, metavar="X",
        help="gate: exit 1 unless covering-index ingest beats the linear-"
        "scan attach by X at --ingest-count subscriptions (with equal or "
        "better compression)",
    )
    parser.add_argument(
        "--ingest-count", type=int, default=250000, metavar="N",
        help="subscription count for the --min-ingest-speedup comparison",
    )
    args = parser.parse_args(argv)

    get_registry().enable()  # before any engine exists, so instruments record
    rows, table = run(
        args.counts, args.events, args.repeats, args.seed, args.dup_rate,
        args.cover_scan_limit, args.cache, args.baseline_limit,
    )
    print(table)

    extra = {}
    slowdown = None
    if args.max_slowdown is not None:
        slowdown = dedup_free_slowdown(
            min(args.counts), args.events, args.repeats, args.seed,
            args.cover_scan_limit, args.cache,
        )
        extra["dedup_free_slowdown"] = slowdown
        print(
            f"\ndedup-free overhead: aggregated/baseline = {slowdown:.2f}x "
            f"at {min(args.counts)} subscriptions"
        )

    ingest_gate = None
    if args.min_ingest_speedup is not None:
        ingest_gate = ingest_speedup(
            args.ingest_count, args.seed, args.dup_rate,
            args.cover_scan_limit, args.cache,
        )
        extra["ingest_gate"] = ingest_gate
        print(
            f"\ncovering-index ingest at {args.ingest_count} subscriptions: "
            f"{ingest_gate['indexed_subs_per_s']:,.0f} subs/s indexed vs "
            f"{ingest_gate['linear_subs_per_s']:,.0f} linear "
            f"({ingest_gate['speedup']:.2f}x), compression "
            f"{ingest_gate['indexed_compression']:.1f}x vs "
            f"{ingest_gate['linear_compression']:.1f}x"
        )

    if args.save:
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(table + "\n")
        print(f"\nsaved to {RESULTS_PATH}")
    if args.save or args.bench_out:
        out_dir = pathlib.Path(args.bench_out) if args.bench_out else RESULTS_DIR
        path = emit_bench(rows, args, out_dir, extra)
        print(f"bench artifact: {path}")

    failed = False
    top = max(rows, key=lambda row: row["subscriptions"])
    if args.min_compression is not None:
        if top["compression"] < args.min_compression:
            print(
                f"PERF GATE FAILED: compression {top['compression']:.2f}x "
                f"< {args.min_compression:.2f}x at {top['subscriptions']} "
                f"subscriptions",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"perf gate passed: compression {top['compression']:.2f}x "
                f">= {args.min_compression:.2f}x"
            )
    if args.check_sublinear:
        first = min(rows, key=lambda row: row["subscriptions"])
        if len(rows) < 2 or top["cells_per_sub"] >= first["cells_per_sub"]:
            print(
                f"PERF GATE FAILED: cells_per_sub did not fall across the "
                f"sweep ({first['cells_per_sub']:.3f} -> "
                f"{top['cells_per_sub']:.3f}) — compiled memory is not "
                f"sub-linear",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"perf gate passed: cells_per_sub {first['cells_per_sub']:.3f} "
                f"-> {top['cells_per_sub']:.3f} (sub-linear)"
            )
    if args.max_slowdown is not None:
        if slowdown > args.max_slowdown:
            print(
                f"PERF GATE FAILED: dedup-free slowdown {slowdown:.2f}x "
                f"> {args.max_slowdown:.2f}x",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"perf gate passed: dedup-free slowdown {slowdown:.2f}x "
                f"<= {args.max_slowdown:.2f}x"
            )
    if args.min_ingest_speedup is not None:
        if ingest_gate["speedup"] < args.min_ingest_speedup:
            print(
                f"PERF GATE FAILED: covering-index ingest speedup "
                f"{ingest_gate['speedup']:.2f}x < "
                f"{args.min_ingest_speedup:.2f}x at "
                f"{args.ingest_count} subscriptions",
                file=sys.stderr,
            )
            failed = True
        elif ingest_gate["indexed_compression"] < ingest_gate["linear_compression"]:
            print(
                f"PERF GATE FAILED: covering-index compression "
                f"{ingest_gate['indexed_compression']:.2f}x fell below the "
                f"linear scan's {ingest_gate['linear_compression']:.2f}x",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"perf gate passed: covering-index ingest "
                f"{ingest_gate['speedup']:.2f}x >= "
                f"{args.min_ingest_speedup:.2f}x (compression "
                f"{ingest_gate['indexed_compression']:.1f}x vs "
                f"{ingest_gate['linear_compression']:.1f}x)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
