"""Bursty message loads — the paper's stated future work (Section 6).

Runs the Chart 1 setup under ON/OFF arrivals at a fixed mean rate for
several burstiness factors and reports queue buildup, latency and overload,
quantifying how much headroom below the Poisson saturation point bursts
consume.
"""

from __future__ import annotations

from conftest import archive_table, paper_scale

from repro.experiments import BurstyConfig, run_bursty


def bursty_config() -> BurstyConfig:
    if paper_scale():
        return BurstyConfig(
            num_subscriptions=1000,
            subscribers_per_broker=10,
            mean_rate=5000.0,
            burstiness_factors=(1.0, 2.0, 5.0, 10.0, 20.0),
            duration_s=2.0,
        )
    return BurstyConfig(
        num_subscriptions=200,
        subscribers_per_broker=3,
        mean_rate=3000.0,
        burstiness_factors=(1.0, 3.0, 10.0),
        duration_s=0.8,
    )


def test_bursty_loads(once):
    config = bursty_config()
    table = once(lambda: run_bursty(config))
    archive_table(
        "bursty_loads",
        table,
        engine=config.engine,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    queues = dict(zip(table.column("burstiness"), table.column("max_queue")))
    factors = sorted(queues)
    # Bursts at the same mean rate must queue at least as much as Poisson.
    assert queues[factors[-1]] >= queues[factors[0]]
