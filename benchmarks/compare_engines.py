"""Head-to-head: object-graph PST (tree) vs array-kernel (compiled) engine.

Builds identical Chart-1-spec subscription sets at several sizes and times
``match()`` over a fixed event sample with both engines.  Both engines take
exactly the same number of matching *steps* (the equivalence suite proves
it); this script measures how much wall-clock time the compiled arrays save
per step.

Run from the repo root::

    PYTHONPATH=src python benchmarks/compare_engines.py
    PYTHONPATH=src python benchmarks/compare_engines.py --counts 1000 25000 --save

``--save`` archives the table under ``benchmarks/results/compare_engines.txt``
and emits the machine-readable ``BENCH_compare_engines.json`` artifact next
to it.  ``--min-speedup X`` turns the script into the CI perf-regression
gate: exit code 1 if the compiled engine's speedup at the largest
subscription count falls below ``X``.

``--churn N`` interleaves subscription churn with the matching loop: every
``N`` events one registered subscription is removed and a fresh one inserted
(net size constant).  The tree engine patches annotations in place; the
compiled engine pays for incremental patches, flushed projection caches, and
the occasional waste-triggered recompile — which is exactly the cost the
steady-state table hides, so churn rows make recompile pressure visible in
the trend tables.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import time

from repro.matching.engines import create_engine
from repro.obs import bench as obs_bench
from repro.obs import get_registry
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "compare_engines.txt"
ENGINES = ("tree", "compiled")


def build_engine(name, subscriptions, *, cache=True, backend=None, aggregate=False):
    spec = CHART1_SPEC
    engine = create_engine(
        name,
        spec.schema(),
        domains=spec.domains(),
        match_cache_capacity=None if cache else 0,
        # The tree engine has no kernels to swap; --backend only affects
        # the compiled side of the comparison.
        backend=backend if name == "compiled" else None,
        # The covering forest wraps the compiled side only: the tree engine
        # stays the unaggregated reference the speedup is measured against.
        aggregate=aggregate and name == "compiled",
    )
    for subscription in subscriptions:
        engine.insert(subscription)
    return engine


def time_matches(engine, events, repeats):
    """Average seconds per match (and avg steps, as a sanity column)."""
    total_steps = 0
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        total_steps = 0
        for event in events:
            total_steps += engine.match(event).steps
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / len(events), total_steps / len(events)


def make_churn_plan(subscriptions, num_ops, generator, seed):
    """A deterministic op stream: each op removes a live subscription and
    inserts a fresh one (net size constant).  Built once per count so every
    engine (and every timing repeat) replays byte-identical churn."""
    rng = random.Random(seed)
    live = list(subscriptions)
    plan = []
    for _ in range(num_ops):
        index = rng.randrange(len(live))
        fresh = generator.subscription_for("churn")
        plan.append((live[index].subscription_id, fresh))
        live[index] = fresh
    return plan


def time_matches_churn(engine, events, churn, plan):
    """One timed pass interleaving matching with churn: every ``churn``
    events the next plan op runs (remove + insert).  The churn cost — tree
    annotation patches vs compiled patches, cache flushes, and recompiles —
    lands inside the timed region, which is the point."""
    ops = iter(plan)
    total_steps = 0
    start = time.perf_counter()
    for i, event in enumerate(events):
        if i and i % churn == 0:
            old_id, fresh = next(ops)
            engine.remove(old_id)
            engine.insert(fresh)
        total_steps += engine.match(event).steps
    elapsed = time.perf_counter() - start
    return elapsed / len(events), total_steps / len(events)


def run(
    counts, num_events, repeats, seed,
    *, cache=True, churn=0, backend=None, aggregate=False, dup_rate=0.0,
):
    """Sweep the subscription counts; returns (rows, rendered table text).

    Each row is ``{subscriptions, avg_steps, tree_us, compiled_us, speedup}``.
    With ``cache=False`` the compiled engine's projection caches are
    disabled, so the comparison isolates the raw kernel speedup (the CI gate
    uses this: repeated timing loops over a fixed event sample would
    otherwise be pure cache hits after the first pass).  With ``churn=N``
    every N events a subscription is replaced mid-stream (engines are
    rebuilt per repeat so every pass replays identical churn from the same
    starting state).
    """
    spec = CHART1_SPEC
    subscription_generator = SubscriptionGenerator(
        spec, seed=seed, duplicate_rate=dup_rate
    )
    event_generator = EventGenerator(spec, seed=seed + 1)
    events = [event_generator.event_for() for _ in range(num_events)]

    header = (
        f"{'subscriptions':>13} {'avg_steps':>9} {'tree_us':>9} {'compiled_us':>11} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    if churn:
        lines.insert(0, f"churn: 1 replacement per {churn} events (timed in-stream)")
    rows = []
    for count in counts:
        subscriptions = subscription_generator.subscriptions_for(["client"], count)
        plan = (
            make_churn_plan(
                subscriptions, num_events // churn, subscription_generator, seed + 2
            )
            if churn
            else None
        )
        per_match = {}
        steps = {}
        for name in ENGINES:
            if churn:
                best = float("inf")
                for _ in range(repeats):
                    engine = build_engine(
                        name, subscriptions, cache=cache, backend=backend,
                        aggregate=aggregate,
                    )
                    engine.match(events[0])  # warm up (compiled: force compilation)
                    per_event, avg_steps = time_matches_churn(
                        engine, events, churn, plan
                    )
                    best = min(best, per_event)
                per_match[name], steps[name] = best, avg_steps
            else:
                engine = build_engine(
                    name, subscriptions, cache=cache, backend=backend,
                    aggregate=aggregate,
                )
                engine.match(events[0])  # warm up (compiled: force compilation)
                per_match[name], steps[name] = time_matches(engine, events, repeats)
        compression = None
        if aggregate:
            # Aggregation legitimately changes the step count (deduped
            # leaves walk once for many subscribers); sanity-check match
            # sets instead of steps.
            tree_set = sorted(
                s.subscription_id
                for s in build_engine("tree", subscriptions).match(events[0]).subscriptions
            )
            agg_engine = build_engine(
                "compiled", subscriptions, cache=cache, backend=backend, aggregate=True
            )
            agg_set = sorted(
                s.subscription_id for s in agg_engine.match(events[0]).subscriptions
            )
            assert tree_set == agg_set, "aggregation changed the match set"
            compression = agg_engine.compression_ratio
        else:
            assert steps["tree"] == steps["compiled"], "engines disagree on steps"
        speedup = per_match["tree"] / per_match["compiled"]
        row = {
            "subscriptions": count,
            "avg_steps": steps["tree"],
            "tree_us": per_match["tree"] * 1e6,
            "compiled_us": per_match["compiled"] * 1e6,
            "speedup": speedup,
        }
        if compression is not None:
            row["compression"] = compression
        rows.append(row)
        lines.append(
            f"{count:>13} {steps['tree']:>9.1f} "
            f"{per_match['tree'] * 1e6:>9.1f} {per_match['compiled'] * 1e6:>11.1f} "
            f"{speedup:>7.2f}x"
        )
    return rows, "\n".join(lines)


def emit_bench(rows, args, directory):
    payload = obs_bench.bench_payload(
        "compare_engines",
        engine="tree-vs-compiled",
        workload={
            "spec": "CHART1_SPEC",
            "counts": list(args.counts),
            "events": args.events,
            "repeats": args.repeats,
            "seed": args.seed,
            "cache": not args.no_cache,
            "churn": args.churn,
            "backend": args.backend,
            "aggregate": args.aggregate,
            "dup_rate": args.dup_rate,
        },
        wall_clock_s=None,
        metrics=get_registry(),
        extra={"rows": rows},
    )
    directory.mkdir(parents=True, exist_ok=True)
    return obs_bench.write_bench(payload, directory)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--counts", type=int, nargs="+", default=[1000, 5000, 10000, 25000],
        help="subscription counts to sweep (default: Chart 3's sweep)",
    )
    parser.add_argument("--events", type=int, default=200, help="events per timing run")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best kept)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--save", action="store_true", help=f"write table to {RESULTS_PATH}")
    parser.add_argument(
        "--bench-out", metavar="DIR", default=None,
        help="emit BENCH_compare_engines.json into DIR (implied by --save)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="perf gate: exit 1 unless compiled is at least X times faster "
        "than tree at the largest subscription count",
    )
    parser.add_argument(
        "--churn", type=int, default=0, metavar="N",
        help="interleave subscription churn with matching: every N events "
        "replace one registered subscription with a fresh one (0 = off); "
        "patch/recompile cost lands inside the timed region",
    )
    parser.add_argument(
        "--backend", default=None, choices=("interp", "vector"),
        help="kernel backend for the compiled engine (default: engine default)",
    )
    parser.add_argument(
        "--aggregate", action="store_true",
        help="wrap the compiled engine in the online covering forest "
        "(repro.matching.aggregation); the tree engine stays the "
        "unaggregated reference, so the speedup column shows the dedup win",
    )
    parser.add_argument(
        "--dup-rate", type=float, default=0.0, metavar="D",
        help="probability that a generated subscription reuses a previously "
        "generated predicate body (see SubscriptionGenerator duplicate_rate); "
        "makes the aggregation win measurable",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the compiled engine's projection-keyed match cache so "
        "the gate measures the raw kernel (repeated timing passes over the "
        "same events would otherwise be served from cache)",
    )
    args = parser.parse_args(argv)

    get_registry().enable()  # before any engine exists, so instruments record
    rows, table = run(
        args.counts, args.events, args.repeats, args.seed,
        cache=not args.no_cache, churn=args.churn, backend=args.backend,
        aggregate=args.aggregate, dup_rate=args.dup_rate,
    )
    print(table)
    if args.save:
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(table + "\n")
        print(f"\nsaved to {RESULTS_PATH}")
    if args.save or args.bench_out:
        out_dir = pathlib.Path(args.bench_out) if args.bench_out else RESULTS_DIR
        path = emit_bench(rows, args, out_dir)
        print(f"bench artifact: {path}")

    if args.min_speedup is not None:
        gate_row = max(rows, key=lambda row: row["subscriptions"])
        if gate_row["speedup"] < args.min_speedup:
            print(
                f"PERF GATE FAILED: compiled speedup {gate_row['speedup']:.2f}x "
                f"< {args.min_speedup:.2f}x at {gate_row['subscriptions']} subscriptions",
                file=sys.stderr,
            )
            return 1
        print(
            f"perf gate passed: {gate_row['speedup']:.2f}x >= {args.min_speedup:.2f}x "
            f"at {gate_row['subscriptions']} subscriptions"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
