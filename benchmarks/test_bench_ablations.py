"""Ablation benchmarks for the design choices DESIGN.md calls out.

* factoring levels (Section 2.1 item 1) — steps vs space;
* PST attribute ordering (the paper's fewest-don't-cares heuristic);
* delayed branching (Section 2.1 item 3) — the search DAG's step/space trade;
* virtual links (Section 3.2 footnote 1) — how often Figure 6 needs splits.
"""

from __future__ import annotations

from conftest import archive_table, paper_scale

from repro.experiments import (
    AblationConfig,
    run_delayed_branching_ablation,
    run_factoring_ablation,
    run_ordering_ablation,
    run_range_workload_ablation,
    run_virtual_link_ablation,
)
from repro.workload import CHART2_SPEC


def ablation_config() -> AblationConfig:
    if paper_scale():
        return AblationConfig(num_subscriptions=5000, num_events=500)
    return AblationConfig(num_subscriptions=1500, num_events=200)


def test_factoring_levels(once):
    config = ablation_config()
    table = once(lambda: run_factoring_ablation(config))
    archive_table(
        "ablation_factoring", table, workload=config, wall_clock_s=once.last_wall_clock_s
    )
    steps = dict(zip(table.column("factoring_levels"), table.column("mean_steps")))
    nodes = dict(zip(table.column("factoring_levels"), table.column("total_nodes")))
    assert steps[2] < steps[0], "factoring must reduce matching steps"
    assert nodes[2] >= nodes[0] * 0.5, "factoring trades space for time"


def test_attribute_ordering(once):
    config = ablation_config()
    table = once(lambda: run_ordering_ablation(config))
    archive_table(
        "ablation_ordering", table, workload=config, wall_clock_s=once.last_wall_clock_s
    )
    steps = dict(zip(table.column("ordering"), table.column("mean_steps")))
    assert steps["fewest-dont-cares"] <= steps["reverse"], (
        "the paper's ordering heuristic must beat the adversarial order"
    )


def test_delayed_branching(once):
    config = AblationConfig(
        spec=CHART2_SPEC,
        num_subscriptions=2000 if paper_scale() else 800,
        num_events=300 if paper_scale() else 150,
    )
    table = once(lambda: run_delayed_branching_ablation(config))
    archive_table(
        "ablation_delayed_branching",
        table,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    rows = {row[0]: row for row in table.rows}
    assert rows["search DAG"][1] < rows["parallel search tree"][1], (
        "delayed branching must reduce matching steps"
    )


def test_virtual_links(once):
    table = once(lambda: run_virtual_link_ablation(subscribers_per_broker=3))
    archive_table(
        "ablation_virtual_links", table, wall_clock_s=once.last_wall_clock_s
    )
    rows = {row[0]: row for row in table.rows}
    assert rows["default"][1] > 0, "lateral links must force link splits"
    assert rows["none"][1] == 0, "a pure tree needs no virtual links"


def test_range_workload(once):
    config = AblationConfig(
        num_subscriptions=3000 if paper_scale() else 1000,
        num_events=300 if paper_scale() else 150,
    )
    table = once(lambda: run_range_workload_ablation(config))
    archive_table(
        "ablation_range_workload",
        table,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    steps = dict(zip(table.column("range_probability"), table.column("mean_steps")))
    matches = dict(zip(table.column("range_probability"), table.column("mean_matches")))
    # Range tests are coarser: both work and match volume rise with range share.
    assert steps[1.0] > steps[0.0]
    assert matches[1.0] > matches[0.0]
