"""Batched matching throughput: batch-size sweep with projection caching.

Builds one Chart-1-spec compiled engine at a large subscription count and
measures ``match_batch`` throughput across batch sizes against the
single-event ``match()`` baseline (projection cache disabled, so the
baseline is the raw per-event kernel).  Two event streams are swept:

``cold``
    Fresh random events — nearly every projection is new, so gains come
    from the batched frontier kernel sharing node visits across the batch
    (every event in a batch crosses the tree's upper levels together).

``pooled``
    Events drawn from a finite pool of distinct events, the hot-topic
    shape real pub-sub traffic has.  Repeated projections are served from
    the projection-keyed LRU cache; the table reports the steady-state
    hit rate alongside the speedup.

Run from the repo root::

    PYTHONPATH=src python benchmarks/batch_scaling.py
    PYTHONPATH=src python benchmarks/batch_scaling.py --batch 64 --min-speedup 1.3

``--save`` archives the table under ``benchmarks/results/batch_scaling.txt``
and emits ``BENCH_batch_scaling.json`` next to it.  ``--batch N
--min-speedup X`` turns the script into the CI gate: exit code 1 unless the
pooled-stream speedup at batch ``N`` is at least ``X``.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import time

from repro.matching.engines import create_engine
from repro.obs import bench as obs_bench
from repro.obs import get_registry
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "batch_scaling.txt"
STREAMS = ("cold", "pooled")


def build_engine(subscriptions, *, cache=True):
    spec = CHART1_SPEC
    engine = create_engine(
        "compiled",
        spec.schema(),
        domains=spec.domains(),
        match_cache_capacity=None if cache else 0,
    )
    for subscription in subscriptions:
        engine.insert(subscription)
    return engine


def make_streams(num_events, pool_size, seed):
    """The two event streams, equal length: unique events vs a finite pool."""
    event_generator = EventGenerator(CHART1_SPEC, seed=seed)
    cold = [event_generator.event_for() for _ in range(num_events)]
    pool = [event_generator.event_for() for _ in range(pool_size)]
    rng = random.Random(seed + 1)
    pooled = [pool[rng.randrange(pool_size)] for _ in range(num_events)]
    return {"cold": cold, "pooled": pooled}


def time_single(engine, events, repeats):
    """Best seconds/event for the per-event ``match()`` loop."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for event in events:
            engine.match(event)
        best = min(best, time.perf_counter() - start)
    return best / len(events)


def time_batched(engine, events, batch, repeats):
    """Best seconds/event for ``match_batch`` over ``batch``-sized chunks.

    Returns ``(seconds_per_event, hit_rate)``.  The engine's projection
    cache is flushed before *every* repeat, so each pass starts cold and
    the hit rate measures reuse *within* the stream (the cold stream stays
    near zero; the pooled stream's rate reflects its pool structure) rather
    than trivial across-repeat replay.
    """
    cache = engine.program.match_cache
    chunks = [events[i : i + batch] for i in range(0, len(events), batch)]
    best = float("inf")
    hit_rate = 0.0
    for _ in range(repeats):
        if cache is not None:
            cache.flush()
            hits0, misses0 = cache.hits, cache.misses
        start = time.perf_counter()
        for chunk in chunks:
            engine.match_batch(chunk)
        best = min(best, time.perf_counter() - start)
        if cache is not None:
            delta_hits = cache.hits - hits0
            delta_total = delta_hits + (cache.misses - misses0)
            hit_rate = delta_hits / delta_total if delta_total else 0.0
    return best / len(events), hit_rate


def run(subscriptions_count, num_events, pool_size, batch_sizes, repeats, seed):
    """Sweep batch sizes over both streams; returns (rows, table text).

    Each row is ``{stream, batch, per_event_us, speedup, hit_rate}`` where
    ``speedup`` is against the uncached single-event baseline on the same
    stream.
    """
    subscription_generator = SubscriptionGenerator(CHART1_SPEC, seed=seed)
    subscriptions = subscription_generator.subscriptions_for(
        ["client"], subscriptions_count
    )
    streams = make_streams(num_events, pool_size, seed + 10)

    baseline_engine = build_engine(subscriptions, cache=False)
    batched_engine = build_engine(subscriptions, cache=True)
    # Warm up: force compilation of both programs outside the timed region.
    baseline_engine.match(streams["cold"][0])
    batched_engine.match(streams["cold"][0])

    baselines = {
        stream: time_single(baseline_engine, events, repeats)
        for stream, events in streams.items()
    }

    header = f"{'stream':>8} {'batch':>6} {'per_event_us':>13} {'speedup':>8} {'hit_rate':>9}"
    lines = [
        f"subscriptions={subscriptions_count} events={num_events} "
        f"pool={pool_size} repeats={repeats}",
        "baseline (single-event match, cache off): "
        + ", ".join(f"{s}={baselines[s] * 1e6:.1f}us" for s in STREAMS),
        "",
        header,
        "-" * len(header),
    ]
    rows = []
    for stream in STREAMS:
        for batch in batch_sizes:
            per_event, hit_rate = time_batched(
                batched_engine, streams[stream], batch, repeats
            )
            speedup = baselines[stream] / per_event
            rows.append(
                {
                    "stream": stream,
                    "batch": batch,
                    "per_event_us": per_event * 1e6,
                    "speedup": speedup,
                    "hit_rate": hit_rate,
                }
            )
            lines.append(
                f"{stream:>8} {batch:>6} {per_event * 1e6:>13.1f} "
                f"{speedup:>7.2f}x {hit_rate:>9.2f}"
            )
    return rows, "\n".join(lines)


def emit_bench(rows, args, directory):
    payload = obs_bench.bench_payload(
        "batch_scaling",
        engine="compiled",
        workload={
            "spec": "CHART1_SPEC",
            "subscriptions": args.subscriptions,
            "events": args.events,
            "pool": args.pool,
            "batch_sizes": list(args.batch_sizes),
            "repeats": args.repeats,
            "seed": args.seed,
        },
        wall_clock_s=None,
        metrics=get_registry(),
        extra={"rows": rows},
    )
    directory.mkdir(parents=True, exist_ok=True)
    return obs_bench.write_bench(payload, directory)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subscriptions", type=int, default=25000,
        help="subscription count (default: Chart 3's largest point)",
    )
    parser.add_argument("--events", type=int, default=512, help="events per stream")
    parser.add_argument(
        "--pool", type=int, default=32,
        help="distinct events in the pooled stream (smaller = hotter cache)",
    )
    parser.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 4, 16, 64, 256],
        help="batch sizes to sweep",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best kept)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--save", action="store_true", help=f"write table to {RESULTS_PATH}")
    parser.add_argument(
        "--bench-out", metavar="DIR", default=None,
        help="emit BENCH_batch_scaling.json into DIR (implied by --save)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="perf gate: the batch size to check (use with --min-speedup)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="perf gate: exit 1 unless the pooled-stream speedup at batch N "
        "(--batch) is at least X over the single-event baseline",
    )
    args = parser.parse_args(argv)
    if args.batch is not None and args.batch not in args.batch_sizes:
        args.batch_sizes = sorted(set(args.batch_sizes) | {args.batch})

    get_registry().enable()  # before any engine exists, so instruments record
    rows, table = run(
        args.subscriptions, args.events, args.pool,
        args.batch_sizes, args.repeats, args.seed,
    )
    print(table)
    if args.save:
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(table + "\n")
        print(f"\nsaved to {RESULTS_PATH}")
    if args.save or args.bench_out:
        out_dir = pathlib.Path(args.bench_out) if args.bench_out else RESULTS_DIR
        path = emit_bench(rows, args, out_dir)
        print(f"bench artifact: {path}")

    if args.min_speedup is not None:
        if args.batch is None:
            parser.error("--min-speedup requires --batch")
        gate_row = next(
            row for row in rows
            if row["stream"] == "pooled" and row["batch"] == args.batch
        )
        if gate_row["speedup"] < args.min_speedup:
            print(
                f"PERF GATE FAILED: batched speedup {gate_row['speedup']:.2f}x "
                f"< {args.min_speedup:.2f}x at batch {args.batch} (pooled stream)",
                file=sys.stderr,
            )
            return 1
        print(
            f"perf gate passed: {gate_row['speedup']:.2f}x >= "
            f"{args.min_speedup:.2f}x at batch {args.batch} (pooled stream)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
