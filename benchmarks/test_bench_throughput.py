"""Broker throughput — the "14,000 events/sec" claim of Section 4.2.

Drives the full prototype pipeline (client protocol, codec, matching,
per-client logs) on a single broker over the in-memory transport, and
reports events/sec plus matching's share of the cost.  The asserted shape is
the paper's observation that transport costs outweigh matching costs.
"""

from __future__ import annotations

from conftest import archive_table, paper_scale

from repro.experiments import ThroughputConfig, run_throughput


def throughput_config() -> ThroughputConfig:
    if paper_scale():
        return ThroughputConfig(subscription_counts=(10, 100, 1000, 5000), num_events=4000)
    return ThroughputConfig(subscription_counts=(10, 100, 1000), num_events=1200)


def test_broker_throughput(once):
    config = throughput_config()
    table = once(lambda: run_throughput(config))
    archive_table(
        "throughput",
        table,
        engine=config.engine,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    for row in table.rows:
        by_column = dict(zip(table.columns, row))
        assert by_column["events_per_sec"] > 100
        assert by_column["matching_cost_share"] < 0.6, (
            "matching must not dominate the broker's cost (Section 4.2)"
        )


def test_event_pipeline_microbench(benchmark):
    """Marshal -> frame -> unmarshal -> match, the broker's per-event work."""
    from repro.broker import MatchingEngine, decode_event, encode_event
    from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

    spec = CHART1_SPEC
    engine = MatchingEngine(spec.schema(), domains=spec.domains())
    generator = SubscriptionGenerator(spec, seed=3)
    for subscription in generator.subscriptions_for(["c"], 500):
        engine.matcher.insert(subscription)
    event = EventGenerator(spec, seed=4).event_for()
    data = encode_event(event)

    def pipeline():
        parsed = decode_event(spec.schema(), data)
        return engine.match(parsed)

    benchmark(pipeline)
