"""Sharded matching throughput: shard-count x worker sweep, cold vs churn.

Builds Chart-1-spec engines at a large subscription count and measures
``match()`` throughput for :class:`~repro.matching.sharding.ShardedEngine`
across shard counts and worker-pool widths against the monolithic
``CompiledEngine`` baseline.  Two event streams are swept:

``cold``
    Fresh random events, no churn.  Nearly every projection is new, so
    this stream shows the raw cost of sharding: S root walks plus the
    union merge instead of one.  Expect ~1x or slightly below — this is
    the measured crossover documented in ``docs/performance.md``: sharding
    is not a cold-stream kernel win, and neither are threads (the kernels
    are pure Python and hold the GIL, so ``workers>0`` only adds dispatch
    overhead on CPython today).

``churn``
    Events drawn from a finite pool with subscription churn interleaved
    (every ``--churn`` events one subscription is replaced).  This is
    where sharding wins, and why: every patch flushes the monolithic
    engine's entire projection cache, while the sharded engine *repairs*
    the owning shard's event cache surgically — only entries the churned
    subscription's predicate actually matches are evicted, so the hot
    pool keeps serving hits across churn — and a waste-triggered
    recompile re-lowers one shard's subscriptions instead of all of them.

Run from the repo root::

    PYTHONPATH=src python benchmarks/shard_scaling.py
    PYTHONPATH=src python benchmarks/shard_scaling.py --shards 4 --min-speedup 1.2

``--save`` archives the table under ``benchmarks/results/shard_scaling.txt``
and emits ``BENCH_shard_scaling.json`` next to it.  ``--shards S
--min-speedup X`` turns the script into the CI gate: exit code 1 unless the
serial (``workers=0``) sharded engine at ``S`` shards beats the monolithic
baseline by at least ``X`` on the churn stream.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import time

from repro.matching.engines import create_engine
from repro.obs import bench as obs_bench
from repro.obs import get_registry
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "shard_scaling.txt"
STREAMS = ("cold", "churn")


def build_engine(subscriptions, *, shards=None, policy=None, workers=0, backend=None):
    """Monolithic compiled engine (``shards=None``) or a sharded one."""
    spec = CHART1_SPEC
    engine = create_engine(
        "compiled" if shards is None else "sharded",
        spec.schema(),
        domains=spec.domains(),
        shards=shards,
        shard_policy=policy,
        shard_workers=workers,
        # The monolithic baseline keeps the default kernel so speedups
        # stay comparable across --backend values (and "procpool" is a
        # sharded-only execution mode anyway).
        backend=backend if shards is not None else None,
    )
    for subscription in subscriptions:
        engine.insert(subscription)
    return engine


def make_streams(num_events, pool_size, seed):
    """Equal-length event streams: unique events vs a finite pool."""
    event_generator = EventGenerator(CHART1_SPEC, seed=seed)
    cold = [event_generator.event_for() for _ in range(num_events)]
    pool = [event_generator.event_for() for _ in range(pool_size)]
    rng = random.Random(seed + 1)
    pooled = [pool[rng.randrange(pool_size)] for _ in range(num_events)]
    return {"cold": cold, "churn": pooled}


def make_churn_plan(subscriptions, num_ops, generator, seed):
    """A deterministic op stream (remove one live subscription, insert a
    fresh one) replayed identically by every engine and repeat."""
    rng = random.Random(seed)
    live = list(subscriptions)
    plan = []
    for _ in range(num_ops):
        index = rng.randrange(len(live))
        fresh = generator.subscription_for("churn")
        plan.append((live[index].subscription_id, fresh))
        live[index] = fresh
    return plan


def time_cold(engine, events, repeats):
    """Best seconds/event for the straight ``match()`` loop."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for event in events:
            engine.match(event)
        best = min(best, time.perf_counter() - start)
    return best / len(events)


def time_churn(build, events, churn, plan, repeats):
    """Best seconds/event with churn interleaved (one op per ``churn``
    events).  ``build`` constructs a fresh engine per repeat so every pass
    replays identical churn from identical state; construction and warm-up
    stay outside the timed region."""
    best = float("inf")
    for _ in range(repeats):
        engine = build()
        engine.match(events[0])  # force compilation before timing
        ops = iter(plan)
        start = time.perf_counter()
        for i, event in enumerate(events):
            if i and i % churn == 0:
                old_id, fresh = next(ops)
                engine.remove(old_id)
                engine.insert(fresh)
            engine.match(event)
        best = min(best, time.perf_counter() - start)
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return best / len(events)


def run(subscriptions_count, num_events, pool_size, churn,
        shard_counts, worker_counts, policy, repeats, seed, backend=None):
    """Sweep shards x workers over both streams; returns (rows, table).

    Each row is ``{stream, shards, workers, per_event_us, speedup}`` where
    ``speedup`` is against the monolithic compiled engine on the same
    stream (``shards=0`` rows are that baseline).
    """
    subscription_generator = SubscriptionGenerator(CHART1_SPEC, seed=seed)
    subscriptions = subscription_generator.subscriptions_for(
        ["client"], subscriptions_count
    )
    streams = make_streams(num_events, pool_size, seed + 10)
    plan = make_churn_plan(
        subscriptions, num_events // churn, subscription_generator, seed + 2
    )

    def timed(stream, build):
        if stream == "cold":
            engine = build()
            engine.match(streams["cold"][0])
            per_event = time_cold(engine, streams["cold"], repeats)
            close = getattr(engine, "close", None)
            if close is not None:
                close()
            return per_event
        return time_churn(build, streams["churn"], churn, plan, repeats)

    header = (
        f"{'stream':>6} {'shards':>6} {'workers':>7} "
        f"{'per_event_us':>13} {'speedup':>8}"
    )
    lines = [
        f"subscriptions={subscriptions_count} events={num_events} "
        f"pool={pool_size} churn=1/{churn} policy={policy} repeats={repeats}",
        "",
        header,
        "-" * len(header),
    ]
    rows = []
    for stream in STREAMS:
        baseline = timed(stream, lambda: build_engine(subscriptions))
        rows.append(
            {
                "stream": stream,
                "shards": 0,
                "workers": 0,
                "per_event_us": baseline * 1e6,
                "speedup": 1.0,
            }
        )
        lines.append(
            f"{stream:>6} {'mono':>6} {0:>7} {baseline * 1e6:>13.1f} {'1.00x':>8}"
        )
        for shards in shard_counts:
            for workers in worker_counts:
                per_event = timed(
                    stream,
                    lambda: build_engine(
                        subscriptions, shards=shards, policy=policy,
                        workers=workers, backend=backend,
                    ),
                )
                speedup = baseline / per_event
                rows.append(
                    {
                        "stream": stream,
                        "shards": shards,
                        "workers": workers,
                        "per_event_us": per_event * 1e6,
                        "speedup": speedup,
                    }
                )
                lines.append(
                    f"{stream:>6} {shards:>6} {workers:>7} "
                    f"{per_event * 1e6:>13.1f} {speedup:>7.2f}x"
                )
    return rows, "\n".join(lines)


def emit_bench(rows, args, directory):
    payload = obs_bench.bench_payload(
        "shard_scaling",
        engine="sharded-vs-compiled",
        workload={
            "spec": "CHART1_SPEC",
            "subscriptions": args.subscriptions,
            "events": args.events,
            "pool": args.pool,
            "churn": args.churn,
            "shard_counts": list(args.shards_list),
            "worker_counts": list(args.workers_list),
            "policy": args.policy,
            "repeats": args.repeats,
            "seed": args.seed,
            "backend": args.backend,
        },
        wall_clock_s=None,
        metrics=get_registry(),
        extra={"rows": rows},
    )
    directory.mkdir(parents=True, exist_ok=True)
    return obs_bench.write_bench(payload, directory)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subscriptions", type=int, default=25000,
        help="subscription count (default: Chart 3's largest point)",
    )
    parser.add_argument("--events", type=int, default=1024, help="events per stream")
    parser.add_argument(
        "--pool", type=int, default=64,
        help="distinct events in the churn stream's pool",
    )
    parser.add_argument(
        "--churn", type=int, default=8,
        help="events between subscription replacements on the churn stream",
    )
    parser.add_argument(
        "--shards-list", type=int, nargs="+", default=[1, 2, 4, 8],
        help="shard counts to sweep",
    )
    parser.add_argument(
        "--workers-list", type=int, nargs="+", default=[0, 4],
        help="worker-pool widths to sweep (0 = serial)",
    )
    parser.add_argument(
        "--policy", default="hash", choices=("round-robin", "hash", "balanced"),
        help="partition policy for the sharded engines",
    )
    parser.add_argument(
        "--backend", default=None, choices=("interp", "vector", "procpool"),
        help="kernel backend for the sharded engines (the monolithic "
        "baseline keeps the default kernel; procpool is sharded-only)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best kept)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--save", action="store_true", help=f"write table to {RESULTS_PATH}")
    parser.add_argument(
        "--bench-out", metavar="DIR", default=None,
        help="emit BENCH_shard_scaling.json into DIR (implied by --save)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="S",
        help="perf gate: the shard count to check (use with --min-speedup)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="perf gate: exit 1 unless the serial sharded engine at S shards "
        "(--shards) beats the monolithic baseline by at least X on the "
        "churn stream",
    )
    args = parser.parse_args(argv)
    if args.shards is not None and args.shards not in args.shards_list:
        args.shards_list = sorted(set(args.shards_list) | {args.shards})
    if args.min_speedup is not None and 0 not in args.workers_list:
        args.workers_list = sorted(set(args.workers_list) | {0})

    get_registry().enable()  # before any engine exists, so instruments record
    rows, table = run(
        args.subscriptions, args.events, args.pool, args.churn,
        args.shards_list, args.workers_list, args.policy, args.repeats,
        args.seed, args.backend,
    )
    print(table)
    if args.save:
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(table + "\n")
        print(f"\nsaved to {RESULTS_PATH}")
    if args.save or args.bench_out:
        out_dir = pathlib.Path(args.bench_out) if args.bench_out else RESULTS_DIR
        path = emit_bench(rows, args, out_dir)
        print(f"bench artifact: {path}")

    if args.min_speedup is not None:
        if args.shards is None:
            parser.error("--min-speedup requires --shards")
        gate_row = next(
            row for row in rows
            if row["stream"] == "churn"
            and row["shards"] == args.shards
            and row["workers"] == 0
        )
        if gate_row["speedup"] < args.min_speedup:
            print(
                f"PERF GATE FAILED: sharded speedup {gate_row['speedup']:.2f}x "
                f"< {args.min_speedup:.2f}x at {args.shards} shards (churn stream)",
                file=sys.stderr,
            )
            return 1
        print(
            f"perf gate passed: {gate_row['speedup']:.2f}x >= "
            f"{args.min_speedup:.2f}x at {args.shards} shards (churn stream)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
