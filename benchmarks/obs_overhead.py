"""Measure the wall-clock overhead of the observability layer on the hot path.

The acceptance bar for :mod:`repro.obs` is that metrics-enabled matching on
the Chart 3 hot path at 25,000 subscriptions costs < 5% extra wall-clock
over the disabled (no-op instruments) baseline.  Instruments bind at engine
construction time, so each arm builds its own engine under the registry
state it measures.

Run from the repo root::

    PYTHONPATH=src python benchmarks/obs_overhead.py
    PYTHONPATH=src python benchmarks/obs_overhead.py --subscriptions 25000 --save
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.matching.engines import create_engine
from repro.obs import get_registry
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "obs_overhead.txt"


def _one_pass(engine, events):
    start = time.perf_counter()
    for event in events:
        engine.match(event)
    return time.perf_counter() - start


def measure(engine_name, count, num_events, repeats, seed):
    spec = CHART1_SPEC
    subscriptions = SubscriptionGenerator(spec, seed=seed).subscriptions_for(
        ["client"], count
    )
    events = [EventGenerator(spec, seed=seed + 1).event_for() for _ in range(num_events)]
    registry = get_registry()

    # Build one engine per arm (instruments bind at construction; an engine
    # built while the registry is disabled keeps no-op instruments forever).
    engines = {}
    for arm in ("disabled", "enabled"):
        registry.disable() if arm == "disabled" else registry.enable()
        engine = create_engine(engine_name, spec.schema(), domains=spec.domains())
        for subscription in subscriptions:
            engine.insert(subscription)
        engine.match(events[0])  # warm up (compiled: force compilation)
        engines[arm] = engine
    registry.disable()

    # Interleave the timing passes: the process slows gradually as engines
    # and their allocations accumulate, so back-to-back arms would charge
    # that drift entirely to whichever arm runs second.
    best = {"disabled": float("inf"), "enabled": float("inf")}
    for _ in range(repeats):
        for arm in ("disabled", "enabled"):
            best[arm] = min(best[arm], _one_pass(engines[arm], events))
    per_match = {arm: best[arm] / len(events) for arm in best}
    overhead = per_match["enabled"] / per_match["disabled"] - 1.0
    return per_match["disabled"], per_match["enabled"], overhead


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subscriptions", type=int, default=25000)
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--repeats", type=int, default=5, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--engines", nargs="+", default=["compiled", "tree"],
        choices=["compiled", "tree"],
    )
    parser.add_argument("--max-overhead", type=float, default=0.05, metavar="FRACTION",
                        help="exit 1 if any engine's overhead exceeds this")
    parser.add_argument("--save", action="store_true", help=f"write {RESULTS_PATH}")
    args = parser.parse_args(argv)

    header = (
        f"obs overhead @ {args.subscriptions} subscriptions, "
        f"{args.events} events, best of {args.repeats}"
    )
    lines = [header, "-" * len(header)]
    worst = float("-inf")
    for engine_name in args.engines:
        disabled, enabled, overhead = measure(
            engine_name, args.subscriptions, args.events, args.repeats, args.seed
        )
        worst = max(worst, overhead)
        lines.append(
            f"{engine_name:>9}: disabled {disabled * 1e6:8.2f} us/match, "
            f"enabled {enabled * 1e6:8.2f} us/match, overhead {overhead * 100:+6.2f}%"
        )
    lines.append(
        f"acceptance: worst overhead {worst * 100:+.2f}% "
        f"(bar: < {args.max_overhead * 100:.0f}%)"
    )
    text = "\n".join(lines)
    print(text)
    if args.save:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"saved to {RESULTS_PATH}")
    return 1 if worst > args.max_overhead else 0


if __name__ == "__main__":
    sys.exit(main())
