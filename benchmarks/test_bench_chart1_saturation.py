"""Chart 1 — saturation publish rate vs number of subscriptions.

Regenerates the paper's Chart 1 series: for each subscription count, the
aggregate event publish rate at which the Figure 6 network overloads, under
flooding and under link matching.  The paper's qualitative result — checked
by assertion here — is that flooding saturates at significantly lower rates
for every subscription count, with the gap largest for selective workloads.
"""

from __future__ import annotations

from conftest import archive_table, paper_scale

from repro.experiments import Chart1Config, run_chart1


def chart1_config() -> Chart1Config:
    if paper_scale():
        return Chart1Config(
            subscription_counts=(500, 1000, 2000, 4000),
            subscribers_per_broker=10,
            probe_duration_s=0.5,
        )
    return Chart1Config(
        subscription_counts=(100, 300, 900),
        subscribers_per_broker=3,
        probe_duration_s=0.4,
    )


def test_chart1_saturation_points(once):
    config = chart1_config()
    table = once(lambda: run_chart1(config))
    archive_table(
        "chart1_saturation",
        table,
        engine=config.engine,
        workload=config,
        wall_clock_s=once.last_wall_clock_s,
    )
    by_protocol = {}
    for count, protocol, rate, _probes in table.rows:
        by_protocol.setdefault(protocol, {})[count] = rate
    for count in config.subscription_counts:
        assert by_protocol["flooding"][count] < by_protocol["link-matching"][count], (
            f"flooding must saturate below link matching at {count} subscriptions"
        )
