"""Microbenchmarks of the hot primitives.

Not chart regenerators — these pin down the per-operation costs that the
simulator's cost model abstracts (matching step, link-match refinement,
codec, trit-vector combine) so regressions in the core structures show up
directly in pytest-benchmark's statistics.
"""

from __future__ import annotations

import random

from repro.core import ContentRoutedNetwork, TritVector
from repro.matching import SearchDag, build_pst
from repro.network import linear_chain
from repro.workload import CHART1_SPEC, CHART2_SPEC, EventGenerator, SubscriptionGenerator


def build_workload(spec, num_subscriptions, seed=0):
    generator = SubscriptionGenerator(spec, seed=seed)
    subscriptions = generator.subscriptions_for(["c"], num_subscriptions)
    events = EventGenerator(spec, seed=seed + 1)
    sample = [events.event_for() for _ in range(64)]
    return subscriptions, sample


class TestMatchingMicro:
    def test_pst_match_2000_subscriptions(self, benchmark):
        subscriptions, sample = build_workload(CHART1_SPEC, 2000)
        tree = build_pst(CHART1_SPEC.schema(), subscriptions)
        tree.eliminate_trivial_tests()
        state = {"i": 0}

        def match():
            state["i"] = (state["i"] + 1) % len(sample)
            return tree.match(sample[state["i"]])

        benchmark(match)

    def test_dag_match_2000_subscriptions(self, benchmark):
        subscriptions, sample = build_workload(CHART2_SPEC, 2000)
        tree = build_pst(CHART2_SPEC.schema(), subscriptions)
        tree.eliminate_trivial_tests()
        dag = SearchDag(tree)
        state = {"i": 0}

        def match():
            state["i"] = (state["i"] + 1) % len(sample)
            return dag.match(sample[state["i"]])

        benchmark(match)

    def test_pst_insert(self, benchmark):
        spec = CHART1_SPEC
        generator = SubscriptionGenerator(spec, seed=7)
        subscriptions = generator.subscriptions_for(["c"], 4000)
        state = {"tree": build_pst(spec.schema(), []), "i": 0}

        def insert():
            if state["i"] >= len(subscriptions):
                state["tree"] = build_pst(spec.schema(), [])
                state["i"] = 0
            state["tree"].insert(subscriptions[state["i"]])
            state["i"] += 1

        benchmark(insert)


class TestRoutingMicro:
    def test_link_match_route_decision(self, benchmark):
        """One broker's route() on a 6-broker chain with 600 subscriptions."""
        spec = CHART1_SPEC
        topology = linear_chain(6, subscribers_per_broker=4)
        network = ContentRoutedNetwork(
            topology,
            spec.schema(),
            domains=spec.domains(),
            factoring_attributes=spec.factoring_attributes,
        )
        generator = SubscriptionGenerator(spec, seed=9)
        subscribers = topology.subscribers()
        for subscription in generator.subscriptions_for(subscribers, 600):
            network.subscribe(subscription.subscriber, subscription.predicate)
        events = EventGenerator(spec, seed=10)
        sample = [events.event_for() for _ in range(64)]
        router = network.routers["B0"]
        router.route(sample[0], "B0")  # warm annotations
        state = {"i": 0}

        def route():
            state["i"] = (state["i"] + 1) % len(sample)
            return router.route(sample[state["i"]], "B0")

        benchmark(route)


class TestPrimitivesMicro:
    def test_trit_vector_parallel_combine(self, benchmark):
        rng = random.Random(1)
        vectors = [
            TritVector("".join(rng.choice("YNM") for _ in range(32)))
            for _ in range(64)
        ]
        state = {"i": 0}

        def combine():
            state["i"] = (state["i"] + 2) % 64
            return vectors[state["i"]].parallel(vectors[state["i"] + 1])

        benchmark(combine)

    def test_event_codec_roundtrip(self, benchmark):
        from repro.broker import decode_event, encode_event

        spec = CHART1_SPEC
        event = EventGenerator(spec, seed=11).event_for()

        def roundtrip():
            return decode_event(spec.schema(), encode_event(event))

        benchmark(roundtrip)

    def test_expression_parse(self, benchmark):
        from repro.matching import parse_predicate, stock_trade_schema

        schema = stock_trade_schema()

        def parse():
            return parse_predicate(schema, "issue='IBM' & price<120 & volume>1000")

        benchmark(parse)
