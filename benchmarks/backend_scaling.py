"""Kernel-backend sweep: interp vs vector kernels, procpool vs monolithic.

Builds Chart-1-spec engines at a large subscription count and times the
batched matching path (``match_batch`` over fixed-size batches) across the
execution-backend axis introduced in :mod:`repro.matching.backends`:

``kernel`` rows
    One monolithic :class:`CompiledEngine` per in-process kernel backend
    (``interp``, ``vector``, and the vector backend's forced
    zero-dependency column fallback).  Projection caches are disabled so
    repeated timing passes measure the kernels, not cache hits — the
    "cold" stream of the other benchmark scripts.  ``speedup`` is against
    the ``interp`` row.

``procpool`` rows
    :class:`ShardedEngine` in process-worker mode (compiled shard
    programs published once into shared memory, one pipe round-trip per
    worker per batch) against the same monolithic ``interp`` baseline.

Run from the repo root::

    PYTHONPATH=src python benchmarks/backend_scaling.py
    PYTHONPATH=src python benchmarks/backend_scaling.py --min-vector-speedup 1.3 \\
        --min-procpool-speedup 1.0

``--save`` archives the table under ``benchmarks/results/backend_scaling.txt``
and emits ``BENCH_backend_scaling.json`` next to it.  The two ``--min-*``
flags turn the script into the CI gate: exit code 1 unless ``vector`` beats
``interp`` by the given factor on the batch-64 stream AND the sharded
procpool engine (``--shards`` x ``--workers``) at least matches the
monolithic baseline.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.matching.backends import KERNEL_BACKEND_NAMES
from repro.matching.backends.vector import VectorBackend
from repro.matching.engines import CompiledEngine, create_engine
from repro.obs import bench as obs_bench
from repro.obs import get_registry
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "backend_scaling.txt"


def build_compiled(subscriptions, backend):
    """Monolithic compiled engine, projection caches off (cold stream)."""
    spec = CHART1_SPEC
    engine = CompiledEngine(
        spec.schema(),
        domains=spec.domains(),
        match_cache_capacity=0,
        backend=backend,
    )
    for subscription in subscriptions:
        engine.insert(subscription)
    return engine


def build_procpool(subscriptions, shards, workers):
    spec = CHART1_SPEC
    engine = create_engine(
        "sharded",
        spec.schema(),
        domains=spec.domains(),
        match_cache_capacity=0,
        shards=shards,
        shard_workers=workers,
        backend="procpool",
    )
    for subscription in subscriptions:
        engine.insert(subscription)
    return engine


def time_batches(engine, batches, repeats):
    """Best seconds/event for the ``match_batch`` loop over all batches.

    Best-of-repeats, like every other script here: with the caches off
    each pass re-executes the kernels, and the minimum amortizes one-time
    costs (compilation, the vector backend's columnar index build, the
    procpool engine's worker forks and shared-memory publications) that
    real streams also pay exactly once.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for batch in batches:
            engine.match_batch(batch)
        best = min(best, time.perf_counter() - start)
    return best / sum(len(batch) for batch in batches)


def run(subscriptions_count, num_events, batch, shards, workers, repeats, seed):
    """Sweep the backend axis; returns (rows, rendered table text).

    Each row is ``{mode, backend, shards, workers, per_event_us, speedup}``
    with ``speedup`` against the monolithic ``interp`` row.
    """
    spec = CHART1_SPEC
    subscriptions = SubscriptionGenerator(spec, seed=seed).subscriptions_for(
        ["client"], subscriptions_count
    )
    event_generator = EventGenerator(spec, seed=seed + 1)
    events = [event_generator.event_for() for _ in range(num_events)]
    batches = [events[i : i + batch] for i in range(0, len(events), batch)]

    header = (
        f"{'mode':>8} {'backend':>16} {'shards':>6} {'workers':>7} "
        f"{'per_event_us':>13} {'speedup':>8}"
    )
    lines = [
        f"subscriptions={subscriptions_count} events={num_events} "
        f"batch={batch} repeats={repeats} caches=off",
        "",
        header,
        "-" * len(header),
    ]
    rows = []

    def record(mode, backend, shard_count, worker_count, per_event, baseline):
        speedup = baseline / per_event
        rows.append(
            {
                "mode": mode,
                "backend": backend,
                "shards": shard_count,
                "workers": worker_count,
                "per_event_us": per_event * 1e6,
                "speedup": speedup,
            }
        )
        lines.append(
            f"{mode:>8} {backend:>16} {shard_count:>6} {worker_count:>7} "
            f"{per_event * 1e6:>13.1f} {speedup:>7.2f}x"
        )
        return speedup

    kernels = [(name, name) for name in KERNEL_BACKEND_NAMES]
    kernels.append(("vector-fallback", VectorBackend(force_fallback=True)))
    baseline = None
    for label, backend in kernels:
        engine = build_compiled(subscriptions, backend)
        engine.match(events[0])  # force compilation outside the timed region
        per_event = time_batches(engine, batches, repeats)
        if baseline is None:
            baseline = per_event  # interp is first in KERNEL_BACKEND_NAMES
        record("kernel", label, 0, 0, per_event, baseline)

    engine = build_procpool(subscriptions, shards, workers)
    try:
        engine.match_batch(batches[0])  # fork workers + publish programs
        per_event = time_batches(engine, batches, repeats)
    finally:
        engine.close()
    record("procpool", "procpool", shards, workers, per_event, baseline)
    return rows, "\n".join(lines)


def emit_bench(rows, args, directory):
    payload = obs_bench.bench_payload(
        "backend_scaling",
        engine="backend-sweep",
        workload={
            "spec": "CHART1_SPEC",
            "subscriptions": args.subscriptions,
            "events": args.events,
            "batch": args.batch,
            "shards": args.shards,
            "workers": args.workers,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        wall_clock_s=None,
        metrics=get_registry(),
        extra={"rows": rows},
    )
    directory.mkdir(parents=True, exist_ok=True)
    return obs_bench.write_bench(payload, directory)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subscriptions", type=int, default=25000,
        help="subscription count (default: Chart 3's largest point)",
    )
    parser.add_argument("--events", type=int, default=1024, help="events per stream")
    parser.add_argument("--batch", type=int, default=64, help="events per match_batch call")
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count for the procpool row"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process-worker count for the procpool row"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best kept)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--save", action="store_true", help=f"write table to {RESULTS_PATH}")
    parser.add_argument(
        "--bench-out", metavar="DIR", default=None,
        help="emit BENCH_backend_scaling.json into DIR (implied by --save)",
    )
    parser.add_argument(
        "--min-vector-speedup", type=float, default=None, metavar="X",
        help="perf gate: exit 1 unless the vector kernel beats interp by X",
    )
    parser.add_argument(
        "--min-procpool-speedup", type=float, default=None, metavar="X",
        help="perf gate: exit 1 unless the sharded procpool engine reaches "
        "X times the monolithic interp baseline",
    )
    args = parser.parse_args(argv)

    get_registry().enable()  # before any engine exists, so instruments record
    rows, table = run(
        args.subscriptions, args.events, args.batch,
        args.shards, args.workers, args.repeats, args.seed,
    )
    print(table)
    if args.save:
        RESULTS_DIR.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(table + "\n")
        print(f"\nsaved to {RESULTS_PATH}")
    if args.save or args.bench_out:
        out_dir = pathlib.Path(args.bench_out) if args.bench_out else RESULTS_DIR
        path = emit_bench(rows, args, out_dir)
        print(f"bench artifact: {path}")

    failed = False
    gates = (
        ("vector", args.min_vector_speedup,
         next(row for row in rows if row["backend"] == "vector")),
        ("procpool", args.min_procpool_speedup,
         next(row for row in rows if row["mode"] == "procpool")),
    )
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    for label, floor, row in gates:
        if floor is None:
            continue
        if label == "procpool" and cores < 2:
            # Process workers timeshare a single core, so the row measures
            # IPC overhead with no parallelism to buy it back — the number
            # is real but it is not what the gate protects.
            print(
                f"perf gate skipped: procpool needs >= 2 cores to be "
                f"meaningful (this host exposes {cores}); measured "
                f"{row['speedup']:.2f}x",
                file=sys.stderr,
            )
            continue
        if row["speedup"] < floor:
            print(
                f"PERF GATE FAILED: {label} speedup {row['speedup']:.2f}x "
                f"< {floor:.2f}x vs the monolithic interp baseline",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"perf gate passed: {label} {row['speedup']:.2f}x >= {floor:.2f}x"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
