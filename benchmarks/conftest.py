"""Shared helpers for the benchmark suite.

Every chart benchmark runs its experiment harness exactly once under
pytest-benchmark (rounds=1 — these are minutes-long simulations, not
microbenchmarks), prints the regenerated table, and archives it under
``benchmarks/results/``.

Set ``REPRO_PAPER_SCALE=1`` to run the charts at the paper's full parameters
(thousands of subscriptions, 500-1000 events); the default is a scaled-down
sweep that preserves every qualitative shape and finishes in minutes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def paper_scale() -> bool:
    """Whether to run at the paper's full parameters."""
    return os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0")


def archive_table(name: str, table) -> None:
    """Print a regenerated table and save it under benchmarks/results/."""
    text = table.format()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run
