"""Shared helpers for the benchmark suite.

Every chart benchmark runs its experiment harness exactly once under
pytest-benchmark (rounds=1 — these are minutes-long simulations, not
microbenchmarks), prints the regenerated table, archives it under
``benchmarks/results/`` and emits a schema-versioned machine-readable
``BENCH_<name>.json`` artifact next to it (see :mod:`repro.obs.bench`) —
the file the CI perf gate and ``benchmarks/trend.py`` consume.

The global :mod:`repro.obs` registry is enabled for the whole benchmark
session (instruments fetched while it is disabled stay no-ops, so this must
happen before any engine or protocol is constructed), and each artifact
embeds its snapshot.  Wall-clock timing goes through the registry's
:class:`~repro.obs.registry.Timer` — ``time.perf_counter`` underneath.

Set ``REPRO_PAPER_SCALE=1`` to run the charts at the paper's full parameters
(thousands of subscriptions, 500-1000 events); the default is a scaled-down
sweep that preserves every qualitative shape and finishes in minutes.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Dict, Optional

import pytest

from repro.obs import bench as obs_bench
from repro.obs import get_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def paper_scale() -> bool:
    """Whether to run at the paper's full parameters."""
    return os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0")


@pytest.fixture(scope="session", autouse=True)
def _obs_registry_enabled():
    """Enable the global observability registry for the whole session."""
    registry = get_registry()
    was_enabled = registry.enabled
    registry.enable()
    yield registry
    if not was_enabled:
        registry.disable()


def emit_bench(
    name: str,
    *,
    table: Any = None,
    engine: Optional[str] = None,
    workload: Any = None,
    wall_clock_s: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
    directory: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` (global-registry snapshot embedded)."""
    payload = obs_bench.bench_payload(
        name,
        engine=engine,
        workload=workload,
        wall_clock_s=wall_clock_s,
        metrics=get_registry(),
        table=table,
        extra=extra,
    )
    target = directory if directory is not None else RESULTS_DIR
    target.mkdir(parents=True, exist_ok=True)
    path = obs_bench.write_bench(payload, target)
    print(f"bench artifact: {path}")
    return path


def archive_table(
    name: str,
    table,
    *,
    engine: Optional[str] = None,
    workload: Any = None,
    wall_clock_s: Optional[float] = None,
) -> None:
    """Print a regenerated table, save it under ``benchmarks/results/`` and
    emit the matching ``BENCH_<name>.json`` artifact."""
    text = table.format()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    emit_bench(
        name,
        table=table,
        engine=engine,
        workload=workload,
        wall_clock_s=wall_clock_s,
    )


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark.

    The wall-clock duration of the last run (obs Timer, perf_counter-based)
    is exposed as ``once.last_wall_clock_s`` for BENCH artifacts.
    """

    def run(fn):
        timer = get_registry().timer("bench.wall_clock_s")
        result, elapsed = timer.timeit(lambda: benchmark.pedantic(fn, rounds=1, iterations=1))
        run.last_wall_clock_s = elapsed
        return result

    run.last_wall_clock_s = None
    return run
