"""Quickstart: content-based pub/sub in one file.

Builds the paper's stock-trade information space, a three-broker network,
registers content-based subscriptions (the exact predicate from the paper's
introduction), publishes events, and shows where link matching sent them.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ContentRoutedNetwork, stock_trade_schema
from repro.network import NodeKind, Topology


def build_topology() -> Topology:
    """Three brokers in a line; Alice near the publisher, Bob two hops away."""
    topology = Topology()
    topology.add_broker("NY")
    topology.add_broker("LONDON")
    topology.add_broker("TOKYO")
    topology.add_link("NY", "LONDON", latency_ms=35.0)
    topology.add_link("LONDON", "TOKYO", latency_ms=60.0)
    topology.add_client("alice", "NY")
    topology.add_client("bob", "TOKYO")
    topology.add_client("ticker", "NY", kind=NodeKind.PUBLISHER)
    return topology


def main() -> None:
    schema = stock_trade_schema()  # [issue: string, price: dollar, volume: integer]
    network = ContentRoutedNetwork(build_topology(), schema)

    # The paper's running example subscription, plus an orthogonal one: Bob
    # filters on volume alone — impossible to express in subject-based
    # pub/sub without pre-defining a "high-volume" subject.
    network.subscribe("alice", "issue='IBM' & price<120 & volume>1000")
    network.subscribe("bob", "volume>50000")

    trades = [
        {"issue": "IBM", "price": 119.5, "volume": 2500},
        {"issue": "IBM", "price": 121.0, "volume": 2500},   # price too high for Alice
        {"issue": "MSFT", "price": 55.0, "volume": 80000},  # Bob's volume filter
        {"issue": "IBM", "price": 99.0, "volume": 60000},   # both match
    ]
    for values in trades:
        trace = network.publish("ticker", values)
        recipients = sorted(trace.delivered_clients) or ["(nobody)"]
        links = ", ".join(f"{a}->{b}" for a, b in trace.links_used) or "none"
        print(
            f"{values['issue']:<5} ${values['price']:<7} x{values['volume']:<6} "
            f"-> {', '.join(recipients):<12} broker links used: {links}"
        )

    print()
    print("Note the second trade crossed zero broker links: no remote broker")
    print("had an interested subscriber, so link matching never forwarded it.")


if __name__ == "__main__":
    main()
