"""Failure-and-recovery tour: everything that keeps deliveries exactly-once.

Uses the test harness (`repro.testkit`) to run a three-broker network with
disk-backed event logs, then injects the failures the prototype is built to
survive:

1. a client crashes and reconnects — the broker-side log replays its backlog;
2. a *broker* crashes and restarts — neighbor brokers re-dial, the hello
   handshake resyncs its subscription copy, and its persistent logs restore
   pending deliveries;
3. garbage collection runs throughout and never eats an unacked event.

Run:
    python examples/resilient_brokers.py
"""

from __future__ import annotations

import tempfile

from repro.matching import stock_trade_schema
from repro.testkit import InMemoryBrokerHarness


def main() -> None:
    schema = stock_trade_schema()
    with tempfile.TemporaryDirectory(prefix="repro-logs-") as log_dir:
        with InMemoryBrokerHarness.for_chain(
            3, schema, log_directory=log_dir
        ) as harness:
            trader = harness.attach("S.B2.00")
            feed = harness.attach("P1")
            trader.subscribe_and_wait("issue='IBM'")
            harness.settle()
            print("subscriptions per broker:",
                  {name: node.subscription_count for name, node in harness.nodes.items()})

            feed.publish({"issue": "IBM", "price": 100.0, "volume": 10})
            harness.settle()
            print(f"\n[1] normal delivery: trader has {len(trader.received_events)} event(s)")

            print("\n[2] trader crashes; two trades happen while it is gone")
            trader.drop_connection()
            harness.settle()
            feed.publish({"issue": "IBM", "price": 101.0, "volume": 20})
            feed.publish({"issue": "IBM", "price": 102.0, "volume": 30})
            harness.settle()
            log_size = len(harness.node("B2").session("S.B2.00").log)
            print(f"    B2 holds {log_size} undelivered event(s) on disk")
            trader.connect(resume=True)
            harness.settle()
            prices = [e["price"] for e in trader.received_events]
            print(f"    after reconnect the trader has every trade, in order: {prices}")

            print("\n[3] broker B2 crashes and restarts")
            trader.drop_connection()
            harness.settle()
            feed.publish({"issue": "IBM", "price": 103.0, "volume": 40})
            harness.settle()
            harness.restart_broker("B2", log_directory=log_dir)
            restarted = harness.node("B2")
            print(f"    restarted B2 resynced {restarted.subscription_count} "
                  "subscription(s) from its neighbors")
            trader.connect(resume=True)
            harness.settle()
            prices = [e["price"] for e in trader.received_events]
            print(f"    trader recovered the trade published before the crash: {prices}")

            collected = sum(node.collect_garbage() for node in harness.nodes.values())
            print(f"\n[gc] reclaimed {collected} acked log entries; "
                  "nothing unacked was touched")
            stats = restarted.stats()
            print(f"[stats] B2 snapshot: routed={stats['events_routed']}, "
                  f"delivered={stats['events_delivered']}, "
                  f"logged={stats['logged_entries']}")


if __name__ == "__main__":
    main()
