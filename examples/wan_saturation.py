"""WAN saturation study on the Figure 6 topology (a mini Chart 1).

Runs the paper's 39-broker simulation at one publish rate under flooding and
under link matching and prints per-protocol network load; then searches for
each protocol's saturation point.  This is the Chart 1 experiment at
example-friendly scale — the full sweep lives in
``benchmarks/test_bench_chart1_saturation.py``.

Run:
    python examples/wan_saturation.py
"""

from __future__ import annotations

from repro.experiments.chart1 import Chart1Config, saturation_for
from repro.network import figure6_topology
from repro.protocols import FloodingProtocol, LinkMatchingProtocol, ProtocolContext
from repro.sim import NetworkSimulation
from repro.workload import (
    CHART1_SPEC,
    EventGenerator,
    SubscriptionGenerator,
    figure6_region_of,
)

NUM_SUBSCRIPTIONS = 250
PROBE_RATE = 2500.0  # events/second across the three tracked publishers


def main() -> None:
    spec = CHART1_SPEC
    topology = figure6_topology(subscribers_per_broker=3)
    print(f"Topology: {topology}")
    generator = SubscriptionGenerator(spec, seed=7, region_of=figure6_region_of)
    subscriptions = generator.subscriptions_for(topology.subscribers(), NUM_SUBSCRIPTIONS)
    events = EventGenerator(spec, seed=8, region_of=figure6_region_of)
    context = ProtocolContext(
        topology,
        spec.schema(),
        subscriptions,
        domains=spec.domains(),
        factoring_attributes=spec.factoring_attributes,
    )
    protocols = [LinkMatchingProtocol(context), FloodingProtocol(context)]

    print(f"\n-- fixed-rate run at {PROBE_RATE:.0f} events/s --")
    for protocol in protocols:
        simulation = NetworkSimulation(topology, protocol, seed=3)
        for publisher in topology.publishers():
            simulation.add_poisson_publisher(
                publisher, PROBE_RATE / 3, events.factory_for(publisher), 300
            )
        result = simulation.run(max_seconds=1.5, drain=False)
        print(
            f"{protocol.name:>14}: {result.total_broker_messages:>6} broker messages, "
            f"{result.total_link_messages:>6} link crossings, "
            f"{len(result.matched_deliveries):>4} useful deliveries, "
            f"{result.wasted_deliveries:>5} wasted, "
            f"overloaded={result.is_overloaded}"
        )

    print("\n-- saturation search (this takes a minute) --")
    config = Chart1Config(probe_duration_s=0.4, subscribers_per_broker=3)
    for protocol in protocols:
        result = saturation_for(topology, protocol, events, config)
        print(
            f"{protocol.name:>14}: saturates at ~{result.saturation_rate:,.0f} events/s "
            f"({len(result.probes)} probes)"
        )
    print("\nFlooding loads every broker with every event; link matching only")
    print("touches brokers on the way to interested subscribers — hence the gap.")


if __name__ == "__main__":
    main()
