"""Run a real broker network over TCP sockets on localhost.

Starts three prototype brokers (each with the paper's transport design:
per-connection outgoing queues drained by a sender-thread pool), connects a
subscriber and a publisher over TCP, and streams trades through.

Run:
    python examples/tcp_brokers.py
"""

from __future__ import annotations

import threading
import time

from repro.broker import BrokerClient, BrokerNetworkConfig, BrokerNode, TcpTransport
from repro.matching import stock_trade_schema
from repro.network import NodeKind, Topology


def main() -> None:
    schema = stock_trade_schema()
    topology = Topology()
    for broker in ("EDGE_A", "CORE", "EDGE_B"):
        topology.add_broker(broker)
    topology.add_link("EDGE_A", "CORE", latency_ms=2.0)
    topology.add_link("CORE", "EDGE_B", latency_ms=2.0)
    topology.add_client("trader", "EDGE_B")
    topology.add_client("feed", "EDGE_A", kind=NodeKind.PUBLISHER)

    config = BrokerNetworkConfig(topology, schema)
    transport = TcpTransport(sender_threads=2)
    # Ephemeral ports: every broker listens on :0 and publishes the actual
    # port into the shared endpoints mapping.
    endpoints = {broker: "127.0.0.1:0" for broker in topology.brokers()}
    nodes = {
        broker: BrokerNode(config, broker, transport, endpoints)
        for broker in topology.brokers()
    }
    for node in nodes.values():
        node.start()
    for node in nodes.values():
        node.connect_neighbors()
    time.sleep(0.2)
    print("Broker mesh:", {name: node.connected_brokers for name, node in nodes.items()})

    received = []
    done = threading.Event()

    def on_trade(event, seq):
        received.append(event)
        if len(received) == 50:
            done.set()

    trader = BrokerClient(
        "trader", schema, transport, endpoints["EDGE_B"], on_event=on_trade
    )
    feed = BrokerClient("feed", schema, transport, endpoints["EDGE_A"])
    trader.connect()
    feed.connect()
    time.sleep(0.2)
    trader.subscribe_and_wait("issue='IBM' & volume>=1000")
    time.sleep(0.2)  # let the subscription flood reach EDGE_A

    start = time.perf_counter()
    for i in range(100):
        feed.publish(
            {
                "issue": "IBM" if i % 2 == 0 else "MSFT",
                "price": 100.0 + i,
                "volume": 1000 + i,
            }
        )
    done.wait(timeout=10.0)
    elapsed = time.perf_counter() - start
    print(f"Delivered {len(received)} matching trades over TCP in {elapsed * 1000:.1f} ms")
    print("Sample:", received[0].values if received else None)

    for node in nodes.values():
        node.stop()
    transport.close()


if __name__ == "__main__":
    main()
