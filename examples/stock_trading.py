"""Stock trading over the prototype broker network (Section 4.2 stack).

The paper's motivating domain, run on the real prototype: three brokers
(Figure 7 components — matching engine, client/broker protocols, connection
manager, transport), trading desks with content-based subscriptions, a
market-data feed publishing trades, and a desk that crashes mid-session and
recovers every missed trade on reconnect.

Run:
    python examples/stock_trading.py
"""

from __future__ import annotations

import random

from repro.broker import (
    BrokerClient,
    BrokerNetworkConfig,
    BrokerNode,
    InMemoryTransport,
)
from repro.matching import stock_trade_schema
from repro.network import NodeKind, Topology

ISSUES = ["IBM", "MSFT", "ORCL", "SUNW", "INTC"]


def build_network():
    schema = stock_trade_schema()
    topology = Topology()
    for broker in ("NYC", "CHI", "SFO"):
        topology.add_broker(broker)
    topology.add_link("NYC", "CHI", latency_ms=8.0)
    topology.add_link("CHI", "SFO", latency_ms=15.0)
    topology.add_client("desk_value", "NYC")       # value investor
    topology.add_client("desk_momentum", "CHI")    # volume chaser
    topology.add_client("desk_ibm", "SFO")         # single-issue desk
    topology.add_client("feed", "NYC", kind=NodeKind.PUBLISHER)
    config = BrokerNetworkConfig(topology, schema)
    transport = InMemoryTransport()
    endpoints = {name: f"mem://{name}" for name in topology.brokers()}
    nodes = {
        name: BrokerNode(config, name, transport, endpoints)
        for name in topology.brokers()
    }
    for node in nodes.values():
        node.start()
    for node in nodes.values():
        node.connect_neighbors()
    transport.pump()
    return schema, topology, transport, nodes


def attach(name, schema, transport, broker):
    client = BrokerClient(
        name, schema, transport, f"mem://{broker}", pump=transport.pump
    )
    client.connect()
    transport.pump()
    return client


def main() -> None:
    schema, topology, transport, nodes = build_network()
    desks = {
        name: attach(name, schema, transport, topology.broker_of(name))
        for name in ("desk_value", "desk_momentum", "desk_ibm")
    }
    feed = attach("feed", schema, transport, "NYC")

    desks["desk_value"].subscribe_and_wait("price<25 & volume>1000")
    desks["desk_momentum"].subscribe_and_wait("volume>40000")
    desks["desk_ibm"].subscribe_and_wait("issue='IBM'")
    transport.pump()
    print("Subscriptions replicated to every broker:",
          {name: node.subscription_count for name, node in nodes.items()})

    rng = random.Random(1999)

    def random_trade():
        return {
            "issue": rng.choice(ISSUES),
            "price": round(rng.uniform(5.0, 150.0), 2),
            "volume": rng.randrange(100, 100_000),
        }

    print("\n-- trading session, part 1 --")
    for _ in range(40):
        feed.publish(random_trade())
    transport.pump()
    for name, desk in desks.items():
        print(f"{name:<14} received {len(desk.received_events):>3} trades")

    print("\n-- desk_ibm crashes; the market keeps moving --")
    desks["desk_ibm"].drop_connection()
    transport.pump()
    for _ in range(40):
        feed.publish(random_trade())
    transport.pump()
    log_size = len(nodes["SFO"].session("desk_ibm").log)
    print(f"SFO logged {log_size} trades for the dead desk")

    print("\n-- desk_ibm reconnects and recovers --")
    desks["desk_ibm"].connect(resume=True)
    transport.pump()
    ibm_trades = [e for e in desks["desk_ibm"].received_events]
    assert all(e["issue"] == "IBM" for e in ibm_trades)
    print(f"desk_ibm now has {len(ibm_trades)} IBM trades, none lost, in order:",
          all(a <= b for a, b in zip(
              [seq for seq, _ in desks["desk_ibm"].deliveries],
              [seq for seq, _ in desks["desk_ibm"].deliveries][1:],
          )))
    collected = nodes["SFO"].collect_garbage()
    print(f"log GC reclaimed {collected} acked entries")


if __name__ == "__main__":
    main()
