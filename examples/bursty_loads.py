"""Bursty message loads — exploring the paper's future-work question.

"Since many publish/subscribe applications exhibit peak activity periods,
we are examining how our protocol performs with bursty message loads."
(Section 6.)

Runs the Figure 6 network under link matching at one fixed mean publish
rate while sweeping the burstiness of the arrival process (1 = Poisson,
higher = the same events squeezed into ON periods), and prints queue and
latency behaviour.

Run:
    python examples/bursty_loads.py
"""

from __future__ import annotations

from repro.experiments import BurstyConfig, run_bursty
from repro.experiments.ascii_chart import Series, render_chart


def main() -> None:
    config = BurstyConfig(
        num_subscriptions=250,
        subscribers_per_broker=3,
        mean_rate=3500.0,
        burstiness_factors=(1.0, 2.0, 5.0, 10.0, 20.0),
        duration_s=1.0,
    )
    print(
        f"Figure 6 topology, link matching, mean rate fixed at "
        f"{config.mean_rate:.0f} events/s\n"
    )
    table = run_bursty(config)
    print(table.format())
    print()
    print(
        render_chart(
            "max broker queue depth vs burstiness factor",
            [
                Series(
                    "max_queue",
                    list(zip(table.column("burstiness"), table.column("max_queue"))),
                )
            ],
            width=48,
            height=10,
            x_label="burstiness",
        )
    )
    print()
    print("Takeaway: at mid utilization, bursts translate into transient queue")
    print("depth (roughly linear in the burst factor) rather than overload;")
    print("the saturation headroom the Chart 1 experiment measures is what")
    print("absorbs the peaks the paper worries about.")


if __name__ == "__main__":
    main()
