"""A tour of the matching machinery: PST, trits, optimizations.

Walks the exact structures from the paper's figures:

* builds the Figure 2 matching tree and runs the marked walk for the event
  ``a = <1, 2, 3, 1, 2>``, printing the matching steps taken;
* reproduces the Figure 5 annotation computation with trit vectors;
* shows the Section 2.1 optimizations changing step counts on the same
  workload (trivial-test elimination, factoring, delayed branching).

Run:
    python examples/matching_tour.py
"""

from __future__ import annotations

from repro.core import TritVector
from repro.matching import (
    Event,
    FactoredMatcher,
    SearchDag,
    Subscription,
    build_pst,
    parse_predicate,
    uniform_schema,
)
from repro.workload import CHART2_SPEC, EventGenerator, SubscriptionGenerator


def figure2_demo() -> None:
    print("== Figure 2: the parallel search tree ==")
    schema = uniform_schema(5)
    expressions = {
        "s1": "a1=1 & a2=2 & a3=3 & a5=3",
        "s2": "a1=1 & a2=2",
        "s3": "a3=3",
        "s4": "a1=1 & a4=1",
    }
    subscriptions = [
        Subscription(parse_predicate(schema, expression), name)
        for name, expression in expressions.items()
    ]
    tree = build_pst(schema, subscriptions)
    event = Event.from_tuple(schema, (1, 2, 3, 1, 2))
    result = tree.match(event)
    print(f"event a = {event.as_tuple()}")
    for name, expression in expressions.items():
        hit = "MATCH" if name in result.subscribers else "  -  "
        print(f"  [{hit}] {name}: {expression}")
    print(f"matching steps: {result.steps} (tree has {tree.node_count()} nodes)")


def figure5_demo() -> None:
    print("\n== Figure 5: combining annotations ==")
    value_children = [TritVector("MYY"), TritVector("NYN")]
    star_child = TritVector("YYN")
    alternative = value_children[0].alternative(value_children[1])
    print(f"MYY A NYN = {alternative}   (Alternative Combine)")
    combined = alternative.parallel(star_child)
    print(f"{alternative} P YYN = {combined}   (Parallel Combine)")
    assert str(combined) == "YYM"


def optimizations_demo() -> None:
    print("\n== Section 2.1 optimizations on one workload ==")
    spec = CHART2_SPEC
    generator = SubscriptionGenerator(spec, seed=42)
    subscriptions = generator.subscriptions_for(["client"], 1500)
    events = EventGenerator(spec, seed=43)
    sample = [events.event_for() for _ in range(200)]

    def mean_steps(matcher):
        return sum(matcher.match(e).steps for e in sample) / len(sample)

    plain = build_pst(spec.schema(), subscriptions, domains=spec.domains())
    print(f"plain PST:                {mean_steps(plain):7.1f} steps/event, "
          f"{plain.node_count():>6} nodes")

    eliminated = plain.eliminate_trivial_tests()
    print(f"+ trivial-test elim:      {mean_steps(plain):7.1f} steps/event, "
          f"{plain.node_count():>6} nodes ({eliminated} spliced)")

    factored = FactoredMatcher(
        spec.schema(), spec.factoring_attributes, spec.domains()
    )
    for subscription in subscriptions:
        factored.insert(
            Subscription(subscription.predicate, subscription.subscriber)
        )
    total_nodes = sum(t.node_count() for _k, t in factored.trees())
    print(f"+ factoring (3 levels):   {mean_steps(factored):7.1f} steps/event, "
          f"{total_nodes:>6} nodes across {len(dict(factored.trees()))} sub-trees")

    dag = SearchDag(plain)
    print(f"+ delayed branching DAG:  {mean_steps(dag):7.1f} steps/event, "
          f"{dag.node_count():>6} nodes (deterministic descent)")


def main() -> None:
    figure2_demo()
    figure5_demo()
    optimizations_demo()


if __name__ == "__main__":
    main()
