"""Subject-based pub/sub on top of content-based routing.

The paper's Section 1 claim made runnable: subjects (channels/topics) are
just the degenerate case of content-based subscriptions.  A market-data
space carries a ``subject`` attribute; subject members get a multicast
group's semantics; and a content-based subscriber on the *same* information
space filters on an orthogonal axis (volume) that subject-based systems
cannot express without predefining a group per threshold.

Run:
    python examples/subject_based.py
"""

from __future__ import annotations

from repro.core import ContentRoutedNetwork
from repro.network import NodeKind, Topology
from repro.subjects import SUBJECT_ATTRIBUTE, SubjectAdapter, subject_schema

SUBJECTS = ["nyse.ibm", "nyse.msft", "nasdaq.intc", "nasdaq.sunw"]


def build_topology() -> Topology:
    topology = Topology()
    for broker in ("B0", "B1", "B2"):
        topology.add_broker(broker)
    topology.add_link("B0", "B1", latency_ms=10.0)
    topology.add_link("B1", "B2", latency_ms=10.0)
    topology.add_client("ibm_watcher", "B0")
    topology.add_client("tech_desk", "B2")
    topology.add_client("whale_watcher", "B2")
    topology.add_client("ticker", "B1", kind=NodeKind.PUBLISHER)
    return topology


def main() -> None:
    schema = subject_schema([("price", "dollar"), ("volume", "integer")])
    # Factoring on the subject gives the table-lookup dispatch that makes
    # subject-based systems fast — here it falls out of Section 2.1 item 1.
    network = ContentRoutedNetwork(
        build_topology(),
        schema,
        domains={SUBJECT_ATTRIBUTE: SUBJECTS},
        factoring_attributes=[SUBJECT_ATTRIBUTE],
    )
    subjects = SubjectAdapter(network)

    subjects.subscribe("ibm_watcher", "nyse.ibm")
    subjects.subscribe("tech_desk", "nasdaq.intc")
    subjects.subscribe("tech_desk", "nasdaq.sunw")
    # The content-based superpower on the same space:
    network.subscribe("whale_watcher", "volume>50000")

    print("Group membership (the multicast-group view):")
    for subject in SUBJECTS:
        print(f"  {subject:<13} -> {subjects.members_of(subject) or '(empty)'}")

    print("\nTicks:")
    ticks = [
        ("nyse.ibm", 119.0, 2000),
        ("nasdaq.intc", 30.5, 800),
        ("nasdaq.sunw", 90.0, 99_000),   # tech_desk AND whale_watcher
        ("nyse.msft", 55.0, 500),        # nobody subscribed
    ]
    for subject, price, volume in ticks:
        trace = subjects.publish("ticker", subject, price=price, volume=volume)
        steps = trace.broker_steps.get("B1", 0)
        print(
            f"  {subject:<13} x{volume:<6} -> "
            f"{sorted(trace.delivered_clients) or ['(dropped at publisher)']} "
            f"({steps} matching steps at the publishing broker)"
        )

    print("\nThe msft tick died at the publishing broker after a handful of")
    print("steps: a subject lookup is 'a mere table lookup' (Section 1), and")
    print("with factoring on the subject, that is literally what runs here.")


if __name__ == "__main__":
    main()
