"""Integration tests for the multi-broker prototype over in-memory transport.

Exercises the whole Figure 7 stack — codec, framing, client/broker
protocols, connection manager, link-matching router — on a five-broker
network, including failure injection (client crashes, broker neighbor loss).
"""

from __future__ import annotations

import random

import pytest

from repro.broker import (
    BrokerClient,
    BrokerNetworkConfig,
    BrokerNode,
    InMemoryTransport,
)
from repro.matching import uniform_schema
from repro.network import NodeKind, Topology

SCHEMA = uniform_schema(3)
DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 4)}


@pytest.fixture
def network():
    """A 5-broker tree: HUB at the center, E0-E3 as edges."""
    topology = Topology()
    topology.add_broker("HUB")
    for i in range(4):
        topology.add_broker(f"E{i}")
        topology.add_link("HUB", f"E{i}", latency_ms=5.0)
        topology.add_client(f"sub{i}", f"E{i}")
    topology.add_client("pub", "HUB", kind=NodeKind.PUBLISHER)
    topology.add_client("pub_edge", "E0", kind=NodeKind.PUBLISHER)
    config = BrokerNetworkConfig(topology, SCHEMA, domains=DOMAINS)
    transport = InMemoryTransport()
    endpoints = {b: f"mem://{b}" for b in topology.brokers()}
    nodes = {b: BrokerNode(config, b, transport, endpoints) for b in topology.brokers()}
    for node in nodes.values():
        node.start()
    for node in nodes.values():
        node.connect_neighbors()
    transport.pump()
    return topology, transport, nodes


def attach(transport, topology, name, **kwargs):
    broker = topology.broker_of(name)
    client = BrokerClient(
        name, SCHEMA, transport, f"mem://{broker}", pump=transport.pump, **kwargs
    )
    client.connect()
    transport.pump()
    return client


class TestMultiBrokerRouting:
    def test_full_mesh_of_interests(self, network):
        topology, transport, nodes = network
        subs = [attach(transport, topology, f"sub{i}") for i in range(4)]
        pub = attach(transport, topology, "pub")
        for i, sub in enumerate(subs):
            sub.subscribe_and_wait(f"a1={i % 3}")
        transport.pump()
        # All brokers replicated all four subscriptions.
        assert all(node.subscription_count == 4 for node in nodes.values())
        pub.publish({"a1": 0, "a2": 1, "a3": 2})
        transport.pump()
        received = [len(sub.received_events) for sub in subs]
        assert received == [1, 0, 0, 1]  # sub0 (a1=0) and sub3 (a1=0)

    def test_publish_from_edge_broker(self, network):
        topology, transport, nodes = network
        sub2 = attach(transport, topology, "sub2")
        pub_edge = attach(transport, topology, "pub_edge")
        sub2.subscribe_and_wait("a2=1")
        transport.pump()
        pub_edge.publish({"a1": 0, "a2": 1, "a3": 0})
        transport.pump()
        assert len(sub2.received_events) == 1

    def test_events_only_flow_toward_interest(self, network):
        topology, transport, nodes = network
        sub1 = attach(transport, topology, "sub1")
        pub = attach(transport, topology, "pub")
        sub1.subscribe_and_wait("a1=1")
        transport.pump()
        pub.publish({"a1": 1, "a2": 0, "a3": 0})
        transport.pump()
        assert nodes["E1"].events_routed == 1
        assert nodes["E2"].events_routed == 0  # no interest there
        assert nodes["E3"].events_routed == 0

    def test_many_random_events_match_reference(self, network):
        topology, transport, nodes = network
        subs = [attach(transport, topology, f"sub{i}") for i in range(4)]
        pub = attach(transport, topology, "pub")
        rng = random.Random(7)
        expressions = {}
        for i, sub in enumerate(subs):
            tests = [f"a{j}={rng.randrange(3)}" for j in range(1, 4) if rng.random() < 0.6]
            expression = " & ".join(tests) if tests else "*"
            expressions[sub.name] = expression
            sub.subscribe_and_wait(expression)
        transport.pump()
        from repro.matching import parse_predicate, Event

        expected_counts = {name: 0 for name in expressions}
        for _ in range(50):
            values = {f"a{j}": rng.randrange(3) for j in range(1, 4)}
            pub.publish(values)
            event = Event(SCHEMA, values)
            for name, expression in expressions.items():
                if parse_predicate(SCHEMA, expression).matches(event):
                    expected_counts[name] += 1
        transport.pump()
        for sub in subs:
            assert len(sub.received_events) == expected_counts[sub.name]


class TestFailureInjection:
    def test_client_crash_and_resume_loses_nothing(self, network):
        topology, transport, nodes = network
        sub0 = attach(transport, topology, "sub0")
        pub = attach(transport, topology, "pub")
        sub0.subscribe_and_wait("*")
        transport.pump()
        pub.publish({"a1": 0, "a2": 0, "a3": 0})
        transport.pump()
        sub0.drop_connection()
        transport.pump()
        for i in range(5):
            pub.publish({"a1": i % 3, "a2": 0, "a3": 0})
        transport.pump()
        assert len(sub0.received_events) == 1
        sub0.connect(resume=True)
        transport.pump()
        assert len(sub0.received_events) == 6
        seqs = [seq for seq, _e in sub0.deliveries]
        assert seqs == sorted(seqs)  # in-order redelivery

    def test_multiple_crash_cycles(self, network):
        topology, transport, nodes = network
        sub0 = attach(transport, topology, "sub0")
        pub = attach(transport, topology, "pub")
        sub0.subscribe_and_wait("*")
        transport.pump()
        total = 0
        for cycle in range(3):
            sub0.drop_connection()
            transport.pump()
            for _ in range(4):
                pub.publish({"a1": 0, "a2": 0, "a3": 0})
                total += 1
            transport.pump()
            sub0.connect(resume=True)
            transport.pump()
            assert len(sub0.received_events) == total

    def test_gc_during_disconnect_preserves_backlog(self, network):
        topology, transport, nodes = network
        sub0 = attach(transport, topology, "sub0")
        pub = attach(transport, topology, "pub")
        sub0.subscribe_and_wait("*")
        transport.pump()
        sub0.drop_connection()
        transport.pump()
        for _ in range(3):
            pub.publish({"a1": 0, "a2": 0, "a3": 0})
        transport.pump()
        # GC runs while the client is away: unacked events must survive.
        for node in nodes.values():
            node.collect_garbage()
        sub0.connect(resume=True)
        transport.pump()
        assert len(sub0.received_events) == 3

    def test_subscriptions_survive_reconnect(self, network):
        topology, transport, nodes = network
        sub0 = attach(transport, topology, "sub0")
        pub = attach(transport, topology, "pub")
        sub0.subscribe_and_wait("a1=2")
        transport.pump()
        sub0.drop_connection()
        transport.pump()
        sub0.connect(resume=True)
        transport.pump()
        pub.publish({"a1": 2, "a2": 0, "a3": 0})
        transport.pump()
        assert len(sub0.received_events) == 1

    def test_stopped_broker_stops_forwarding(self, network):
        topology, transport, nodes = network
        sub1 = attach(transport, topology, "sub1")
        pub = attach(transport, topology, "pub")
        sub1.subscribe_and_wait("*")
        transport.pump()
        nodes["E1"].stop()
        transport.pump()
        pub.publish({"a1": 0, "a2": 0, "a3": 0})
        transport.pump()
        # The event cannot reach sub1; the hub simply finds the link closed.
        assert sub1.received_events == []
