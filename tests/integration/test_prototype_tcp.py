"""TCP end-to-end test of the prototype broker network (real sockets)."""

from __future__ import annotations

import time

import pytest

from repro.broker import BrokerClient, BrokerNetworkConfig, BrokerNode, TcpTransport
from repro.matching import stock_trade_schema
from repro.network import NodeKind, Topology


def wait_until(predicate, timeout_s=8.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


@pytest.fixture
def tcp_network():
    schema = stock_trade_schema()
    topology = Topology()
    topology.add_broker("B0")
    topology.add_broker("B1")
    topology.add_broker("B2")
    topology.add_link("B0", "B1", latency_ms=1.0)
    topology.add_link("B1", "B2", latency_ms=1.0)
    topology.add_client("alice", "B0")
    topology.add_client("carol", "B2")
    topology.add_client("pub", "B1", kind=NodeKind.PUBLISHER)
    config = BrokerNetworkConfig(topology, schema)
    transport = TcpTransport(sender_threads=2)
    # Ephemeral ports: every node listens on :0 and publishes its actual
    # port back into the shared endpoints mapping at start().
    endpoints = {b: "127.0.0.1:0" for b in topology.brokers()}
    nodes = {b: BrokerNode(config, b, transport, endpoints) for b in topology.brokers()}
    for node in nodes.values():
        node.start()
    for node in nodes.values():
        node.connect_neighbors()
    assert wait_until(
        lambda: all(len(n.connected_brokers) >= 1 for n in nodes.values())
    )
    yield schema, transport, endpoints, nodes
    for node in nodes.values():
        node.stop()
    transport.close()


class TestTcpEndToEnd:
    def test_pubsub_across_three_brokers(self, tcp_network):
        schema, transport, endpoints, nodes = tcp_network
        alice_events = []
        carol_events = []
        alice = BrokerClient(
            "alice", schema, transport, endpoints["B0"],
            on_event=lambda e, s: alice_events.append(e),
        )
        carol = BrokerClient(
            "carol", schema, transport, endpoints["B2"],
            on_event=lambda e, s: carol_events.append(e),
        )
        pub = BrokerClient("pub", schema, transport, endpoints["B1"])
        alice.connect()
        carol.connect()
        pub.connect()
        assert wait_until(lambda: alice.connected_broker == "B0")
        assert wait_until(lambda: carol.connected_broker == "B2")
        assert wait_until(lambda: pub.connected_broker == "B1")
        alice.subscribe_and_wait("issue='IBM'", timeout_s=8.0)
        carol.subscribe_and_wait("volume>=1000", timeout_s=8.0)
        # Give the subscription flood a moment to reach every broker.
        assert wait_until(
            lambda: all(n.subscription_count == 2 for n in nodes.values())
        )
        for i in range(60):
            pub.publish(
                {"issue": "IBM" if i % 2 == 0 else "MSFT", "price": 1.0, "volume": i * 100}
            )
        assert wait_until(lambda: len(alice_events) == 30)
        assert wait_until(lambda: len(carol_events) == 50)

    def test_reconnect_over_tcp(self, tcp_network):
        schema, transport, endpoints, nodes = tcp_network
        alice = BrokerClient("alice", schema, transport, endpoints["B0"])
        pub = BrokerClient("pub", schema, transport, endpoints["B1"])
        alice.connect()
        pub.connect()
        assert wait_until(lambda: alice.connected_broker == "B0")
        assert wait_until(lambda: pub.connected_broker == "B1")
        alice.subscribe_and_wait("*", timeout_s=8.0)
        assert wait_until(lambda: nodes["B1"].subscription_count == 1)
        pub.publish({"issue": "A", "price": 1.0, "volume": 1})
        assert wait_until(lambda: len(alice.received_events) == 1)
        alice.drop_connection()
        pub.publish({"issue": "B", "price": 2.0, "volume": 2})
        assert wait_until(lambda: len(nodes["B0"].session("alice").log) >= 1)
        alice.connect(resume=True)
        assert wait_until(lambda: len(alice.received_events) == 2)
        assert [e["issue"] for e in alice.received_events] == ["A", "B"]
