"""Golden tests reproducing the paper's worked examples.

* Figure 2: the matching tree for the five-attribute schema and the walk for
  event ``a = <1, 2, 3, 1, 2>``.
* Figure 4: the Alternative / Parallel Combine tables.
* Figure 5: the annotation-combination example ``MYY A NYN = MYM`` and
  ``MYM P YYN = YYM``, and the same computation arising from an actual
  annotated tree of the same shape.
"""

from __future__ import annotations

from repro.core import M, N, TreeAnnotation, TritVector, Y, alternative_combine, parallel_combine
from repro.matching import Event, build_pst, uniform_schema
from tests.conftest import make_subscription


class TestFigure2:
    """The example tree has subscriptions spelled out by its root-to-leaf
    paths; we rebuild the essential paths and check the marked walk."""

    def setup_method(self):
        self.schema = uniform_schema(5)
        self.subscriptions = [
            # Rightmost leaf of the figure: a1=1 & a2=2 & a3=3 & a5=3.
            make_subscription(self.schema, "a1=1 & a2=2 & a3=3 & a5=3", "right"),
            # A *-prefixed path: don't care a1, then a2=2.
            make_subscription(self.schema, "a2=2", "star_a1"),
            # Fully wildcarded until a3.
            make_subscription(self.schema, "a3=3", "mid"),
            # A path diverging at a4.
            make_subscription(self.schema, "a1=1 & a4=1", "a4_path"),
        ]
        self.tree = build_pst(self.schema, self.subscriptions)

    def test_event_from_the_figure(self):
        # a = <1, 2, 3, 1, 2>: matches everything except the rightmost leaf
        # (a5=3 fails: the event has a5=2).
        event = Event.from_tuple(self.schema, (1, 2, 3, 1, 2))
        result = self.tree.match(event)
        assert result.subscribers == {"star_a1", "mid", "a4_path"}

    def test_event_satisfying_rightmost_leaf(self):
        event = Event.from_tuple(self.schema, (1, 2, 3, 1, 3))
        assert "right" in self.tree.match(event).subscribers

    def test_star_and_value_both_taken(self):
        event = Event.from_tuple(self.schema, (1, 2, 0, 1, 0))
        # star_a1 via the *-branch, a4_path via the value branch.
        assert self.tree.match(event).subscribers == {"star_a1", "a4_path"}


class TestFigure4:
    def test_alternative_combine_table(self):
        rows = {
            (Y, Y): Y, (Y, M): M, (Y, N): M,
            (M, Y): M, (M, M): M, (M, N): M,
            (N, Y): M, (N, M): M, (N, N): N,
        }
        for (a, b), want in rows.items():
            assert alternative_combine(a, b) is want

    def test_parallel_combine_table(self):
        rows = {
            (Y, Y): Y, (Y, M): Y, (Y, N): Y,
            (M, Y): Y, (M, M): M, (M, N): M,
            (N, Y): Y, (N, M): M, (N, N): N,
        }
        for (a, b), want in rows.items():
            assert parallel_combine(a, b) is want


class TestFigure5:
    def test_combine_example_verbatim(self):
        assert TritVector("MYY").alternative(TritVector("NYN")) == TritVector("MYM")
        assert TritVector("MYM").parallel(TritVector("YYN")) == TritVector("YYM")

    def test_annotation_on_equivalent_tree(self):
        """Rebuild the figure's one-level situation with real subscriptions.

        A node tests an attribute with three links l0-l2; its value children
        carry annotations MYY and NYN and its *-child YYN.  The node's
        annotation must come out YYM: guaranteed on l0 (the *-child
        guarantees it), guaranteed on l1 (every alternative agrees), maybe
        on l2.
        """
        schema = uniform_schema(2)
        links = {"l0": 0, "l1": 1, "l2": 2}
        subscriptions = [
            # *-branch at a1 guaranteeing l0 and l1 (match-all on both).
            make_subscription(schema, "*", "l0"),
            make_subscription(schema, "*", "l1"),
            # Value branch a1=1 adding a conditional l2 subscriber.
            make_subscription(schema, "a1=1 & a2=1", "l2"),
            # Value branch a1=2 with nothing extra.
            make_subscription(schema, "a1=2", "l1"),
        ]
        tree = build_pst(schema, subscriptions, domains={"a1": [1, 2]})
        annotation = TreeAnnotation(3, lambda s: links[s.subscriber])
        root_vector = annotation.annotate(tree)
        assert root_vector == TritVector("YYM")
