"""Broker restart and subscription resync (anti-entropy on hello)."""

from __future__ import annotations


from repro.broker import (
    BrokerClient,
    BrokerNetworkConfig,
    BrokerNode,
    InMemoryTransport,
)
from repro.matching import uniform_schema
from repro.network import NodeKind, Topology

SCHEMA = uniform_schema(2)


def build_world():
    topology = Topology()
    topology.add_broker("B0")
    topology.add_broker("B1")
    topology.add_link("B0", "B1", latency_ms=5.0)
    topology.add_client("alice", "B0")
    topology.add_client("bob", "B1")
    topology.add_client("pub", "B0", kind=NodeKind.PUBLISHER)
    config = BrokerNetworkConfig(topology, SCHEMA)
    transport = InMemoryTransport()
    endpoints = {"B0": "mem://B0", "B1": "mem://B1"}
    return topology, config, transport, endpoints


def start_node(config, name, transport, endpoints):
    node = BrokerNode(config, name, transport, endpoints)
    node.start()
    return node


def attach(name, transport, broker_endpoint):
    client = BrokerClient(name, SCHEMA, transport, broker_endpoint, pump=transport.pump)
    client.connect()
    transport.pump()
    return client


class TestRestartResync:
    def test_restarted_broker_relearns_subscriptions(self):
        topology, config, transport, endpoints = build_world()
        b0 = start_node(config, "B0", transport, endpoints)
        b1 = start_node(config, "B1", transport, endpoints)
        b0.connect_neighbors()
        transport.pump()
        alice = attach("alice", transport, "mem://B0")
        alice.subscribe_and_wait("a1=1")
        transport.pump()
        assert b1.subscription_count == 1

        # B1 crashes and restarts with empty state.
        b1.stop()
        transport.pump()
        b1_listener_free = InMemoryTransport(transport.hub)  # same hub
        b1_restarted = start_node(config, "B1", b1_listener_free, endpoints)
        assert b1_restarted.subscription_count == 0
        # B0 re-dials; the hello handshake must resync B1.
        b0.dial_broker("B1")
        transport.pump()
        assert b1_restarted.subscription_count == 1

        # And routing through the restarted broker works again.
        bob = attach("bob", transport, "mem://B1")
        bob.subscribe_and_wait("a2=1")
        transport.pump()
        pub = attach("pub", transport, "mem://B0")
        pub.publish({"a1": 0, "a2": 1})
        transport.pump()
        assert len(bob.received_events) == 1

    def test_restarted_broker_dialing_out_gets_resynced(self):
        topology, config, transport, endpoints = build_world()
        b0 = start_node(config, "B0", transport, endpoints)
        b1 = start_node(config, "B1", transport, endpoints)
        b0.connect_neighbors()
        transport.pump()
        alice = attach("alice", transport, "mem://B0")
        alice.subscribe_and_wait("a1=1")
        transport.pump()

        b1.stop()
        transport.pump()
        b1_restarted = start_node(config, "B1", InMemoryTransport(transport.hub), endpoints)
        # This time the restarted broker dials out itself.
        b1_restarted.dial_broker("B0")
        transport.pump()
        assert b1_restarted.subscription_count == 1

    def test_resync_is_idempotent(self):
        topology, config, transport, endpoints = build_world()
        b0 = start_node(config, "B0", transport, endpoints)
        b1 = start_node(config, "B1", transport, endpoints)
        b0.connect_neighbors()
        transport.pump()
        alice = attach("alice", transport, "mem://B0")
        alice.subscribe_and_wait("a1=1")
        transport.pump()
        # Redundant re-dials must not duplicate subscriptions anywhere.
        b0.dial_broker("B1")
        transport.pump()
        b1.dial_broker("B0")
        transport.pump()
        assert b0.subscription_count == 1
        assert b1.subscription_count == 1
