"""The paper's core correctness property, end to end.

For any topology, subscription set and event, link matching must deliver the
event to exactly the clients whose subscriptions match (the set brute-force
matching computes), visiting each broker at most once and never putting more
than one copy of the event on a link.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ContentRoutedNetwork
from repro.matching import Event, uniform_schema
from repro.network import figure6_topology, linear_chain, star, binary_tree

SCHEMA = uniform_schema(4)
DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 5)}


def populate(network: ContentRoutedNetwork, seed: int, constrain_probability=0.5) -> None:
    rng = random.Random(seed)
    for client in network.topology.subscribers():
        tests = [
            f"a{j}={rng.randrange(3)}"
            for j in range(1, 5)
            if rng.random() < constrain_probability
        ]
        network.subscribe(client, " & ".join(tests) if tests else "*")


def random_event(rng: random.Random) -> Event:
    return Event.from_tuple(SCHEMA, tuple(rng.randrange(3) for _ in range(4)))


def check_equivalence(network: ContentRoutedNetwork, trials: int, seed: int) -> None:
    rng = random.Random(seed)
    publishers = network.topology.publishers()
    for _ in range(trials):
        event = random_event(rng)
        expected = network.expected_recipients(event)
        for publisher in publishers:
            trace = network.publish(publisher, event)
            assert trace.delivered_clients == expected, (publisher, event)
            # At most one copy per link.
            assert len(trace.links_used) == len(set(trace.links_used))
            # Each broker decided at most once.
            assert len(trace.broker_steps) == len(trace.decisions)


TOPOLOGIES = [
    ("chain", lambda: linear_chain(5, subscribers_per_broker=2)),
    ("star", lambda: star(4, subscribers_per_broker=2)),
    ("binary-tree", lambda: binary_tree(3, subscribers_per_leaf=2)),
    ("figure6", lambda: figure6_topology(subscribers_per_broker=2)),
]


@pytest.mark.parametrize("name,builder", TOPOLOGIES, ids=[t[0] for t in TOPOLOGIES])
class TestDeliveryEquivalence:
    def test_plain_tree(self, name, builder):
        network = ContentRoutedNetwork(builder(), SCHEMA, domains=DOMAINS)
        populate(network, seed=1)
        check_equivalence(network, trials=40, seed=2)

    def test_with_factoring(self, name, builder):
        network = ContentRoutedNetwork(
            builder(), SCHEMA, domains=DOMAINS, factoring_attributes=["a1"]
        )
        populate(network, seed=3)
        check_equivalence(network, trials=40, seed=4)


class TestDynamicSubscriptions:
    def test_equivalence_holds_across_churn(self):
        topology = linear_chain(4, subscribers_per_broker=2)
        network = ContentRoutedNetwork(topology, SCHEMA, domains=DOMAINS)
        rng = random.Random(9)
        live = []
        for round_number in range(30):
            # Random churn: add or remove a subscription.
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                network.unsubscribe(victim.subscription_id)
            else:
                client = rng.choice(topology.subscribers())
                tests = [
                    f"a{j}={rng.randrange(3)}" for j in range(1, 5) if rng.random() < 0.5
                ]
                live.append(
                    network.subscribe(client, " & ".join(tests) if tests else "*")
                )
            event = random_event(rng)
            trace = network.publish("P1", event)
            assert trace.delivered_clients == network.expected_recipients(event)

    def test_no_subscriptions_no_traffic(self):
        topology = linear_chain(3, subscribers_per_broker=1)
        network = ContentRoutedNetwork(topology, SCHEMA, domains=DOMAINS)
        trace = network.publish("P1", random_event(random.Random(0)))
        assert trace.delivered_clients == set()
        assert trace.links_used == []  # nothing leaves the publishing broker


class TestLocalityClaims:
    def test_selective_event_stays_in_its_region(self):
        """Link matching "exploits locality": an event whose only matching
        subscribers share the publisher's subtree never crosses the
        intercontinental links."""
        topology = figure6_topology(subscribers_per_broker=1)
        network = ContentRoutedNetwork(topology, SCHEMA, domains=DOMAINS)
        # One subscriber near P1 (tree T0) wants a1=0; nobody else subscribes.
        network.subscribe("S.T0.L00.00", "a1=0")
        trace = network.publish("P1", Event.from_tuple(SCHEMA, (0, 0, 0, 0)))
        assert trace.delivered_clients == {"S.T0.L00.00"}
        for source, target in trace.links_used:
            assert source.startswith("T0.") and target.startswith("T0.")

    def test_chart2_hops_accounting(self):
        topology = linear_chain(4, subscribers_per_broker=1)
        network = ContentRoutedNetwork(topology, SCHEMA, domains=DOMAINS)
        network.subscribe("S.B0.00", "*")
        network.subscribe("S.B3.00", "*")
        trace = network.publish("P1", random_event(random.Random(1)))
        assert trace.deliveries["S.B0.00"] == 1  # on the publishing broker
        assert trace.deliveries["S.B3.00"] == 4  # three broker hops away
        # Cumulative steps grow along the path.
        assert trace.cumulative_steps_to("S.B3.00") >= trace.cumulative_steps_to(
            "S.B0.00"
        )
