"""End-to-end: experiment runs emit valid, machine-readable BENCH artifacts.

This is the contract the CI ``bench-smoke`` job and ``benchmarks/trend.py``
rely on: run a (scaled-down) chart harness with the observability registry
enabled, assemble the schema-versioned ``BENCH_<name>.json`` payload, and
check it validates and round-trips.
"""

import json

import pytest

from repro.experiments import Chart1Config, run_chart1
from repro.obs import MetricsRegistry, bench, get_registry, set_registry


@pytest.fixture
def fresh_registry():
    """An enabled, empty global registry for the duration of one test."""
    previous = set_registry(MetricsRegistry(enabled=True))
    yield get_registry()
    set_registry(previous)


@pytest.mark.slow
def test_chart1_run_emits_valid_bench_artifact(tmp_path, fresh_registry):
    config = Chart1Config(
        subscription_counts=(60,),
        subscribers_per_broker=2,
        probe_duration_s=0.2,
    )
    timer = fresh_registry.timer("bench.wall_clock_s")
    table, wall_clock_s = timer.timeit(lambda: run_chart1(config))

    payload = bench.bench_payload(
        "chart1",
        engine=config.engine,
        workload=config,
        wall_clock_s=wall_clock_s,
        metrics=fresh_registry,
        table=table,
    )
    path = bench.write_bench(payload, tmp_path)

    assert path.name == "BENCH_chart1.json"
    loaded = bench.load_bench(path)  # validates against the v1 schema
    assert loaded["schema"] == bench.BENCH_SCHEMA
    assert loaded["engine"] == "compiled"
    assert loaded["workload"]["subscription_counts"] == [60]
    assert loaded["wall_clock_s"] == pytest.approx(wall_clock_s)
    assert loaded["table"]["rows"], "the Chart 1 table must ride along"
    # The run itself must have recorded into the embedded snapshot: the
    # protocols count handled events, the engines count matches.
    assert any(key.startswith("protocol.") for key in loaded["metrics"])
    assert any(key.startswith("engine.") for key in loaded["metrics"])


def test_cli_metrics_out_writes_snapshot(tmp_path, fresh_registry, capsys):
    from repro.cli import main

    target = tmp_path / "metrics.json"
    assert main(["--metrics-out", str(target), "demo"]) == 0
    capsys.readouterr()
    data = json.loads(target.read_text())
    assert any(key.startswith("router.") for key in data)
