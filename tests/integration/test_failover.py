"""End-to-end failure & churn scenarios with the two delivery invariants
checked as first-class properties:

* no event lost to a live subscriber (offline replay counts);
* at most one copy per link for undisturbed events.

Every scenario runs the full pipeline — publishers, broker queues, fault
coordinator, incremental repair, replay — and feeds the finished run to
:func:`repro.sim.check_invariants`.
"""

from __future__ import annotations

import random

import pytest

from repro.matching import Event, Subscription, parse_predicate, uniform_schema
from repro.network.figures import linear_chain
from repro.obs import get_registry
from repro.protocols import FloodingProtocol, LinkMatchingProtocol, ProtocolContext
from repro.sim import (
    FaultAction,
    FaultPlan,
    NetworkSimulation,
    check_invariants,
    seconds_to_ticks,
)
from repro.workload import FlashCrowd, ThunderingHerd, WorkloadSpec

SCHEMA = uniform_schema(3)
DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 4)}


def build(subscribers_per_broker=2):
    topology = linear_chain(5, subscribers_per_broker=subscribers_per_broker)
    topology.add_link("B1", "B3", latency_ms=25.0)
    rng = random.Random(1)
    subscriptions = []
    for client in sorted(topology.subscribers()):
        tests = [f"a{j}={rng.randrange(3)}" for j in range(1, 4) if rng.random() < 0.5]
        expression = " & ".join(tests) if tests else "*"
        subscriptions.append(Subscription(parse_predicate(SCHEMA, expression), client))
    context = ProtocolContext(topology, SCHEMA, subscriptions, domains=DOMAINS)
    return topology, context


def factory(rng):
    return Event.from_tuple(SCHEMA, tuple(rng.randrange(3) for _ in range(3)))


def run_plan(plan, *, protocol_cls=LinkMatchingProtocol, events=120, seed=7, **kwargs):
    topology, context = build()
    simulation = NetworkSimulation(
        topology,
        protocol_cls(context),
        seed=seed,
        fault_plan=plan,
        repair_delay_ms=kwargs.pop("repair_delay_ms", 5.0),
        **kwargs,
    )
    simulation.add_poisson_publisher("P1", 60.0, factory, events)
    result = simulation.run()
    return simulation, result, check_invariants(result, simulation.faults)


def scripted_plan():
    return FaultPlan(
        [
            FaultAction.fail_broker("B2", at_s=0.5),
            FaultAction.recover_broker("B2", at_s=1.2),
            FaultAction.fail_link("B3", "B4", at_s=1.6),
            FaultAction.recover_link("B3", "B4", at_s=1.9),
        ]
    )


def test_broker_and_link_failures_with_recovery():
    simulation, result, report = run_plan(scripted_plan())
    assert report.ok, (report.lost[:5], report.duplicates[:5])
    assert report.disturbed_events > 0  # faults actually hit traffic
    metrics = result.counter_snapshot()
    assert metrics["sim.fault.actions_applied"]["value"] == 4
    assert metrics["sim.fault.repairs"]["value"] >= 4


def test_offline_log_replays_to_recovered_subscribers():
    """Events published while a leaf broker is down reach its subscribers
    after recovery via the offline-log drain."""
    plan = FaultPlan(
        [
            FaultAction.fail_broker("B4", at_s=0.4),
            FaultAction.recover_broker("B4", at_s=1.4),
        ]
    )
    simulation, result, report = run_plan(plan, events=120)
    assert report.ok, (report.lost[:5], report.duplicates[:5])
    metrics = result.counter_snapshot()
    replays = metrics.get("sim.fault.offline_replayed", {}).get("value", 0) + metrics.get(
        "sim.fault.messages_replayed", {}
    ).get("value", 0)
    assert replays > 0


def test_fail_without_recovery_excludes_dead_subscribers():
    plan = FaultPlan([FaultAction.fail_broker("B4", at_s=0.7)])
    simulation, result, report = run_plan(plan)
    assert report.ok, (report.lost[:5], report.duplicates[:5])
    dead_clients = set(simulation.topology.clients_of("B4"))
    assert dead_clients  # clients stay attached to the down broker
    fail_tick = seconds_to_ticks(0.7)
    late = [
        record
        for record in result.deliveries
        if record.client in dead_clients and record.delivery_time_ticks > fail_tick
    ]
    assert late == []


def test_flood_fallback_window_preserves_invariants():
    # Protocol-level counters live in the global registry; the simulation's
    # own registry only carries sim.* scopes.
    registry = get_registry()
    registry.enable()
    try:
        simulation, result, report = run_plan(scripted_plan(), annotation_lag_ms=50.0)
        assert report.ok, (report.lost[:5], report.duplicates[:5])
        metrics = result.counter_snapshot()
        assert metrics["sim.fault.stale_windows"]["value"] > 0
        snapshot = registry.snapshot()
        assert snapshot["protocol.link_matching.flood_fallbacks"]["value"] > 0
    finally:
        registry.disable()
        registry.reset()


def test_event_index_trigger_fires():
    plan = FaultPlan(
        [
            FaultAction.fail_link("B1", "B2", after_events=30),
            FaultAction.recover_link("B1", "B2", after_events=60),
        ]
    )
    simulation, result, report = run_plan(plan)
    assert report.ok, (report.lost[:5], report.duplicates[:5])
    metrics = result.counter_snapshot()
    assert metrics["sim.fault.actions_applied"]["value"] == 2


def test_flooding_protocol_under_faults():
    simulation, result, report = run_plan(scripted_plan(), protocol_cls=FloodingProtocol)
    assert report.ok, (report.lost[:5], report.duplicates[:5])


def test_join_leave_and_late_subscription():
    topology, context = build()
    plan = FaultPlan(
        [
            FaultAction.join_broker("B9", attach_to="B1", clients=("S.B9.00",), at_s=0.8),
            FaultAction.leave_broker("B4", after_events=80),
        ]
    )
    simulation = NetworkSimulation(
        topology,
        LinkMatchingProtocol(context),
        seed=11,
        fault_plan=plan,
        repair_delay_ms=5.0,
    )
    simulation.add_poisson_publisher("P1", 60.0, factory, 140)
    simulation.add_subscription_at(1.0, Subscription(parse_predicate(SCHEMA, "a1=0"), "S.B9.00"))
    result = simulation.run()
    report = check_invariants(result, simulation.faults)
    assert report.ok, (report.lost[:5], report.duplicates[:5])
    assert "B9" in simulation.topology.brokers()
    assert "B4" in simulation.faults.left_brokers
    joined = {r.client for r in result.deliveries if r.matched}
    assert "S.B9.00" in joined


def test_flash_crowd_and_thundering_herd_under_failover():
    spec = WorkloadSpec(num_attributes=3, values_per_attribute=3, factoring_levels=1)
    topology, context = build()
    plan = FaultPlan(
        [
            FaultAction.fail_broker("B3", at_s=1.2),
            FaultAction.recover_broker("B3", at_s=1.8),
        ]
    )
    simulation = NetworkSimulation(
        topology,
        LinkMatchingProtocol(context),
        seed=5,
        fault_plan=plan,
        repair_delay_ms=5.0,
    )
    simulation.add_poisson_publisher("P1", 40.0, factory, 60)
    crowd = FlashCrowd(spec, start_after_s=1.0, rate_multiplier=3.0, num_events=60)
    simulation.add_poisson_publisher(
        "P1",
        crowd.crowd_rate(40.0),
        crowd.event_factory("P1", seed=9),
        crowd.num_events,
        start_after_s=crowd.start_after_s,
    )
    herd = ThunderingHerd(spec, arrive_at_s=1.1, size=12, hot_exponent=3.0)
    subscribers = sorted(topology.subscribers())[:4]
    for at_s, subscription in herd.arrivals(subscribers, seed=13):
        simulation.add_subscription_at(at_s, subscription)
    result = simulation.run()
    report = check_invariants(result, simulation.faults)
    assert report.ok, (report.lost[:5], report.duplicates[:5])
    assert result.published_events == 120
    # Herd subscriptions were actually indexed and matched hot traffic.
    herd_hits = [
        record
        for record in result.deliveries
        if record.matched and record.client in set(subscribers)
    ]
    assert herd_hits


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_chaos_plans(seed):
    topology, _ = build()
    plan = FaultPlan.random(topology, seed=seed, failures=2)
    simulation, result, report = run_plan(plan, seed=100 + seed)
    assert report.ok, (seed, report.lost[:5], report.duplicates[:5])
