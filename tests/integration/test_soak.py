"""Randomized soak test of the whole prototype broker network.

A scripted chaos monkey drives a 4-broker network through hundreds of random
operations — subscribe, unsubscribe, publish, client crash, graceful
disconnect, reconnect, garbage collection — while an oracle tracks what each
client must eventually have received: every event matching one of its live
subscriptions at publish time, exactly once, in publish order.  At the end
every client reconnects and the ledgers must balance.

This is the test that catches cross-component interactions (log GC racing a
reconnect, subscription churn racing routing updates) that the targeted
integration tests cannot.
"""

from __future__ import annotations

import random

import pytest

from repro.broker import (
    BrokerClient,
    BrokerNetworkConfig,
    BrokerNode,
    InMemoryTransport,
)
from repro.matching import Event, parse_predicate, uniform_schema
from repro.network import NodeKind, Topology

SCHEMA = uniform_schema(3)
VALUES = [0, 1, 2]


def build_world():
    topology = Topology()
    topology.add_broker("HUB")
    for i in range(3):
        topology.add_broker(f"E{i}")
        topology.add_link("HUB", f"E{i}", latency_ms=5.0)
    clients = []
    for i in range(6):
        home = ["HUB", "E0", "E1", "E2"][i % 4]
        name = f"sub{i}"
        topology.add_client(name, home)
        clients.append(name)
    topology.add_client("pub", "HUB", kind=NodeKind.PUBLISHER)
    config = BrokerNetworkConfig(topology, SCHEMA)
    transport = InMemoryTransport()
    endpoints = {b: f"mem://{b}" for b in topology.brokers()}
    nodes = {b: BrokerNode(config, b, transport, endpoints) for b in topology.brokers()}
    for node in nodes.values():
        node.start()
    for node in nodes.values():
        node.connect_neighbors()
    transport.pump()
    return topology, transport, nodes, clients


class Oracle:
    """Reference model: which events each client must end up with."""

    def __init__(self, clients):
        self.live_predicates = {name: {} for name in clients}  # sub_id -> predicate
        self.expected = {name: [] for name in clients}  # event tuples, in order

    def subscribe(self, client, subscription_id, expression):
        self.live_predicates[client][subscription_id] = parse_predicate(
            SCHEMA, expression
        )

    def unsubscribe(self, client, subscription_id):
        del self.live_predicates[client][subscription_id]

    def publish(self, values):
        event = Event(SCHEMA, values)
        for client, predicates in self.live_predicates.items():
            if any(p.matches(event) for p in predicates.values()):
                self.expected[client].append(event.as_tuple())


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_random_operations(seed):
    topology, transport, nodes, client_names = build_world()
    rng = random.Random(seed)
    oracle = Oracle(client_names)

    clients = {}
    for name in client_names:
        client = BrokerClient(
            name,
            SCHEMA,
            transport,
            f"mem://{topology.broker_of(name)}",
            pump=transport.pump,
        )
        client.connect()
        clients[name] = client
    publisher = BrokerClient("pub", SCHEMA, transport, "mem://HUB", pump=transport.pump)
    publisher.connect()
    transport.pump()

    def random_expression():
        clauses = [
            f"a{k}={rng.choice(VALUES)}" for k in (1, 2, 3) if rng.random() < 0.5
        ]
        return " & ".join(clauses) if clauses else "*"

    for step in range(400):
        action = rng.random()
        name = rng.choice(client_names)
        client = clients[name]
        if action < 0.15:
            if client.is_connected:
                expression = random_expression()
                subscription_id = client.subscribe_and_wait(expression)
                transport.pump()
                oracle.subscribe(name, subscription_id, expression)
        elif action < 0.22:
            if client.is_connected and client.subscription_ids:
                subscription_id = rng.choice(client.subscription_ids)
                client.unsubscribe_and_wait(subscription_id)
                transport.pump()
                oracle.unsubscribe(name, subscription_id)
        elif action < 0.30:
            # Crash or graceful disconnect (subscriptions stay live either
            # way; events keep accumulating in the broker-side log).
            if client.is_connected:
                if rng.random() < 0.5:
                    client.drop_connection()
                else:
                    client.disconnect()
                transport.pump()
        elif action < 0.40:
            if not client.is_connected:
                client.connect(resume=True)
                transport.pump()
        elif action < 0.45:
            rng.choice(list(nodes.values())).collect_garbage()
        else:
            values = {f"a{k}": rng.choice(VALUES) for k in (1, 2, 3)}
            publisher.publish(values)
            transport.pump()
            oracle.publish(values)

    # Everyone comes back online and drains their backlog.
    for name, client in clients.items():
        if not client.is_connected:
            client.connect(resume=True)
    transport.pump()
    transport.pump()

    for name, client in clients.items():
        received = [event.as_tuple() for event in client.received_events]
        assert received == oracle.expected[name], (
            f"{name} (seed {seed}): got {len(received)} events, "
            f"expected {len(oracle.expected[name])}"
        )
        # Sequence numbers strictly increase: no duplicates, no reordering.
        seqs = [seq for seq, _event in client.deliveries]
        assert seqs == sorted(set(seqs))
