"""The companion paper's analytical claim, checked against this PST.

"We have analytically shown that the cost of matching using the above
algorithm increases less than linearly as the number of subscriptions
increase."  The :class:`~repro.analysis.MatchingCostModel` derives expected
steps/matches in closed form; here it is validated against the measured
implementation (uniform values, where the model is exact in expectation)
and used to certify sublinearity.
"""

from __future__ import annotations

import pytest

from repro.analysis import MatchingCostModel
from repro.errors import SimulationError
from repro.matching import ParallelSearchTree
from repro.workload import CHART1_SPEC, EventGenerator, SubscriptionGenerator, WorkloadSpec

UNIFORM_SPEC = WorkloadSpec(
    num_attributes=8,
    values_per_attribute=4,
    factoring_levels=0,
    zipf_exponent=0.0,
    locality_regions=1,
)


def measure(spec: WorkloadSpec, num_subscriptions: int, num_events: int = 300, seed: int = 5):
    generator = SubscriptionGenerator(spec, seed=seed)
    tree = ParallelSearchTree(spec.schema())
    for subscription in generator.subscriptions_for(["c"], num_subscriptions):
        tree.insert(subscription)
    events = EventGenerator(spec, seed=seed + 1)
    sample = [events.event_for() for _ in range(num_events)]
    steps = sum(tree.match(e).steps for e in sample) / len(sample)
    matches = sum(len(tree.match(e).subscriptions) for e in sample) / len(sample)
    return steps, matches


class TestModelAccuracy:
    @pytest.mark.parametrize("num_subscriptions", [200, 1000, 4000])
    def test_expected_steps_tracks_measurement(self, num_subscriptions):
        model = MatchingCostModel(UNIFORM_SPEC, num_subscriptions)
        measured_steps, _ = measure(UNIFORM_SPEC, num_subscriptions)
        assert model.expected_steps() == pytest.approx(measured_steps, rel=0.20)

    @pytest.mark.parametrize("num_subscriptions", [200, 1000, 4000])
    def test_expected_matches_tracks_measurement(self, num_subscriptions):
        model = MatchingCostModel(UNIFORM_SPEC, num_subscriptions)
        _, measured_matches = measure(UNIFORM_SPEC, num_subscriptions)
        assert model.expected_matches() == pytest.approx(measured_matches, rel=0.25)

    def test_chart1_selectivity_prediction(self):
        """The paper says Chart 1's parameters make events match ~0.1% of
        subscriptions; the closed form lands in that ballpark (the paper's
        locality mechanism, which we do not model analytically, pushes the
        simulated number further down)."""
        model = MatchingCostModel(CHART1_SPEC, 1000)
        assert 0.0005 < model.expected_selectivity() < 0.02


class TestSublinearity:
    @pytest.mark.parametrize("spec", [UNIFORM_SPEC, CHART1_SPEC], ids=["uniform", "chart1"])
    @pytest.mark.parametrize("num_subscriptions", [500, 2000, 8000])
    def test_doubling_subscriptions_less_than_doubles_steps(self, spec, num_subscriptions):
        model = MatchingCostModel(spec, num_subscriptions)
        assert model.sublinearity_ratio(2) < 0.95

    def test_ratio_improves_with_scale(self):
        """Sharing grows with the tree: the sublinearity ratio falls as the
        subscription count rises."""
        small = MatchingCostModel(UNIFORM_SPEC, 200).sublinearity_ratio()
        large = MatchingCostModel(UNIFORM_SPEC, 20_000).sublinearity_ratio()
        assert large < small

    def test_steps_table_monotone_but_concave(self):
        model = MatchingCostModel(UNIFORM_SPEC, 1)
        table = model.steps_table([100, 200, 400, 800])
        steps = [value for _count, value in table]
        assert steps == sorted(steps)
        increments = [b - a for a, b in zip(steps, steps[1:])]
        # Each doubling buys less than the previous one bought.
        assert increments[1] < increments[0] * 2
        assert increments[2] < increments[1] * 2


class TestValidation:
    def test_negative_subscriptions_rejected(self):
        with pytest.raises(SimulationError):
            MatchingCostModel(UNIFORM_SPEC, -1)

    def test_level_bounds(self):
        model = MatchingCostModel(UNIFORM_SPEC, 10)
        with pytest.raises(SimulationError):
            model.expected_visited_prefixes(0)
        with pytest.raises(SimulationError):
            model.expected_visited_prefixes(UNIFORM_SPEC.num_attributes + 1)

    def test_factor_bounds(self):
        with pytest.raises(SimulationError):
            MatchingCostModel(UNIFORM_SPEC, 10).sublinearity_ratio(1)

    def test_zero_subscriptions(self):
        model = MatchingCostModel(UNIFORM_SPEC, 0)
        assert model.expected_steps() == 1.0  # just the root
        assert model.expected_matches() == 0.0
        assert model.expected_selectivity() == 0.0
