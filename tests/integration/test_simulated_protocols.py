"""Integration tests of the timed simulator across all three protocols."""

from __future__ import annotations

import random


from repro.matching import Event, uniform_schema
from repro.protocols import (
    FloodingProtocol,
    LinkMatchingProtocol,
    MatchFirstProtocol,
    ProtocolContext,
)
from repro.sim import CostModel, NetworkSimulation
from repro.network import figure6_topology, linear_chain
from tests.conftest import make_subscription

SCHEMA = uniform_schema(3)
DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 4)}


def build_context(topology, seed=1, constrain=0.6):
    rng = random.Random(seed)
    subscriptions = []
    for client in topology.subscribers():
        tests = [f"a{j}={rng.randrange(3)}" for j in range(1, 4) if rng.random() < constrain]
        subscriptions.append(
            make_subscription(SCHEMA, " & ".join(tests) if tests else "*", client)
        )
    return ProtocolContext(topology, SCHEMA, subscriptions, domains=DOMAINS)


def run_events(topology, protocol, events, seed=3):
    simulation = NetworkSimulation(topology, protocol, seed=seed)
    for event in events:
        simulation.publish("P1", event)
    return simulation.run()


class TestCrossProtocolAgreement:
    def test_matched_deliveries_agree_on_figure6(self):
        topology = figure6_topology(subscribers_per_broker=2)
        context = build_context(topology)
        rng = random.Random(4)
        events = [
            Event.from_tuple(SCHEMA, tuple(rng.randrange(3) for _ in range(3)))
            for _ in range(10)
        ]
        outcomes = []
        for protocol in (
            LinkMatchingProtocol(context),
            FloodingProtocol(context),
            MatchFirstProtocol(context),
        ):
            result = run_events(topology, protocol, events)
            delivered = sorted(
                (record.client, record.event_id)
                for record in result.matched_deliveries
            )
            outcomes.append(delivered)
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_flooding_processes_most_messages(self):
        topology = figure6_topology(subscribers_per_broker=2)
        context = build_context(topology)
        rng = random.Random(5)
        events = [
            Event.from_tuple(SCHEMA, tuple(rng.randrange(3) for _ in range(3)))
            for _ in range(10)
        ]
        loads = {}
        for protocol in (
            LinkMatchingProtocol(context),
            FloodingProtocol(context),
            MatchFirstProtocol(context),
        ):
            result = run_events(topology, protocol, events)
            loads[protocol.name] = result.total_broker_messages
        assert loads["flooding"] > loads["link-matching"]
        assert loads["flooding"] > loads["match-first"]

    def test_flooding_visits_every_broker_every_event(self):
        topology = figure6_topology(subscribers_per_broker=1)
        context = build_context(topology)
        result = run_events(
            topology,
            FloodingProtocol(context),
            [Event.from_tuple(SCHEMA, (0, 0, 0))],
        )
        assert all(stats.processed == 1 for stats in result.broker_stats.values())

    def test_link_matching_skips_uninterested_brokers(self):
        topology = figure6_topology(subscribers_per_broker=1)
        # Only one subscriber, close to P1.
        subscriptions = [make_subscription(SCHEMA, "a1=0", "S.T0.L00.00")]
        context = ProtocolContext(topology, SCHEMA, subscriptions, domains=DOMAINS)
        result = run_events(
            topology,
            LinkMatchingProtocol(context),
            [Event.from_tuple(SCHEMA, (0, 0, 0))],
        )
        touched = [name for name, s in result.broker_stats.items() if s.processed]
        assert touched == ["T0.L00"]  # the publishing broker only


class TestLatencyModel:
    def test_wan_latency_dominates_processing(self):
        """The paper's argument for link matching despite extra steps: hop
        delays (tens of ms) dwarf matching time (sub-ms)."""
        topology = figure6_topology(subscribers_per_broker=1)
        subscriptions = [make_subscription(SCHEMA, "*", "S.T2.L22.00")]
        context = ProtocolContext(topology, SCHEMA, subscriptions, domains=DOMAINS)
        result = run_events(
            topology,
            LinkMatchingProtocol(context),
            [Event.from_tuple(SCHEMA, (0, 0, 0))],
        )
        (record,) = result.deliveries
        # P1 (T0 leaf) to a T2 leaf: 1 + 10 + 25 + 65 + 25 + 10 + 1 = 137 ms
        # of hop delay, plus queueing/service.
        assert record.latency_ms >= 137.0
        assert record.latency_ms <= 160.0

    def test_cost_model_shifts_capacity(self):
        topology = linear_chain(2, subscribers_per_broker=1)
        subscriptions = [make_subscription(SCHEMA, "*", "S.B1.00")]
        context = ProtocolContext(topology, SCHEMA, subscriptions, domains=DOMAINS)
        protocol = LinkMatchingProtocol(context)

        def busy_ticks(cost_model):
            simulation = NetworkSimulation(
                topology, protocol, cost_model=cost_model, seed=0
            )
            simulation.publish("P1", Event.from_tuple(SCHEMA, (0, 0, 0)))
            result = simulation.run()
            return result.broker_stats["B0"].busy_ticks

        cheap = busy_ticks(CostModel(per_message_overhead_us=10.0))
        expensive = busy_ticks(CostModel(per_message_overhead_us=1000.0))
        assert expensive > cheap
