"""Small-scale runs of every experiment harness, checking the paper's shapes.

These are the same harnesses the benchmarks drive at larger scale; here they
run just big enough to assert the qualitative claims:

* Chart 1: flooding saturates below link matching.
* Chart 2: cumulative steps grow with hop count; 1-hop link matching costs
  less than centralized matching.
* Chart 3: matching steps grow sublinearly with subscription count.
* Throughput: matching is a minority share of broker cost.
* Ablations: factoring reduces steps; the DAG beats the tree on steps but
  costs nodes; the ordering heuristic beats the reversed order.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    AblationConfig,
    BurstyConfig,
    Chart1Config,
    Chart2Config,
    Chart3Config,
    ThroughputConfig,
    run_bursty,
    run_chart1,
    run_chart2,
    run_chart3,
    run_delayed_branching_ablation,
    run_factoring_ablation,
    run_ordering_ablation,
    run_throughput,
    run_virtual_link_ablation,
)


@pytest.mark.slow
class TestChart1:
    def test_flooding_saturates_below_link_matching(self):
        table = run_chart1(
            Chart1Config(
                subscription_counts=(150,),
                subscribers_per_broker=2,
                probe_duration_s=0.3,
            )
        )
        rates = {
            protocol: rate
            for _count, protocol, rate, _probes in table.rows
        }
        assert rates["flooding"] < rates["link-matching"]


class TestChart2:
    def test_shape(self):
        table = run_chart2(
            Chart2Config(
                subscription_counts=(300,),
                num_events=40,
                subscribers_per_broker=2,
            )
        )
        (row,) = table.rows
        by_column = dict(zip(table.columns, row))
        centralized = by_column["centralized"]
        lm_1 = by_column["lm_1_hop"]
        assert lm_1 != "" and lm_1 <= centralized
        # Cumulative steps trend upward with distance.  Each hop count
        # averages over a different set of deliveries, so small local dips
        # are possible; the overall trend must still be a clear increase.
        values = []
        for hop in range(1, 7):
            key = f"lm_{hop}_hop" if hop == 1 else f"lm_{hop}_hops"
            value = by_column[key]
            if value != "":
                values.append(value)
        assert len(values) >= 3
        assert values[-1] > values[0]
        for previous, current in zip(values, values[1:]):
            assert current >= previous * 0.7


class TestChart3:
    def test_sublinear_steps(self):
        table = run_chart3(
            Chart3Config(subscription_counts=(500, 2000), num_events=60)
        )
        steps = table.column("avg_steps")
        subs = table.column("subscriptions")
        # 4x the subscriptions must cost far less than 4x the steps.
        growth = steps[1] / steps[0]
        assert growth < (subs[1] / subs[0]) * 0.9

    def test_times_are_positive(self):
        table = run_chart3(Chart3Config(subscription_counts=(200,), num_events=30))
        assert all(value > 0 for value in table.column("avg_match_ms"))


class TestThroughput:
    def test_transport_dominates_matching(self):
        table = run_throughput(
            ThroughputConfig(subscription_counts=(50,), num_events=300)
        )
        (row,) = table.rows
        by_column = dict(zip(table.columns, row))
        assert by_column["events_per_sec"] > 0
        # The paper: "transport system and network costs of a broker
        # outweigh the cost of matching".
        assert by_column["matching_cost_share"] < 0.5


class TestBursty:
    def test_burstiness_increases_queueing(self):
        table = run_bursty(
            BurstyConfig(
                num_subscriptions=100,
                mean_rate=2500.0,
                burstiness_factors=(1.0, 10.0),
                duration_s=0.6,
            )
        )
        queues = dict(zip(table.column("burstiness"), table.column("max_queue")))
        assert queues[10.0] >= queues[1.0]


class TestAblations:
    def test_factoring_reduces_steps(self):
        table = run_factoring_ablation(
            AblationConfig(num_subscriptions=600, num_events=100)
        )
        steps = dict(zip(table.column("factoring_levels"), table.column("mean_steps")))
        assert steps[2] < steps[0]

    def test_ordering_heuristic_beats_reverse(self):
        table = run_ordering_ablation(
            AblationConfig(num_subscriptions=600, num_events=100)
        )
        steps = dict(zip(table.column("ordering"), table.column("mean_steps")))
        assert steps["fewest-dont-cares"] <= steps["reverse"]

    def test_dag_trades_nodes_for_steps(self):
        table = run_delayed_branching_ablation(
            AblationConfig(num_subscriptions=300, num_events=100)
        )
        rows = {row[0]: row for row in table.rows}
        tree_steps = rows["parallel search tree"][1]
        dag_steps = rows["search DAG"][1]
        assert dag_steps < tree_steps

    def test_virtual_links_only_split_with_laterals(self):
        table = run_virtual_link_ablation(subscribers_per_broker=1)
        rows = {row[0]: row for row in table.rows}
        assert rows["default"][1] > 0  # lateral links force splits
        assert rows["none"][1] == 0
