"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.matching import (
    Event,
    EventSchema,
    Subscription,
    parse_predicate,
    stock_trade_schema,
    uniform_schema,
)
from repro.network import NodeKind, Topology


@pytest.fixture
def stock_schema() -> EventSchema:
    """The paper's running example: [issue, price, volume]."""
    return stock_trade_schema()


@pytest.fixture
def schema5() -> EventSchema:
    """The five-attribute schema of Figure 2 (a1..a5, integers)."""
    return uniform_schema(5)


@pytest.fixture
def ibm_event(stock_schema) -> Event:
    return Event(stock_schema, {"issue": "IBM", "price": 119.0, "volume": 2000})


def make_subscription(schema: EventSchema, expression: str, subscriber: str) -> Subscription:
    """Helper: parse an expression into a subscription."""
    return Subscription(parse_predicate(schema, expression), subscriber)


@pytest.fixture
def two_broker_topology() -> Topology:
    """B0 -- B1, one subscriber on each broker, publisher on B0."""
    topology = Topology()
    topology.add_broker("B0")
    topology.add_broker("B1")
    topology.add_link("B0", "B1", latency_ms=10.0)
    topology.add_client("c0", "B0")
    topology.add_client("c1", "B1")
    topology.add_client("P1", "B0", kind=NodeKind.PUBLISHER)
    return topology


@pytest.fixture
def diamond_topology() -> Topology:
    """A cycle: B0-B1, B0-B2, B1-B3, B2-B3 (tests non-tree networks)."""
    topology = Topology()
    for name in ("B0", "B1", "B2", "B3"):
        topology.add_broker(name)
    topology.add_link("B0", "B1", latency_ms=10.0)
    topology.add_link("B0", "B2", latency_ms=10.0)
    topology.add_link("B1", "B3", latency_ms=10.0)
    topology.add_link("B2", "B3", latency_ms=15.0)
    for broker in ("B0", "B1", "B2", "B3"):
        topology.add_client(f"c.{broker}", broker)
    topology.add_client("P1", "B0", kind=NodeKind.PUBLISHER)
    topology.add_client("P2", "B3", kind=NodeKind.PUBLISHER)
    return topology
