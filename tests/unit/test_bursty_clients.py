"""Unit tests for the bursty (ON/OFF) publisher's arrival structure."""

from __future__ import annotations


import pytest

from repro.errors import SimulationError
from repro.matching import Event, uniform_schema
from repro.protocols import LinkMatchingProtocol, ProtocolContext
from repro.sim import NetworkSimulation, ticks_to_seconds
from repro.network import linear_chain

SCHEMA = uniform_schema(2)


def run_publisher(kind: str, rate: float, num_events: int, seed: int = 3, **kwargs):
    """Run a single publisher to completion; returns publish timestamps (s)."""
    topology = linear_chain(2, subscribers_per_broker=1)
    context = ProtocolContext(topology, SCHEMA, [])
    simulation = NetworkSimulation(topology, LinkMatchingProtocol(context), seed=seed)
    timestamps = []

    original_publish = simulation.publish

    def recording_publish(publisher, event):
        timestamps.append(ticks_to_seconds(simulation.simulator.now))
        original_publish(publisher, event)

    simulation.publish = recording_publish  # type: ignore[method-assign]
    factory = lambda rng: Event.from_tuple(SCHEMA, (rng.randrange(3), 0))
    if kind == "poisson":
        simulation.add_poisson_publisher("P1", rate, factory, num_events)
    else:
        simulation.add_bursty_publisher("P1", rate, factory, num_events, **kwargs)
    simulation.run()
    return timestamps


def burstiness_index(timestamps, window_s: float) -> float:
    """Variance-to-mean ratio of per-window event counts (1 = Poisson)."""
    if not timestamps:
        return 0.0
    horizon = max(timestamps) + window_s
    counts = {}
    for t in timestamps:
        counts[int(t / window_s)] = counts.get(int(t / window_s), 0) + 1
    buckets = int(horizon / window_s) + 1
    values = [counts.get(i, 0) for i in range(buckets)]
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return variance / mean


class TestBurstyStructure:
    def test_publishes_exact_budget(self):
        timestamps = run_publisher("bursty", 500.0, 120, burstiness=5.0)
        assert len(timestamps) == 120

    def test_more_bursty_than_poisson(self):
        poisson = run_publisher("poisson", 1000.0, 600)
        bursty = run_publisher("bursty", 1000.0, 600, burstiness=10.0, on_mean_s=0.05)
        window = 0.02
        assert burstiness_index(bursty, window) > 2.0 * burstiness_index(
            poisson, window
        )

    def test_mean_rate_approximately_preserved(self):
        # Short ON periods give many ON/OFF cycles, which shrinks the bias
        # from starting and ending mid-burst (a run never pays the final
        # OFF period).
        rate = 1000.0
        timestamps = run_publisher(
            "bursty", rate, 1500, burstiness=5.0, on_mean_s=0.01
        )
        elapsed = max(timestamps) - min(timestamps)
        realized = (len(timestamps) - 1) / elapsed
        assert realized == pytest.approx(rate, rel=0.35)

    def test_burstiness_one_rejected_below(self):
        topology = linear_chain(2, subscribers_per_broker=0)
        context = ProtocolContext(topology, SCHEMA, [])
        simulation = NetworkSimulation(topology, LinkMatchingProtocol(context))
        factory = lambda rng: Event.from_tuple(SCHEMA, (0, 0))
        with pytest.raises(SimulationError):
            simulation.add_bursty_publisher("P1", 10.0, factory, 5, burstiness=0.9)
        with pytest.raises(SimulationError):
            simulation.add_bursty_publisher(
                "P1", 10.0, factory, 5, burstiness=2.0, on_mean_s=0.0
            )
