"""Unit tests for the attribute-inverted covering index.

The index is a *candidate filter*: callers verify every candidate with
``predicate_subsumes``, so spurious candidates are harmless and the only
interesting contract is completeness — every true covering relation over
the canonical test shapes must surface.  These tests pin the explicit
query behaviors, the add/remove lifecycle, and (the load-bearing one) an
exact-completeness sweep over the equality + one-sided-range predicate
family, where the filter is complete by design (one-sided ranges never
pin a single point, so the documented pure-equality-over-point-interval
gap cannot occur).
"""

from __future__ import annotations

import random

from repro.matching import Predicate, uniform_schema
from repro.matching.aggregation import canonicalize_predicate
from repro.matching.covering_index import MAX_SIGNATURE_BITS, CoveringIndex
from repro.matching.predicates import EqualityTest, RangeOp, RangeTest
from repro.matching.subsumption import predicate_subsumes

SCHEMA = uniform_schema(4)


def canonical(**tests):
    return canonicalize_predicate(Predicate(SCHEMA, tests))


class TestLifecycle:
    def test_add_remove_roundtrip_empties_every_posting_list(self):
        index = CoveringIndex()
        bodies = [
            canonical(),
            canonical(a1=EqualityTest(1)),
            canonical(a1=EqualityTest(1), a2=EqualityTest(2)),
            canonical(a2=RangeTest(RangeOp.GE, 1)),
        ]
        for key, body in enumerate(bodies):
            index.add(key, body)
        assert len(index) == len(bodies)
        assert 0 in index and 3 in index
        for key in range(len(bodies)):
            index.remove(key)
        assert len(index) == 0
        assert index._equalities == {}
        assert index._intervals == {}
        assert index._signatures == {}
        assert index._signature_sizes == {}
        assert index._universal == {}

    def test_universal_probe_returns_none_for_covered(self):
        index = CoveringIndex()
        index.add("eq", canonical(a1=EqualityTest(1)))
        # The universal predicate covers everything: no seed position exists,
        # so the caller must fall back to its own bounded sibling scan.
        assert index.covered_candidates(canonical()) is None

    def test_universal_entries_are_cover_candidates_of_everything(self):
        index = CoveringIndex()
        index.add("all", canonical())
        index.add("eq", canonical(a1=EqualityTest(1)))
        assert "all" in index.cover_candidates(canonical(a1=EqualityTest(1)))
        assert "all" in index.cover_candidates(canonical(a3=EqualityTest(0)))


class TestQueries:
    def test_equality_signature_cover_lookup(self):
        index = CoveringIndex()
        index.add("broad", canonical(a1=EqualityTest(1)))
        index.add("other", canonical(a1=EqualityTest(2)))
        probe = canonical(a1=EqualityTest(1), a2=EqualityTest(0))
        candidates = index.cover_candidates(probe)
        assert "broad" in candidates
        assert "other" not in candidates

    def test_interval_cover_lookup(self):
        index = CoveringIndex()
        index.add("wide", canonical(a1=RangeTest(RangeOp.LE, 5)))
        index.add("narrow", canonical(a1=RangeTest(RangeOp.LE, 1)))
        probe = canonical(a1=RangeTest(RangeOp.LE, 3))
        candidates = index.cover_candidates(probe)
        assert "wide" in candidates
        assert "narrow" not in candidates

    def test_covered_candidates_prunes_underconstrained(self):
        index = CoveringIndex()
        index.add("specific", canonical(a1=EqualityTest(1), a2=EqualityTest(2)))
        index.add("loose", canonical(a1=EqualityTest(1)))
        probe = canonical(a1=EqualityTest(1), a2=RangeTest(RangeOp.GE, 0))
        candidates = index.covered_candidates(probe)
        # "loose" constrains fewer attributes than the probe, so it cannot
        # be covered by it; "specific" must surface.
        assert "specific" in candidates
        assert "loose" not in candidates

    def test_covered_candidates_limit_truncates(self):
        index = CoveringIndex()
        for key in range(10):
            index.add(key, canonical(a1=EqualityTest(1), a2=EqualityTest(key)))
        probe = canonical(a1=EqualityTest(1))
        assert len(index.covered_candidates(probe)) == 10
        assert len(index.covered_candidates(probe, limit=3)) == 3
        assert index.covered_candidates(probe, limit=0) == []

    def test_signature_cap_smoke(self):
        wide = uniform_schema(MAX_SIGNATURE_BITS + 2)
        index = CoveringIndex()
        cover = canonicalize_predicate(
            Predicate(wide, {wide.names[0]: EqualityTest(0)})
        )
        index.add("cover", cover)
        probe = canonicalize_predicate(
            Predicate(wide, {name: EqualityTest(0) for name in wide.names})
        )
        # The probe carries more equality pairs than MAX_SIGNATURE_BITS;
        # enumeration stays bounded and still finds covers keyed on the
        # first MAX_SIGNATURE_BITS pairs.
        assert "cover" in index.cover_candidates(probe)


class TestCompleteness:
    def _random_canonical(self, rng):
        tests = {}
        for name in SCHEMA.names:
            roll = rng.random()
            if roll < 0.45:
                continue  # don't-care
            if roll < 0.8:
                tests[name] = EqualityTest(rng.randrange(4))
            else:
                op = rng.choice([RangeOp.LE, RangeOp.GE, RangeOp.LT, RangeOp.GT])
                tests[name] = RangeTest(op, rng.randrange(4))
        return canonical(**tests)

    def test_every_true_cover_is_a_candidate(self):
        """Exact completeness over the Eq + one-sided-Range family: for
        every subsuming pair, the cover is a cover-candidate of the covered
        probe AND the covered is a covered-candidate of the cover."""
        rng = random.Random(20260807)
        bodies = [self._random_canonical(rng) for _ in range(48)]
        index = CoveringIndex()
        for key, body in enumerate(bodies):
            index.add(key, body)
        for i, general in enumerate(bodies):
            covered = index.covered_candidates(general)
            for j, specific in enumerate(bodies):
                if i == j or not predicate_subsumes(general, specific):
                    continue
                assert i in index.cover_candidates(specific), (general, specific)
                if covered is not None:
                    assert j in covered, (general, specific)
