"""Unit tests for the CLI (fast subcommands only; chart1 is exercised by
the benchmarks)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestParsing:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFastCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "alice" in out and "bob" in out
        assert "('NY', 'TOKYO')" in out

    def test_chart3_small(self, capsys):
        assert main(["chart3", "--subscriptions", "200", "400", "--events", "20"]) == 0
        out = capsys.readouterr().out
        assert "Chart 3" in out
        assert "avg_match_ms" in out
        assert "legend:" in out  # the ASCII chart rendered

    def test_chart2_small(self, capsys):
        assert main(["chart2", "--subscriptions", "150", "--events", "15"]) == 0
        out = capsys.readouterr().out
        assert "centralized" in out

    def test_bursty_small(self, capsys):
        assert (
            main(["bursty", "--mean-rate", "1500", "--burstiness", "1", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "burstiness" in out

    def test_model_small(self, capsys):
        assert main(["model", "--subscriptions", "100", "200", "--events", "30"]) == 0
        out = capsys.readouterr().out
        assert "model_steps" in out and "sublinearity_ratio" in out
