"""Tests for precise range-test annotation over declared domains, and the
domain contract enforcement in routing."""

from __future__ import annotations

import random

import pytest

from repro.core import ContentRoutedNetwork, M, N, TreeAnnotation, Y
from repro.errors import RoutingError
from repro.matching import build_pst, uniform_schema
from repro.network import linear_chain
from tests.conftest import make_subscription

SCHEMA = uniform_schema(2)
DOMAINS = {"a1": [0, 1, 2, 3], "a2": [0, 1, 2, 3]}
LINKS = {"l0": 0, "l1": 1}


def annotate(tree):
    annotation = TreeAnnotation(2, lambda s: LINKS[s.subscriber])
    root = annotation.annotate(tree)
    return annotation, root


class TestPreciseRangeAnnotation:
    def test_range_covering_domain_promotes_to_yes(self):
        # a1>=0 accepts the whole domain: a guaranteed match on l0.
        tree = build_pst(
            SCHEMA, [make_subscription(SCHEMA, "a1>=0", "l0")], domains=DOMAINS
        )
        _annotation, root = annotate(tree)
        assert root[0] is Y

    def test_partial_range_is_maybe(self):
        tree = build_pst(
            SCHEMA, [make_subscription(SCHEMA, "a1>1", "l0")], domains=DOMAINS
        )
        _annotation, root = annotate(tree)
        assert root[0] is M

    def test_unsatisfiable_range_over_domain_is_no(self):
        # a1>5 accepts no domain value: definitely-No on that link.
        tree = build_pst(
            SCHEMA, [make_subscription(SCHEMA, "a1>5", "l0")], domains=DOMAINS
        )
        _annotation, root = annotate(tree)
        assert root[0] is N

    def test_complementary_ranges_promote_to_yes(self):
        # a1<2 and a1>=2 jointly cover the domain on the same link.
        tree = build_pst(
            SCHEMA,
            [
                make_subscription(SCHEMA, "a1<2", "l0"),
                make_subscription(SCHEMA, "a1>=2", "l0"),
            ],
            domains=DOMAINS,
        )
        _annotation, root = annotate(tree)
        assert root[0] is Y

    def test_complementary_ranges_on_different_links(self):
        tree = build_pst(
            SCHEMA,
            [
                make_subscription(SCHEMA, "a1<2", "l0"),
                make_subscription(SCHEMA, "a1>=2", "l1"),
            ],
            domains=DOMAINS,
        )
        _annotation, root = annotate(tree)
        assert root[0] is M and root[1] is M  # each link only sometimes

    def test_equality_plus_range_cover(self):
        # values {0} via equality, {1,2,3} via range: jointly exhaustive.
        tree = build_pst(
            SCHEMA,
            [
                make_subscription(SCHEMA, "a1=0", "l0"),
                make_subscription(SCHEMA, "a1>0", "l0"),
            ],
            domains=DOMAINS,
        )
        _annotation, root = annotate(tree)
        assert root[0] is Y

    def test_without_domain_ranges_stay_conservative(self):
        tree = build_pst(SCHEMA, [make_subscription(SCHEMA, "a1>=0", "l0")])
        _annotation, root = annotate(tree)
        assert root[0] is M  # open domain: cannot promise anything


class TestDomainContract:
    def test_out_of_domain_event_rejected_by_router(self):
        network = ContentRoutedNetwork(
            linear_chain(2, subscribers_per_broker=1), SCHEMA, domains=DOMAINS
        )
        network.subscribe("S.B1.00", "a1=1")
        with pytest.raises(RoutingError, match="outside the declared domain"):
            network.publish("P1", {"a1": 9, "a2": 0})

    def test_in_domain_events_route_normally(self):
        network = ContentRoutedNetwork(
            linear_chain(2, subscribers_per_broker=1), SCHEMA, domains=DOMAINS
        )
        network.subscribe("S.B1.00", "a1=1")
        trace = network.publish("P1", {"a1": 1, "a2": 0})
        assert trace.delivered_clients == {"S.B1.00"}

    def test_no_domains_no_restriction(self):
        network = ContentRoutedNetwork(
            linear_chain(2, subscribers_per_broker=1), SCHEMA
        )
        network.subscribe("S.B1.00", "a1=9000")
        trace = network.publish("P1", {"a1": 9000, "a2": 0})
        assert trace.delivered_clients == {"S.B1.00"}


class TestRangeRoutingEquivalence:
    def test_random_range_workload_delivers_exactly(self):
        rng = random.Random(17)
        topology = linear_chain(4, subscribers_per_broker=2)
        network = ContentRoutedNetwork(topology, SCHEMA, domains=DOMAINS)
        operators = ["<", "<=", ">", ">=", "=", "!="]
        for client in topology.subscribers():
            clauses = []
            for name in ("a1", "a2"):
                if rng.random() < 0.7:
                    op = rng.choice(operators)
                    clauses.append(f"{name}{op}{rng.randrange(4)}")
            network.subscribe(client, " & ".join(clauses) if clauses else "*")
        for _ in range(200):
            event = {"a1": rng.randrange(4), "a2": rng.randrange(4)}
            trace = network.publish("P1", event)
            assert trace.delivered_clients == network.expected_recipients(event)
