"""Unit tests for the experiment table container."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentTable


class TestExperimentTable:
    def test_add_row_and_column(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2, 4]

    def test_wrong_arity_rejected(self):
        table = ExperimentTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_unknown_column(self):
        table = ExperimentTable("T", ["a"])
        with pytest.raises(ValueError):
            table.column("z")

    def test_format_contains_everything(self):
        table = ExperimentTable("Saturation", ["subs", "rate"])
        table.add_row(1000, 5417.3)
        text = table.format()
        assert "Saturation" in text
        assert "subs" in text and "rate" in text
        assert "1000" in text and "5417.30" in text

    def test_format_empty_table(self):
        table = ExperimentTable("Empty", ["x"])
        text = table.format()
        assert "Empty" in text and "x" in text

    def test_floats_formatted_to_two_places(self):
        table = ExperimentTable("T", ["v"])
        table.add_row(1.23456)
        assert "1.23" in table.format()
