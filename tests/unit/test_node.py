"""Unit tests for the prototype broker node and client (in-memory)."""

from __future__ import annotations

import pytest

from repro.broker import (
    BrokerClient,
    BrokerNetworkConfig,
    BrokerNode,
    InMemoryTransport,
    RequestFailed,
)
from repro.errors import ProtocolError, RoutingError, TransportError
from repro.matching import stock_trade_schema
from repro.network import NodeKind, Topology


def two_broker_network():
    """B0 -- B1; alice@B0, bob@B1, pub@B0."""
    schema = stock_trade_schema()
    topology = Topology()
    topology.add_broker("B0")
    topology.add_broker("B1")
    topology.add_link("B0", "B1", latency_ms=5.0)
    topology.add_client("alice", "B0")
    topology.add_client("bob", "B1")
    topology.add_client("pub", "B0", kind=NodeKind.PUBLISHER)
    config = BrokerNetworkConfig(topology, schema)
    transport = InMemoryTransport()
    endpoints = {name: f"mem://{name}" for name in topology.brokers()}
    nodes = {name: BrokerNode(config, name, transport, endpoints) for name in topology.brokers()}
    for node in nodes.values():
        node.start()
    for node in nodes.values():
        node.connect_neighbors()
    transport.pump()
    return schema, transport, nodes


def client(name, schema, transport, broker, **kwargs):
    endpoint = f"mem://{broker}"
    c = BrokerClient(name, schema, transport, endpoint, pump=transport.pump, **kwargs)
    c.connect()
    transport.pump()
    return c


class TestStartupAndConnections:
    def test_brokers_interconnect(self):
        _schema, _transport, nodes = two_broker_network()
        assert nodes["B0"].connected_brokers == ["B1"]
        assert nodes["B1"].connected_brokers == ["B0"]

    def test_client_connects_to_home_broker(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        assert alice.connected_broker == "B0"

    def test_unknown_client_rejected(self):
        schema, transport, _nodes = two_broker_network()
        stranger = BrokerClient("stranger", schema, transport, "mem://B0", pump=transport.pump)
        stranger.connect()
        transport.pump()
        assert not stranger.is_connected

    def test_wrong_home_broker_rejected(self):
        schema, transport, _nodes = two_broker_network()
        bob = BrokerClient("bob", schema, transport, "mem://B0", pump=transport.pump)
        bob.connect()  # bob is attached to B1 in the topology
        transport.pump()
        assert not bob.is_connected

    def test_node_name_must_be_broker(self):
        schema = stock_trade_schema()
        topology = Topology()
        topology.add_broker("B0")
        topology.add_client("pub", "B0", kind=NodeKind.PUBLISHER)
        config = BrokerNetworkConfig(topology, schema)
        with pytest.raises(ProtocolError):
            BrokerNode(config, "pub", InMemoryTransport(), {})

    def test_missing_endpoint(self):
        schema = stock_trade_schema()
        topology = Topology()
        topology.add_broker("B0")
        topology.add_client("pub", "B0", kind=NodeKind.PUBLISHER)
        config = BrokerNetworkConfig(topology, schema)
        node = BrokerNode(config, "B0", InMemoryTransport(), {})
        with pytest.raises(TransportError):
            node.start()

    def test_config_requires_publishers(self):
        schema = stock_trade_schema()
        topology = Topology()
        topology.add_broker("B0")
        topology.add_client("c", "B0")
        with pytest.raises(RoutingError):
            BrokerNetworkConfig(topology, schema)


class TestSubscriptionPropagation:
    def test_subscription_replicated_to_all_brokers(self):
        schema, transport, nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        alice.subscribe_and_wait("issue='IBM'")
        transport.pump()
        assert nodes["B0"].subscription_count == 1
        assert nodes["B1"].subscription_count == 1

    def test_unsubscribe_replicated(self):
        schema, transport, nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        subscription_id = alice.subscribe_and_wait("issue='IBM'")
        transport.pump()
        alice.unsubscribe_and_wait(subscription_id)
        transport.pump()
        assert nodes["B0"].subscription_count == 0
        assert nodes["B1"].subscription_count == 0

    def test_bad_expression_reported(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        with pytest.raises(RequestFailed):
            alice.subscribe_and_wait("nope===")

    def test_cannot_remove_another_clients_subscription(self):
        schema, transport, nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        bob = client("bob", schema, transport, "B1")
        subscription_id = bob.subscribe_and_wait("volume>0")
        transport.pump()
        with pytest.raises(RequestFailed):
            alice.unsubscribe_and_wait(subscription_id)
        transport.pump()
        assert nodes["B0"].subscription_count == 1


class TestPublishAndDeliver:
    def test_local_and_remote_delivery(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        bob = client("bob", schema, transport, "B1")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("issue='IBM'")
        bob.subscribe_and_wait("volume>100")
        transport.pump()
        pub.publish({"issue": "IBM", "price": 10.0, "volume": 500})
        transport.pump()
        assert len(alice.received_events) == 1
        assert len(bob.received_events) == 1

    def test_event_not_delivered_to_non_matching(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("issue='IBM'")
        transport.pump()
        pub.publish({"issue": "MSFT", "price": 10.0, "volume": 500})
        transport.pump()
        assert alice.received_events == []

    def test_subscriber_cannot_publish_without_publisher_broker(self):
        schema, transport, _nodes = two_broker_network()
        bob = client("bob", schema, transport, "B1")  # B1 hosts no publisher
        bob.publish({"issue": "IBM", "price": 1.0, "volume": 1})
        transport.pump()
        # No spanning tree rooted at B1: broker answers with an error, and
        # nothing is delivered anywhere.
        assert bob.received_events == []

    def test_on_event_callback(self):
        schema, transport, _nodes = two_broker_network()
        seen = []
        alice = client(
            "alice", schema, transport, "B0", on_event=lambda e, seq: seen.append(seq)
        )
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        pub.publish({"issue": "X", "price": 1.0, "volume": 1})
        transport.pump()
        assert seen == [1]

    def test_sequencing_per_client(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        for i in range(5):
            pub.publish({"issue": "X", "price": float(i), "volume": i})
        transport.pump()
        assert [seq for seq, _e in alice.deliveries] == [1, 2, 3, 4, 5]


class TestReliability:
    def test_offline_events_logged_and_redelivered(self):
        schema, transport, nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        pub.publish({"issue": "A", "price": 1.0, "volume": 1})
        transport.pump()
        alice.drop_connection()
        transport.pump()
        pub.publish({"issue": "B", "price": 2.0, "volume": 2})
        pub.publish({"issue": "C", "price": 3.0, "volume": 3})
        transport.pump()
        assert len(alice.received_events) == 1
        alice.connect(resume=True)
        transport.pump()
        issues = [e["issue"] for e in alice.received_events]
        assert issues == ["A", "B", "C"]

    def test_no_duplicates_after_reconnect(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        pub.publish({"issue": "A", "price": 1.0, "volume": 1})
        transport.pump()
        alice.drop_connection()
        transport.pump()
        alice.connect(resume=True)
        transport.pump()
        assert [e["issue"] for e in alice.received_events] == ["A"]

    def test_acks_drive_gc(self):
        schema, transport, nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        pub.publish({"issue": "A", "price": 1.0, "volume": 1})
        transport.pump()  # delivery + auto-ack
        collected = nodes["B0"].collect_garbage()
        assert collected == 1
        assert len(nodes["B0"].session("alice").log) == 0

    def test_graceful_disconnect_keeps_session(self):
        schema, transport, nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        alice.disconnect()
        transport.pump()
        assert not nodes["B0"].session("alice").is_connected
        assert nodes["B0"].subscription_count == 1  # subscriptions persist


class TestStatsSnapshot:
    def test_stats_reflect_activity(self):
        schema, transport, nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        pub.publish({"issue": "X", "price": 1.0, "volume": 1})
        transport.pump()
        stats = nodes["B0"].stats()
        assert stats["broker"] == "B0"
        assert stats["subscriptions"] == 1
        assert stats["events_routed"] == 1
        assert stats["events_delivered"] == 1
        assert stats["connected_brokers"] == ["B1"]
        assert set(stats["connected_clients"]) == {"alice", "pub"}
        assert stats["logged_entries"] >= 0

    def test_stats_on_idle_node(self):
        _schema, _transport, nodes = two_broker_network()
        stats = nodes["B1"].stats()
        assert stats["subscriptions"] == 0
        assert stats["events_routed"] == 0
        assert stats["connected_clients"] == []
