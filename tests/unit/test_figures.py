"""Unit tests for the canned topologies, especially Figure 6."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.network import (
    CLIENT_MS,
    INTERCONTINENTAL_MS,
    MID_TO_LEAF_MS,
    ROOT_TO_MID_MS,
    NodeKind,
    binary_tree,
    figure6_topology,
    linear_chain,
    star,
)


class TestFigure6:
    def test_39_brokers(self):
        topology = figure6_topology()
        assert len(topology.brokers()) == 39

    def test_ten_subscribers_per_broker(self):
        topology = figure6_topology()
        assert len(topology.subscribers()) == 390
        for broker in topology.brokers():
            subscribers = [
                c
                for c in topology.clients_of(broker)
                if topology.node(c).kind is NodeKind.SUBSCRIBER
            ]
            assert len(subscribers) == 10

    def test_three_publishers_in_distinct_trees(self):
        topology = figure6_topology()
        assert topology.publishers() == ["P1", "P2", "P3"]
        trees = {topology.broker_of(p).split(".")[0] for p in topology.publishers()}
        assert trees == {"T0", "T1", "T2"}

    def test_hop_delays_match_paper(self):
        topology = figure6_topology(subscribers_per_broker=1)
        assert topology.link_between("T0.R", "T1.R").latency_ms == INTERCONTINENTAL_MS
        assert topology.link_between("T0.R", "T0.M0").latency_ms == ROOT_TO_MID_MS
        assert topology.link_between("T0.M0", "T0.L00").latency_ms == MID_TO_LEAF_MS
        assert topology.link_between("T0.L00", "S.T0.L00.00").latency_ms == CLIENT_MS

    def test_roots_fully_connected(self):
        topology = figure6_topology(subscribers_per_broker=0)
        for a in range(3):
            for b in range(a + 1, 3):
                topology.link_between(f"T{a}.R", f"T{b}.R")

    def test_each_tree_has_13_brokers(self):
        topology = figure6_topology(subscribers_per_broker=0)
        for tree in range(3):
            members = [b for b in topology.brokers() if b.startswith(f"T{tree}.")]
            assert len(members) == 13

    def test_default_lateral_links_exist(self):
        topology = figure6_topology(subscribers_per_broker=0)
        topology.link_between("T0.M1", "T1.M1")
        topology.link_between("T1.M2", "T2.M0")

    def test_lateral_links_configurable(self):
        topology = figure6_topology(subscribers_per_broker=0, lateral_links=())
        with pytest.raises(TopologyError):
            topology.link_between("T0.M1", "T1.M1")

    def test_custom_publisher_brokers(self):
        topology = figure6_topology(
            subscribers_per_broker=0, publisher_brokers=["T0.R", "T1.R", "T2.R"]
        )
        assert topology.broker_of("P1") == "T0.R"

    def test_negative_subscribers_rejected(self):
        with pytest.raises(TopologyError):
            figure6_topology(subscribers_per_broker=-1)


class TestSmallTopologies:
    def test_linear_chain_shape(self):
        topology = linear_chain(4, subscribers_per_broker=2)
        assert topology.brokers() == ["B0", "B1", "B2", "B3"]
        assert topology.broker_neighbors("B1") == ["B0", "B2"]
        assert len(topology.subscribers()) == 8

    def test_linear_chain_publisher_position(self):
        topology = linear_chain(3, publisher_broker_index=2)
        assert topology.broker_of("P1") == "B2"

    def test_linear_chain_needs_a_broker(self):
        with pytest.raises(TopologyError):
            linear_chain(0)

    def test_star_shape(self):
        topology = star(4, subscribers_per_broker=1)
        assert topology.broker_neighbors("HUB") == ["E0", "E1", "E2", "E3"]
        assert topology.broker_of("P1") == "HUB"

    def test_binary_tree_shape(self):
        topology = binary_tree(2, subscribers_per_leaf=1)
        assert len(topology.brokers()) == 7
        assert topology.broker_of("P1") == "N0.0"
        assert len(topology.subscribers()) == 4

    def test_all_canned_topologies_validate(self):
        for topology in (
            figure6_topology(subscribers_per_broker=1),
            linear_chain(3),
            star(3),
            binary_tree(2),
        ):
            topology.validate()
