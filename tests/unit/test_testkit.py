"""Unit tests for the in-memory broker harness."""

from __future__ import annotations


from repro.matching import uniform_schema
from repro.testkit import InMemoryBrokerHarness

SCHEMA = uniform_schema(2)


class TestHarnessLifecycle:
    def test_chain_constructor_starts_everything(self):
        with InMemoryBrokerHarness.for_chain(3, SCHEMA) as harness:
            assert set(harness.nodes) == {"B0", "B1", "B2"}
            assert harness.nodes["B1"].connected_brokers == ["B0", "B2"]

    def test_star_constructor(self):
        with InMemoryBrokerHarness.for_star(3, SCHEMA) as harness:
            assert harness.nodes["HUB"].connected_brokers == ["E0", "E1", "E2"]

    def test_shutdown_disconnects_clients(self):
        harness = InMemoryBrokerHarness.for_chain(2, SCHEMA)
        client = harness.attach("S.B0.00")
        harness.shutdown()
        assert not client.is_connected


class TestEndToEnd:
    def test_docstring_scenario(self):
        with InMemoryBrokerHarness.for_chain(3, SCHEMA) as harness:
            alice = harness.attach("S.B0.00")
            pub = harness.attach("P1")
            alice.subscribe_and_wait("a1=1")
            harness.settle()
            pub.publish({"a1": 1, "a2": 0})
            harness.settle()
            assert len(alice.received_events) == 1

    def test_cross_broker_delivery(self):
        with InMemoryBrokerHarness.for_chain(4, SCHEMA) as harness:
            far = harness.attach("S.B3.00")
            pub = harness.attach("P1")
            far.subscribe_and_wait("a2=1")
            harness.settle()
            pub.publish({"a1": 0, "a2": 1})
            pub.publish({"a1": 0, "a2": 0})
            harness.settle()
            assert len(far.received_events) == 1

    def test_on_event_callback_wiring(self):
        seen = []
        with InMemoryBrokerHarness.for_chain(2, SCHEMA) as harness:
            harness.attach("S.B1.00", on_event=lambda e, s: seen.append(s))
            pub = harness.attach("P1")
            harness.clients[0].subscribe_and_wait("*")
            harness.settle()
            pub.publish({"a1": 0, "a2": 0})
            harness.settle()
        assert seen == [1]


class TestRestart:
    def test_restart_broker_resyncs_and_routes(self):
        with InMemoryBrokerHarness.for_chain(3, SCHEMA) as harness:
            subscriber = harness.attach("S.B2.00")
            pub = harness.attach("P1")
            subscriber.subscribe_and_wait("a1=1")
            harness.settle()
            old_node = harness.nodes["B1"]
            replacement = harness.restart_broker("B1")
            assert replacement is not old_node
            assert replacement.subscription_count == 1  # resynced
            pub.publish({"a1": 1, "a2": 0})
            harness.settle()
            assert len(subscriber.received_events) == 1

    def test_restart_with_persistent_logs(self, tmp_path):
        with InMemoryBrokerHarness.for_chain(
            2, SCHEMA, log_directory=str(tmp_path)
        ) as harness:
            subscriber = harness.attach("S.B1.00")
            pub = harness.attach("P1")
            subscriber.subscribe_and_wait("*")
            harness.settle()
            pub.publish({"a1": 0, "a2": 0})
            harness.settle()
            subscriber.drop_connection()
            harness.settle()
            pub.publish({"a1": 1, "a2": 1})
            harness.settle()
            harness.restart_broker("B1", log_directory=str(tmp_path))
            subscriber.connect(resume=True)
            harness.settle()
            assert len(subscriber.received_events) == 2
