"""Regression: engine link caches must be flushed when a repair changes the
virtual-link layout.

CompiledEngine caches link-match results keyed by (projection, yes-mask,
maybe-mask); ShardedEngine keeps per-shard outer caches.  After a topology
repair changes which destination sits behind which link position, the same
packed mask bits denote *different* links — a stale cache hit would route
events to the pre-failure destinations.  ``ContentRouter.rebuild_links``
must therefore rebind the engine (flushing those caches) exactly when the
layout changed, and must keep warm caches when it did not.
"""

from __future__ import annotations

import pytest

from repro.core.router import ContentRouter
from repro.matching import Event, Subscription, parse_predicate, uniform_schema
from repro.network.paths import RoutingTable
from repro.network.spanning import SpanningTree
from repro.network.topology import NodeKind, Topology

SCHEMA = uniform_schema(2)
DOMAINS = {"a1": [0, 1], "a2": [0, 1]}
ROOT = "B0"


def build_topology() -> Topology:
    """B0-B1-B2-B3 chain with a B1-B3 lateral; subscriber behind each tail
    broker.  Failing B1-B2 re-parents B2 under B3 via the lateral, which
    reverses which of B1's links reaches which subscriber."""
    topology = Topology()
    for i in range(4):
        topology.add_broker(f"B{i}")
    for i in range(3):
        topology.add_link(f"B{i}", f"B{i + 1}", latency_ms=10.0)
    topology.add_link("B1", "B3", latency_ms=25.0)
    topology.add_client("P1", "B0", kind=NodeKind.PUBLISHER)
    topology.add_client("S2", "B2")
    topology.add_client("S3", "B3")
    return topology


def build_router(topology, table, trees, engine):
    router = ContentRouter(
        topology,
        "B1",
        table,
        trees,
        SCHEMA,
        domains=DOMAINS,
        engine=engine,
        shards=2 if engine == "sharded" else None,
    )
    router.add_subscription(Subscription(parse_predicate(SCHEMA, "a1=0"), "S2"))
    router.add_subscription(Subscription(parse_predicate(SCHEMA, "a1=1"), "S3"))
    return router


EVENTS = [Event.from_tuple(SCHEMA, (0, 0)), Event.from_tuple(SCHEMA, (1, 0))]


@pytest.mark.parametrize("engine", ["compiled", "sharded"])
def test_stale_link_cache_flushed_after_failover(engine):
    topology = build_topology()
    tree = SpanningTree(topology, ROOT)
    table = RoutingTable(topology, "B1")
    router = build_router(topology, table, {ROOT: tree}, engine)

    # Warm the link cache: every domain event routed once.
    before = {e.as_tuple(): router.route(e, ROOT).forward_to for e in EVENTS}
    assert before[(0, 0)] == ["B2"]
    assert before[(1, 0)] == ["B2"]  # S3 also sits behind B2 when healthy

    topology.remove_link("B1", "B2")
    tree.repair()
    table.repair()
    changed = router.rebuild_links(table, {ROOT: tree})
    assert changed, "layout must be reported as changed"

    # The same projections now hit the repaired layout: both subscribers
    # hang off the lateral to B3.  A stale cache would keep saying B2.
    fresh_tree = SpanningTree(topology, ROOT, partial=True)
    fresh_router = build_router(
        topology, RoutingTable(topology, "B1"), {ROOT: fresh_tree}, engine
    )
    for event in EVENTS:
        repaired = router.route(event, ROOT)
        fresh = fresh_router.route(event, ROOT)
        assert repaired.forward_to == fresh.forward_to == ["B3"]
        assert repaired.deliver_to == fresh.deliver_to
        assert str(repaired.mask) == str(fresh.mask)


@pytest.mark.parametrize("engine", ["compiled", "sharded"])
def test_unchanged_layout_keeps_warm_caches(engine):
    """Failing a link the layout never used must not flush anything."""
    topology = build_topology()
    tree = SpanningTree(topology, ROOT)
    table = RoutingTable(topology, "B1")
    router = build_router(topology, table, {ROOT: tree}, engine)
    before = {e.as_tuple(): router.route(e, ROOT).forward_to for e in EVENTS}

    # The lateral is not on any shortest path while the chain is healthy.
    topology.remove_link("B1", "B3")
    tree.repair()
    table.repair()
    assert router.rebuild_links(table, {ROOT: tree}) is False
    for event in EVENTS:
        assert router.route(event, ROOT).forward_to == before[event.as_tuple()]
