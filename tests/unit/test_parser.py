"""Unit tests for the subscription expression parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.matching import (
    DONT_CARE,
    EqualityTest,
    Event,
    IntervalTest,
    RangeOp,
    RangeTest,
    parse_predicate,
    tokenize,
)
from repro.matching.parser import TokenType


class TestTokenizer:
    def test_paper_example(self):
        tokens = tokenize("issue=\"IBM\" & price < 120 & volume > 1000")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.NAME, TokenType.OPERATOR, TokenType.STRING, TokenType.AND,
            TokenType.NAME, TokenType.OPERATOR, TokenType.NUMBER, TokenType.AND,
            TokenType.NAME, TokenType.OPERATOR, TokenType.NUMBER, TokenType.END,
        ]

    def test_single_and_double_quotes(self):
        assert tokenize("x='a'")[2].value == "a"
        assert tokenize('x="a"')[2].value == "a"

    def test_string_escapes(self):
        assert tokenize(r"x='a\'b'")[2].value == "a'b"
        assert tokenize(r"x='a\nb'")[2].value == "a\nb"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("x='abc")

    def test_numbers(self):
        assert tokenize("x=42")[2].value == 42
        assert tokenize("x=4.5")[2].value == 4.5
        assert tokenize("x=-3")[2].value == -3
        assert tokenize("x=1e3")[2].value == 1000.0

    def test_booleans(self):
        assert tokenize("x=true")[2].value is True
        assert tokenize("x=false")[2].value is False

    def test_and_keyword_and_ampersands(self):
        for text in ("a=1 & b=2", "a=1 && b=2", "a=1 and b=2", "a=1 AND b=2"):
            kinds = [t.type for t in tokenize(text)]
            assert kinds.count(TokenType.AND) == 1

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("a=1 | b=2")
        assert info.value.position == 4

    def test_operators(self):
        for symbol in ("<", "<=", ">", ">=", "=", "==", "!="):
            token = tokenize(f"a{symbol}1")[1]
            assert token.type is TokenType.OPERATOR
            assert token.value == symbol


class TestParsePredicate:
    def test_paper_example(self, stock_schema):
        predicate = parse_predicate(
            stock_schema, "issue='IBM' & price<120 & volume>1000"
        )
        assert predicate.test_for("issue") == EqualityTest("IBM")
        assert predicate.test_for("price") == RangeTest(RangeOp.LT, 120)
        assert predicate.test_for("volume") == RangeTest(RangeOp.GT, 1000)

    def test_empty_and_star_are_match_all(self, stock_schema, ibm_event):
        for text in ("", "   ", "*"):
            predicate = parse_predicate(stock_schema, text)
            assert predicate.matches(ibm_event)
            assert predicate.num_dont_cares == 3

    def test_explicit_star_clause(self, stock_schema):
        predicate = parse_predicate(stock_schema, "issue=* & volume>10")
        assert predicate.test_for("issue") is DONT_CARE

    def test_star_requires_equality(self, stock_schema):
        with pytest.raises(ParseError):
            parse_predicate(stock_schema, "price<*")

    def test_double_equals(self, stock_schema):
        predicate = parse_predicate(stock_schema, "issue=='IBM'")
        assert predicate.test_for("issue") == EqualityTest("IBM")

    def test_unknown_attribute(self, stock_schema):
        with pytest.raises(ParseError, match="unknown attribute"):
            parse_predicate(stock_schema, "nope=1")

    def test_parenthesized_expression(self, stock_schema):
        predicate = parse_predicate(stock_schema, "(issue='IBM') & (price<120)")
        assert predicate.test_for("issue") == EqualityTest("IBM")

    def test_repeated_ranges_normalize(self, stock_schema):
        predicate = parse_predicate(stock_schema, "price>100 & price<120")
        test = predicate.test_for("price")
        assert isinstance(test, IntervalTest)
        assert test.evaluate(110) and not test.evaluate(120)

    def test_trailing_garbage(self, stock_schema):
        with pytest.raises(ParseError):
            parse_predicate(stock_schema, "price<120 volume>3")

    def test_missing_value(self, stock_schema):
        with pytest.raises(ParseError):
            parse_predicate(stock_schema, "price<")

    def test_missing_operator(self, stock_schema):
        with pytest.raises(ParseError):
            parse_predicate(stock_schema, "price 120")

    def test_value_must_be_literal(self, stock_schema):
        with pytest.raises(ParseError):
            parse_predicate(stock_schema, "price<volume")

    def test_unbalanced_paren(self, stock_schema):
        with pytest.raises(ParseError):
            parse_predicate(stock_schema, "(price<120")

    def test_semantics_match_python(self, stock_schema):
        predicate = parse_predicate(stock_schema, "price>=100 & price<=120 & issue!='X'")
        good = Event(stock_schema, {"issue": "IBM", "price": 100.0, "volume": 1})
        bad_price = Event(stock_schema, {"issue": "IBM", "price": 99.0, "volume": 1})
        bad_issue = Event(stock_schema, {"issue": "X", "price": 110.0, "volume": 1})
        assert predicate.matches(good)
        assert not predicate.matches(bad_price)
        assert not predicate.matches(bad_issue)

    def test_integer_schema_values(self, schema5):
        predicate = parse_predicate(schema5, "a1=1 & a2=2 & a3=3 & a5=3")
        assert predicate.matches(Event.from_tuple(schema5, (1, 2, 3, 99, 3)))
        assert not predicate.matches(Event.from_tuple(schema5, (1, 2, 3, 99, 4)))
