"""Unit tests for the prototype broker's matching engine."""

from __future__ import annotations

import pytest

from repro.broker import MatchingEngine
from repro.errors import ParseError, SubscriptionError
from repro.matching import CompiledEngine, Event, FactoredMatcher, TreeEngine


class TestSubscriptionManager:
    def test_add_from_expression(self, stock_schema):
        engine = MatchingEngine(stock_schema)
        subscription = engine.add_subscription("alice", "issue='IBM'")
        assert subscription.subscriber == "alice"
        assert engine.subscription_count == 1

    def test_add_from_predicate(self, stock_schema):
        from repro.matching import Predicate

        engine = MatchingEngine(stock_schema)
        engine.add_subscription("alice", Predicate.from_values(stock_schema, issue="IBM"))
        assert engine.subscription_count == 1

    def test_bad_expression_raises(self, stock_schema):
        engine = MatchingEngine(stock_schema)
        with pytest.raises(ParseError):
            engine.add_subscription("alice", "nonsense ===")

    def test_explicit_subscription_id(self, stock_schema):
        engine = MatchingEngine(stock_schema)
        subscription = engine.add_subscription("alice", "*", subscription_id=42)
        assert subscription.subscription_id == 42

    def test_remove(self, stock_schema):
        engine = MatchingEngine(stock_schema)
        subscription = engine.add_subscription("alice", "issue='IBM'")
        engine.remove_subscription(subscription.subscription_id)
        assert engine.subscription_count == 0
        with pytest.raises(SubscriptionError):
            engine.remove_subscription(subscription.subscription_id)


class TestEventParser:
    def test_match_data_pipeline(self, stock_schema, ibm_event):
        engine = MatchingEngine(stock_schema)
        engine.add_subscription("alice", "issue='IBM' & price<120")
        engine.add_subscription("bob", "volume>5000")
        data = engine.encode_event(ibm_event)
        result = engine.match_data(data, publisher="P1")
        assert {s.subscriber for s in result.subscriptions} == {"alice"}

    def test_parse_event_applies_publisher(self, stock_schema, ibm_event):
        engine = MatchingEngine(stock_schema)
        parsed = engine.parse_event(engine.encode_event(ibm_event), publisher="P9")
        assert parsed.publisher == "P9"
        assert parsed == ibm_event


class TestMatcherSelection:
    def test_default_is_compiled_engine(self, stock_schema):
        assert isinstance(MatchingEngine(stock_schema).matcher, CompiledEngine)

    def test_tree_engine_selectable(self, stock_schema):
        assert isinstance(MatchingEngine(stock_schema, engine="tree").matcher, TreeEngine)

    def test_unknown_engine_rejected(self, stock_schema):
        with pytest.raises(SubscriptionError):
            MatchingEngine(stock_schema, engine="jit")

    def test_factoring_selects_factored_matcher(self, schema5):
        engine = MatchingEngine(
            schema5,
            domains={f"a{i}": [0, 1, 2] for i in range(1, 6)},
            factoring_attributes=["a1"],
        )
        assert isinstance(engine.matcher, FactoredMatcher)

    def test_factoring_without_domains_rejected(self, schema5):
        with pytest.raises(SubscriptionError):
            MatchingEngine(schema5, factoring_attributes=["a1"])

    def test_attribute_order_respected(self, schema5):
        engine = MatchingEngine(
            schema5, attribute_order=["a5", "a4", "a3", "a2", "a1"]
        )
        engine.add_subscription("alice", "a5=1")
        assert engine.match(Event.from_tuple(schema5, (0, 0, 0, 0, 1))).subscribers == {
            "alice"
        }
