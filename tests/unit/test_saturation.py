"""Unit tests for the saturation-rate search (driving Chart 1)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import SimulationResult, find_saturation_rate


def fake_probe(threshold: float):
    """A probe that 'overloads' at rates above ``threshold``."""

    def probe(rate: float) -> SimulationResult:
        return SimulationResult(
            elapsed_ticks=1000,
            broker_stats={},
            link_messages={},
            deliveries=[],
            published_events=0,
            aborted_overloaded=rate > threshold,
        )

    return probe


class TestSearch:
    def test_finds_threshold(self):
        result = find_saturation_rate(fake_probe(3000.0), initial_rate=100.0)
        assert result.highest_ok_rate <= 3000.0 <= result.lowest_overloaded_rate
        assert (
            result.lowest_overloaded_rate / result.highest_ok_rate
            <= 1.15 + 1e-9
        )

    def test_saturation_rate_within_bracket(self):
        result = find_saturation_rate(fake_probe(777.0), initial_rate=50.0)
        assert result.highest_ok_rate <= result.saturation_rate
        assert result.saturation_rate <= result.lowest_overloaded_rate

    def test_probes_recorded(self):
        result = find_saturation_rate(fake_probe(1000.0), initial_rate=100.0)
        assert len(result.probes) >= 3
        rates = [rate for rate, _overloaded in result.probes]
        assert len(set(rates)) == len(rates)  # no repeated probes

    def test_overloaded_at_initial_rate_bisects_down(self):
        result = find_saturation_rate(fake_probe(80.0), initial_rate=500.0)
        assert result.highest_ok_rate <= 80.0 <= result.lowest_overloaded_rate

    def test_never_overloads_raises(self):
        with pytest.raises(SimulationError):
            find_saturation_rate(
                fake_probe(float("inf")), initial_rate=100.0, max_rate=10_000.0
            )

    def test_always_overloaded_raises(self):
        with pytest.raises(SimulationError):
            find_saturation_rate(fake_probe(0.0), initial_rate=100.0)

    def test_invalid_initial_rate(self):
        with pytest.raises(SimulationError):
            find_saturation_rate(fake_probe(10.0), initial_rate=0.0)

    def test_custom_resolution(self):
        result = find_saturation_rate(
            fake_probe(1000.0), initial_rate=10.0, relative_resolution=0.5
        )
        assert result.lowest_overloaded_rate / result.highest_ok_rate <= 1.5 + 1e-9
