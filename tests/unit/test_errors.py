"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for name in dir(errors):
            item = getattr(errors, name)
            if (
                isinstance(item, type)
                and issubclass(item, Exception)
                and item is not errors.ReproError
            ):
                assert issubclass(item, errors.ReproError), name

    def test_subsystem_families(self):
        assert issubclass(errors.ParseError, errors.PredicateError)
        assert issubclass(errors.CodecError, errors.ProtocolError)
        assert issubclass(errors.ConnectionClosedError, errors.TransportError)

    def test_parse_error_carries_position(self):
        error = errors.ParseError("bad", position=7)
        assert error.position == 7
        assert errors.ParseError("bad").position == -1

    def test_catching_the_base_class_works_end_to_end(self):
        from repro.matching import parse_predicate, stock_trade_schema

        with pytest.raises(errors.ReproError):
            parse_predicate(stock_trade_schema(), "not ] a predicate")

    def test_request_failed_is_protocol_error(self):
        from repro.broker import RequestFailed

        assert issubclass(RequestFailed, errors.ProtocolError)
