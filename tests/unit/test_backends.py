"""Unit tests for the kernel-backend axis and its failure modes.

Covers the registry surface (:mod:`repro.matching.backends`), how
``backend=`` threads through :func:`create_engine`, generation-keyed
backend scratch on :class:`CompiledProgram`, the sharded engine's
worker-exception propagation (threads and processes), and procpool
worker-death reporting.
"""

from __future__ import annotations

import pytest

from repro.errors import SubscriptionError
from repro.matching import Event, Predicate, Subscription, uniform_schema
from repro.matching.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    KERNEL_BACKEND_NAMES,
    create_backend,
    validate_backend,
)
from repro.matching.backends.procpool import ProcPoolError, ProcPoolExecutor
from repro.matching.backends.vector import VectorBackend
from repro.matching.engines import CompiledEngine, create_engine
from repro.matching.predicates import EqualityTest
from repro.matching.sharding import ShardedEngine

SCHEMA = uniform_schema(3)
DOMAINS = {name: [0, 1, 2] for name in SCHEMA.names}


def sub(value, subscriber="s0"):
    tests = {SCHEMA.names[0]: EqualityTest(value)}
    return Subscription(Predicate(SCHEMA, tests), subscriber)


def event(values=(0, 0, 0)):
    return Event.from_tuple(SCHEMA, values)


class TestRegistry:
    def test_names(self):
        assert BACKEND_NAMES == ("interp", "vector", "procpool")
        assert KERNEL_BACKEND_NAMES == ("interp", "vector")
        assert DEFAULT_BACKEND in KERNEL_BACKEND_NAMES

    def test_validate(self):
        assert validate_backend("vector") == "vector"
        with pytest.raises(SubscriptionError, match="unknown kernel backend"):
            validate_backend("jit")

    def test_singletons(self):
        for name in KERNEL_BACKEND_NAMES:
            backend = create_backend(name)
            assert backend.name == name
            assert create_backend(name) is backend

    def test_procpool_is_not_an_in_process_kernel(self):
        with pytest.raises(SubscriptionError, match="sharded"):
            create_backend("procpool")


class TestEngineWiring:
    def test_compiled_backend_name(self):
        assert CompiledEngine(SCHEMA).backend_name == DEFAULT_BACKEND
        engine = CompiledEngine(SCHEMA, backend="vector")
        assert engine.backend_name == "vector"
        # A backend *instance* is accepted as-is (used by the property
        # suite to pin the forced zero-dependency vector path).
        forced = CompiledEngine(SCHEMA, backend=VectorBackend(force_fallback=True))
        assert forced.backend_name == "vector"

    def test_create_engine_validates_backend(self):
        with pytest.raises(SubscriptionError, match="unknown kernel backend"):
            create_engine("compiled", SCHEMA, backend="jit")

    def test_create_engine_compiled_rejects_procpool(self):
        with pytest.raises(SubscriptionError, match="sharded"):
            create_engine("compiled", SCHEMA, backend="procpool")

    def test_create_engine_tree_rejects_non_default_backend(self):
        with pytest.raises(SubscriptionError, match="tree"):
            create_engine("tree", SCHEMA, backend="vector")
        # The default backend is the tree engine's own semantics.
        create_engine("tree", SCHEMA, backend=DEFAULT_BACKEND)

    def test_sharded_backend_name(self):
        engine = ShardedEngine(SCHEMA, num_shards=2, backend="vector")
        assert engine.backend_name == "vector"
        assert "backend='vector'" in repr(engine)
        default = ShardedEngine(SCHEMA, num_shards=2)
        assert default.backend_name == DEFAULT_BACKEND


class TestGenerationScratch:
    def test_patch_bumps_generation_and_drops_backend_state(self):
        engine = CompiledEngine(SCHEMA, domains=DOMAINS, backend="vector")
        engine.insert(sub(0))
        program = engine.program
        # Two distinct events: single-event batches take the single-match
        # path and never touch the batched kernel's columnar index.
        engine.match_batch([event((0, 0, 0)), event((1, 1, 1))])
        assert program.backend_state  # columnar index built lazily
        generation = program.generation
        engine.insert(sub(1))
        assert program.generation > generation
        assert not program.backend_state

    def test_annotate_bumps_generation(self):
        engine = CompiledEngine(SCHEMA, domains=DOMAINS, backend="vector")
        engine.insert(sub(0))
        program = engine.program
        engine.match_batch([event((0, 0, 0)), event((1, 1, 1))])
        assert program.backend_state
        generation = program.generation
        # Annotation rewrites the leaf mask arrays in place — stale
        # backend scratch must go with it.
        program.annotate(2, lambda subscription: 0)
        assert program.generation > generation
        assert not program.backend_state


class TestShardWorkerFailures:
    def test_thread_worker_exception_propagates_with_shard_context(self):
        """A raising shard task surfaces its original exception type,
        annotated with the shard index (regression: workers>0 used to
        swallow the context behind pool plumbing)."""
        engine = ShardedEngine(SCHEMA, num_shards=2, workers=2)
        engine.insert(sub(0))
        foreign = Event.from_tuple(uniform_schema(5), (0, 0, 0, 0, 0))
        with pytest.raises(SubscriptionError) as excinfo:
            engine.match(foreign)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("worker task for shard" in note for note in notes)

    def test_serial_path_raises_unannotated(self):
        engine = ShardedEngine(SCHEMA, num_shards=2, workers=0)
        foreign = Event.from_tuple(uniform_schema(5), (0, 0, 0, 0, 0))
        with pytest.raises(SubscriptionError):
            engine.match(foreign)


class TestProcPoolFailures:
    def test_worker_execution_error_reports_traceback(self):
        engine = ShardedEngine(
            SCHEMA, num_shards=1, match_cache_capacity=0, backend="procpool"
        )
        try:
            engine.insert(sub(0))
            # Warm the pool and the publication, then hand the executor a
            # bogus op directly: the worker must answer ("err", traceback)
            # and the parent must surface it as ProcPoolError.
            engine.match_batch([event()])
            executor = engine._procpool
            publication = executor.publish(0, engine._shards[0].program)
            with pytest.raises(ProcPoolError, match="raised while matching"):
                executor.run(
                    [(0, publication.name, publication.size, "bogus", ())]
                )
            # The worker keeps serving after reporting the error.
            assert engine.match_batch([event()])[0].subscriptions
        finally:
            engine.close()

    def test_worker_death_raises_procpool_error(self):
        engine = ShardedEngine(
            SCHEMA, num_shards=1, match_cache_capacity=0, backend="procpool"
        )
        try:
            engine.insert(sub(0))
            engine.match_batch([event()])
            [(process, _conn)] = engine._procpool._workers
            process.kill()
            process.join(timeout=10)
            with pytest.raises(ProcPoolError, match="died"):
                engine.match_batch([event((1, 1, 1))])
        finally:
            engine.close()

    def test_closed_engine_falls_back_to_serial(self):
        engine = ShardedEngine(
            SCHEMA, num_shards=2, match_cache_capacity=0, backend="procpool"
        )
        engine.insert(sub(0))
        before = engine.match_batch([event()])
        engine.close()
        after = engine.match_batch([event()])
        assert [r.subscriptions for r in after] == [r.subscriptions for r in before]

    def test_executor_close_is_idempotent(self):
        executor = ProcPoolExecutor(1)
        executor.close()
        executor.close()


class TestPackedImage:
    def test_pack_unpack_round_trip(self):
        """The packed payload reconstructs the full record surface: node
        structure, interned values, range tests, leaf subscription ids, and
        in-place annotation masks."""
        from repro.core import M, TritVector
        from repro.matching.backends.procpool import pack_image, unpack_image
        from repro.matching.predicates import RangeOp, RangeTest

        engine = CompiledEngine(SCHEMA, domains=DOMAINS, match_cache_capacity=0)
        for i in range(6):
            tests = {SCHEMA.names[0]: EqualityTest(i % 3)}
            if i % 2:
                tests[SCHEMA.names[1]] = RangeTest(RangeOp.LE, 1)
            engine.insert(Subscription(Predicate(SCHEMA, tests), f"s{i % 3}"))
        engine.bind_links(3, lambda s: int(s.subscriber[1:]))
        engine.match_links(event(), TritVector([M, M, M]))  # compile + annotate
        program = engine.program

        payload = pack_image(program)
        image = unpack_image(payload, len(payload))
        try:
            # A publication is immutable, so the worker-side generation
            # restarts at zero; the parent keys publications by the live
            # program's generation instead.
            assert image.generation == 0
            assert image.value_ids == program.value_ids
            assert list(image.ann_yes) == list(program.ann_yes)
            assert list(image.ann_maybe) == list(program.ann_maybe)
            assert len(image._records) == len(program._records)
            for theirs, ours in zip(program._records, image._records):
                position, table, ranges, star, leaf_subs = theirs
                image_position, image_table, image_ranges, image_star, image_subs = ours
                assert image_position == position
                assert image_star == star
                assert (image_table or None) == (table or None)
                if ranges is None:
                    assert image_ranges is None
                else:
                    assert tuple(image_ranges) == tuple(ranges)
                if leaf_subs is None:
                    assert image_subs is None
                else:
                    # Workers see subscription *ids*; the parent maps back.
                    assert list(image_subs) == [
                        s.subscription_id for s in leaf_subs
                    ]
        finally:
            image.release()
