"""Unit tests for the per-broker content router."""

from __future__ import annotations

import pytest

from repro.core import ContentRouter
from repro.errors import RoutingError
from repro.matching import Event
from repro.network import RoutingTable, spanning_trees_for_publishers
from tests.conftest import make_subscription

DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 6)}


def router_for(topology, broker, schema, **kwargs) -> ContentRouter:
    return ContentRouter(
        topology,
        broker,
        RoutingTable(topology, broker),
        spanning_trees_for_publishers(topology),
        schema,
        **kwargs,
    )


class TestSubscriptions:
    def test_add_and_count(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        router.add_subscription(make_subscription(schema5, "a1=1", "c0"))
        assert router.subscription_count == 1

    def test_unknown_subscriber_rejected_early(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        with pytest.raises(RoutingError):
            router.add_subscription(make_subscription(schema5, "a1=1", "stranger"))

    def test_remove(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        sub = make_subscription(schema5, "a1=1", "c0")
        router.add_subscription(sub)
        router.remove_subscription(sub.subscription_id)
        assert router.subscription_count == 0


class TestRouting:
    def test_delivers_to_local_client(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        router.add_subscription(make_subscription(schema5, "a1=1", "c0"))
        decision = router.route(Event.from_tuple(schema5, (1, 0, 0, 0, 0)), "B0")
        assert decision.deliver_to == ["c0"]
        assert decision.forward_to == []

    def test_forwards_to_remote_broker(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        router.add_subscription(make_subscription(schema5, "a1=1", "c1"))
        decision = router.route(Event.from_tuple(schema5, (1, 0, 0, 0, 0)), "B0")
        assert decision.forward_to == ["B1"]
        assert decision.deliver_to == []

    def test_non_matching_event_goes_nowhere(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        router.add_subscription(make_subscription(schema5, "a1=1", "c1"))
        decision = router.route(Event.from_tuple(schema5, (2, 0, 0, 0, 0)), "B0")
        assert decision.forward_to == [] and decision.deliver_to == []

    def test_annotations_refresh_after_subscribe(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        event = Event.from_tuple(schema5, (1, 0, 0, 0, 0))
        assert router.route(event, "B0").deliver_to == []
        router.add_subscription(make_subscription(schema5, "a1=1", "c0"))
        assert router.route(event, "B0").deliver_to == ["c0"]

    def test_annotations_refresh_after_unsubscribe(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        sub = make_subscription(schema5, "a1=1", "c0")
        router.add_subscription(sub)
        event = Event.from_tuple(schema5, (1, 0, 0, 0, 0))
        assert router.route(event, "B0").deliver_to == ["c0"]
        router.remove_subscription(sub.subscription_id)
        assert router.route(event, "B0").deliver_to == []

    def test_unknown_tree_root(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        with pytest.raises(RoutingError):
            router.route(Event.from_tuple(schema5, (1, 0, 0, 0, 0)), "B1")

    def test_steps_reported(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        router.add_subscription(make_subscription(schema5, "a1=1", "c0"))
        decision = router.route(Event.from_tuple(schema5, (1, 0, 0, 0, 0)), "B0")
        assert decision.steps >= 1


class TestFactoredRouter:
    def test_factored_routing_matches_plain(self, two_broker_topology, schema5):
        plain = router_for(two_broker_topology, "B0", schema5, domains=DOMAINS)
        factored = router_for(
            two_broker_topology,
            "B0",
            schema5,
            domains=DOMAINS,
            factoring_attributes=["a1"],
        )
        import random

        rng = random.Random(11)
        for i in range(60):
            tests = [
                f"a{j}={rng.randrange(3)}" for j in range(1, 6) if rng.random() < 0.5
            ]
            expression = " & ".join(tests) if tests else "*"
            subscriber = rng.choice(["c0", "c1"])
            plain.add_subscription(make_subscription(schema5, expression, subscriber))
            factored.add_subscription(make_subscription(schema5, expression, subscriber))
        for _ in range(100):
            event = Event.from_tuple(schema5, tuple(rng.randrange(3) for _ in range(5)))
            a = plain.route(event, "B0")
            b = factored.route(event, "B0")
            assert (a.forward_to, a.deliver_to) == (b.forward_to, b.deliver_to)

    def test_factoring_requires_domains(self, two_broker_topology, schema5):
        with pytest.raises(RoutingError):
            router_for(
                two_broker_topology, "B0", schema5, factoring_attributes=["a1"]
            )

    def test_local_matching(self, two_broker_topology, schema5):
        router = router_for(two_broker_topology, "B0", schema5)
        router.add_subscription(make_subscription(schema5, "a1=1", "c0"))
        router.add_subscription(make_subscription(schema5, "a1=1", "c1"))
        result = router.match_locally(Event.from_tuple(schema5, (1, 0, 0, 0, 0)))
        assert {s.subscriber for s in result.subscriptions} == {"c0", "c1"}
