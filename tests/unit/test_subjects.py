"""Unit tests for the subject-based adapter."""

from __future__ import annotations

import pytest

from repro.core import ContentRoutedNetwork
from repro.errors import SchemaError, SubscriptionError
from repro.matching import uniform_schema
from repro.network import NodeKind, Topology
from repro.subjects import SUBJECT_ATTRIBUTE, SubjectAdapter, subject_schema

SUBJECTS = ["nyse.ibm", "nyse.msft", "nasdaq.intc"]


def build_network(factored: bool = False):
    schema = subject_schema([("price", "dollar"), ("volume", "integer")])
    topology = Topology()
    topology.add_broker("B0")
    topology.add_broker("B1")
    topology.add_link("B0", "B1", latency_ms=10.0)
    topology.add_client("alice", "B0")
    topology.add_client("bob", "B1")
    topology.add_client("ticker", "B0", kind=NodeKind.PUBLISHER)
    kwargs = {}
    if factored:
        kwargs = {
            "domains": {SUBJECT_ATTRIBUTE: SUBJECTS},
            "factoring_attributes": [SUBJECT_ATTRIBUTE],
        }
    return ContentRoutedNetwork(topology, schema, **kwargs)


class TestSubjectSchema:
    def test_subject_comes_first(self):
        schema = subject_schema([("x", "integer")])
        assert schema.names == ("subject", "x")

    def test_duplicate_subject_rejected(self):
        with pytest.raises(SchemaError):
            subject_schema([("subject", "string")])

    def test_adapter_requires_subject_attribute(self, two_broker_topology):
        network = ContentRoutedNetwork(two_broker_topology, uniform_schema(2))
        with pytest.raises(SchemaError):
            SubjectAdapter(network)


class TestMembership:
    def test_subscribe_and_membership_views(self):
        adapter = SubjectAdapter(build_network())
        adapter.subscribe("alice", "nyse.ibm")
        adapter.subscribe("bob", "nyse.ibm")
        adapter.subscribe("bob", "nyse.msft")
        assert adapter.members_of("nyse.ibm") == ["alice", "bob"]
        assert adapter.subjects_of("bob") == ["nyse.ibm", "nyse.msft"]

    def test_unsubscribe(self):
        adapter = SubjectAdapter(build_network())
        adapter.subscribe("alice", "nyse.ibm")
        adapter.unsubscribe("alice", "nyse.ibm")
        assert adapter.members_of("nyse.ibm") == []
        with pytest.raises(SubscriptionError):
            adapter.unsubscribe("alice", "nyse.ibm")

    def test_double_join_needs_double_leave(self):
        adapter = SubjectAdapter(build_network())
        adapter.subscribe("alice", "nyse.ibm")
        adapter.subscribe("alice", "nyse.ibm")
        adapter.unsubscribe("alice", "nyse.ibm")
        assert adapter.members_of("nyse.ibm") == ["alice"]


class TestDelivery:
    def test_events_reach_exactly_the_subject_members(self):
        adapter = SubjectAdapter(build_network())
        adapter.subscribe("alice", "nyse.ibm")
        adapter.subscribe("bob", "nyse.msft")
        trace = adapter.publish("ticker", "nyse.ibm", price=119.0, volume=100)
        assert trace.delivered_clients == {"alice"}
        trace = adapter.publish("ticker", "nyse.msft", price=50.0, volume=100)
        assert trace.delivered_clients == {"bob"}
        trace = adapter.publish("ticker", "nasdaq.intc", price=30.0, volume=100)
        assert trace.delivered_clients == set()

    def test_subject_dispatch_with_factoring_is_table_lookup(self):
        """With the subject factored, matching an event is the paper's
        subject-based "mere table lookup": one step for the index plus a
        trivial residual tree."""
        adapter = SubjectAdapter(build_network(factored=True))
        adapter.subscribe("alice", "nyse.ibm")
        trace = adapter.publish("ticker", "nyse.ibm", price=1.0, volume=1)
        assert trace.delivered_clients == {"alice"}
        publishing_broker_steps = trace.broker_steps["B0"]
        assert publishing_broker_steps <= 3

    def test_content_and_subject_subscriptions_coexist(self):
        network = build_network()
        adapter = SubjectAdapter(network)
        adapter.subscribe("alice", "nyse.ibm")
        # Bob uses the *content-based* superpower on the same space: an
        # orthogonal filter no subject-based system could express.
        network.subscribe("bob", "volume>1000")
        trace = adapter.publish("ticker", "nyse.ibm", price=1.0, volume=5000)
        assert trace.delivered_clients == {"alice", "bob"}
        trace = adapter.publish("ticker", "nasdaq.intc", price=1.0, volume=5000)
        assert trace.delivered_clients == {"bob"}
