"""Unit tests for workload specs and generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.workload import (
    CHART1_SPEC,
    CHART2_SPEC,
    EventGenerator,
    SubscriptionGenerator,
    WorkloadSpec,
    ZipfSampler,
    figure6_region_of,
    measure_selectivity,
    rotated,
)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(list(range(5)))
        total = sum(sampler.probability_of_rank(r) for r in range(1, 6))
        assert abs(total - 1.0) < 1e-12

    def test_rank_one_most_likely(self):
        sampler = ZipfSampler(["hot", "warm", "cold"])
        assert sampler.probability_of_rank(1) > sampler.probability_of_rank(2)
        assert sampler.probability_of_rank(2) > sampler.probability_of_rank(3)

    def test_empirical_frequencies_track_zipf(self):
        sampler = ZipfSampler(list(range(5)), exponent=1.0)
        rng = random.Random(7)
        counts = [0] * 5
        draws = 20_000
        for _ in range(draws):
            counts[sampler.sample(rng)] += 1
        for rank in range(1, 6):
            expected = sampler.probability_of_rank(rank)
            observed = counts[rank - 1] / draws
            assert abs(observed - expected) < 0.02

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler([0, 1], exponent=0.0)
        assert abs(sampler.probability_of_rank(1) - 0.5) < 1e-12

    def test_collision_probability(self):
        sampler = ZipfSampler(list(range(5)))
        by_hand = sum(sampler.probability_of_rank(r) ** 2 for r in range(1, 6))
        assert abs(sampler.collision_probability - by_hand) < 1e-12

    def test_rejects_empty_values(self):
        with pytest.raises(SimulationError):
            ZipfSampler([])

    def test_rotated(self):
        assert rotated([1, 2, 3, 4], 1) == [2, 3, 4, 1]
        assert rotated([1, 2, 3], 0) == [1, 2, 3]
        assert rotated([1, 2, 3], 5) == [3, 1, 2]
        assert rotated([], 3) == []


class TestWorkloadSpec:
    def test_chart1_parameters_match_paper(self):
        assert CHART1_SPEC.num_attributes == 10
        assert CHART1_SPEC.values_per_attribute == 5
        assert CHART1_SPEC.factoring_levels == 2
        assert CHART1_SPEC.first_non_star_probability == 0.98
        assert CHART1_SPEC.non_star_decay == 0.85

    def test_chart2_parameters_match_paper(self):
        assert CHART2_SPEC.values_per_attribute == 3
        assert CHART2_SPEC.factoring_levels == 3
        assert CHART2_SPEC.non_star_decay == 0.82

    def test_non_star_schedule_is_geometric(self):
        spec = CHART1_SPEC
        assert spec.non_star_probability(0) == pytest.approx(0.98)
        assert spec.non_star_probability(1) == pytest.approx(0.98 * 0.85)
        assert spec.non_star_probability(9) == pytest.approx(0.98 * 0.85**9)

    def test_schema_and_domains(self):
        spec = WorkloadSpec(num_attributes=4, values_per_attribute=3)
        schema = spec.schema()
        assert schema.names == ("a1", "a2", "a3", "a4")
        assert spec.domains() == {name: [0, 1, 2] for name in schema.names}

    def test_factoring_attributes_are_first(self):
        assert CHART1_SPEC.factoring_attributes == ["a1", "a2"]

    def test_invalid_specs_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadSpec(num_attributes=0)
        with pytest.raises(SimulationError):
            WorkloadSpec(factoring_levels=10, num_attributes=10)
        with pytest.raises(SimulationError):
            WorkloadSpec(first_non_star_probability=1.5)
        with pytest.raises(SimulationError):
            WorkloadSpec(non_star_decay=0.0)


class TestRegionExtractor:
    def test_figure6_names(self):
        assert figure6_region_of("S.T2.L01.03") == 2
        assert figure6_region_of("S.T0.R.00") == 0
        assert figure6_region_of("P1") == 0  # no tree component -> region 0


class TestSubscriptionGenerator:
    def test_deterministic_per_seed(self):
        a = SubscriptionGenerator(CHART1_SPEC, seed=5)
        b = SubscriptionGenerator(CHART1_SPEC, seed=5)
        assert [a.predicate_for("c").describe() for _ in range(10)] == [
            b.predicate_for("c").describe() for _ in range(10)
        ]

    def test_first_attribute_almost_always_constrained(self):
        generator = SubscriptionGenerator(CHART1_SPEC, seed=1)
        predicates = [generator.predicate_for("c") for _ in range(500)]
        constrained = sum(1 for p in predicates if not p.test_for("a1").is_dont_care)
        assert constrained / 500 > 0.93

    def test_last_attribute_rarely_constrained(self):
        generator = SubscriptionGenerator(CHART1_SPEC, seed=1)
        predicates = [generator.predicate_for("c") for _ in range(500)]
        constrained = sum(1 for p in predicates if not p.test_for("a10").is_dont_care)
        assert constrained / 500 < 0.45  # schedule says ~0.227

    def test_round_robin_across_subscribers(self):
        generator = SubscriptionGenerator(CHART1_SPEC, seed=1)
        subscriptions = generator.subscriptions_for(["x", "y"], 5)
        assert [s.subscriber for s in subscriptions] == ["x", "y", "x", "y", "x"]

    def test_locality_changes_value_distribution(self):
        spec = WorkloadSpec(values_per_attribute=6, locality_regions=3)
        generator = SubscriptionGenerator(
            spec, seed=2, region_of=lambda c: 0 if c == "west" else 2
        )

        def hot_values(subscriber):
            counts = {}
            for _ in range(400):
                predicate = generator.predicate_for(subscriber)
                test = predicate.test_for("a1")
                if not test.is_dont_care:
                    counts[test.value] = counts.get(test.value, 0) + 1
            return max(counts, key=counts.get)

        assert hot_values("west") != hot_values("east")

    def test_requires_subscribers(self):
        generator = SubscriptionGenerator(CHART1_SPEC)
        with pytest.raises(SimulationError):
            generator.subscriptions_for([], 5)


class TestEventGenerator:
    def test_events_validate_against_schema(self):
        generator = EventGenerator(CHART1_SPEC, seed=3)
        event = generator.event_for()
        assert len(event.as_tuple()) == 10
        assert all(0 <= v < 5 for v in event.as_tuple())

    def test_factory_is_publisher_bound(self):
        generator = EventGenerator(CHART1_SPEC, seed=3)
        factory = generator.factory_for("P1")
        event = factory(random.Random(0))
        assert event.publisher == "P1"

    def test_selectivity_in_papers_ballpark(self):
        # Chart 1 parameters: "on average, each event matches only about
        # 0.1% of subscriptions".  Without cross-region dilution our global
        # measurement lands within an order of magnitude.
        generator = SubscriptionGenerator(CHART1_SPEC, seed=4)
        subscriptions = generator.subscriptions_for(["c"], 400)
        event_generator = EventGenerator(CHART1_SPEC, seed=5)
        events = [event_generator.event_for() for _ in range(60)]
        selectivity = measure_selectivity(subscriptions, events)
        assert 0.0001 < selectivity < 0.03

    def test_selectivity_empty_inputs(self):
        assert measure_selectivity([], []) == 0.0


class TestRangeWorkloads:
    def test_zero_probability_means_equality_only(self):
        from repro.matching import RangeTest, IntervalTest

        spec = WorkloadSpec(range_probability=0.0)
        generator = SubscriptionGenerator(spec, seed=9)
        for _ in range(100):
            predicate = generator.predicate_for("c")
            assert not any(
                isinstance(test, (RangeTest, IntervalTest)) for test in predicate.tests
            )

    def test_full_probability_means_range_only(self):
        from repro.matching import EqualityTest

        spec = WorkloadSpec(range_probability=1.0)
        generator = SubscriptionGenerator(spec, seed=9)
        for _ in range(100):
            predicate = generator.predicate_for("c")
            assert not any(
                isinstance(test, EqualityTest) for test in predicate.tests
            )

    def test_mixed_probability_produces_both(self):
        from repro.matching import EqualityTest, RangeTest

        spec = WorkloadSpec(range_probability=0.5)
        generator = SubscriptionGenerator(spec, seed=9)
        kinds = set()
        for _ in range(200):
            for test in generator.predicate_for("c").tests:
                kinds.add(type(test).__name__)
        assert {"EqualityTest", "RangeTest"} <= kinds

    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadSpec(range_probability=1.5)

    def test_range_predicates_match_events(self):
        spec = WorkloadSpec(range_probability=1.0)
        generator = SubscriptionGenerator(spec, seed=10)
        events = EventGenerator(spec, seed=11)
        subscriptions = generator.subscriptions_for(["c"], 200)
        sample = [events.event_for() for _ in range(50)]
        matched = sum(
            1
            for event in sample
            for subscription in subscriptions
            if subscription.predicate.matches(event)
        )
        assert matched > 0  # one-sided ranges are coarse; matches must occur
