"""Unit tests for virtual links and initialization masks (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.core import M, N, VirtualLinkTable
from repro.errors import RoutingError
from repro.network import RoutingTable, Topology, figure6_topology, spanning_trees_for_publishers


def table_for(topology: Topology, broker: str) -> VirtualLinkTable:
    routing = RoutingTable(topology, broker)
    trees = spanning_trees_for_publishers(topology)
    return VirtualLinkTable(topology, broker, routing, trees)


class TestChainTopology:
    def test_positions_cover_all_clients(self, two_broker_topology):
        table = table_for(two_broker_topology, "B0")
        for client in two_broker_topology.clients():
            position = table.position_of(client)
            assert 0 <= position < table.num_links

    def test_local_client_goes_direct(self, two_broker_topology):
        table = table_for(two_broker_topology, "B0")
        assert table.neighbor_of_position(table.position_of("c0")) == "c0"

    def test_remote_client_via_next_hop(self, two_broker_topology):
        table = table_for(two_broker_topology, "B0")
        assert table.neighbor_of_position(table.position_of("c1")) == "B1"

    def test_initialization_mask_root(self, two_broker_topology):
        table = table_for(two_broker_topology, "B0")
        mask = table.initialization_mask("B0")
        # Every destination is downstream of the root, so its links are M.
        assert mask[table.position_of("c0")] is M
        assert mask[table.position_of("c1")] is M

    def test_initialization_mask_downstream_broker(self, two_broker_topology):
        table = table_for(two_broker_topology, "B1")
        mask = table.initialization_mask("B0")
        # From B1, only its own client is downstream on B0's tree; the links
        # back toward B0 (carrying c0 and P1) must be No.
        assert mask[table.position_of("c1")] is M
        assert mask[table.position_of("c0")] is N

    def test_unknown_tree_root(self, two_broker_topology):
        table = table_for(two_broker_topology, "B0")
        with pytest.raises(RoutingError):
            table.initialization_mask("B1")

    def test_unknown_destination(self, two_broker_topology):
        table = table_for(two_broker_topology, "B0")
        with pytest.raises(RoutingError):
            table.position_of("nobody")

    def test_client_cannot_own_table(self, two_broker_topology):
        routing = RoutingTable(two_broker_topology, "B0")
        trees = spanning_trees_for_publishers(two_broker_topology)
        with pytest.raises(RoutingError):
            VirtualLinkTable(two_broker_topology, "c0", routing, trees)

    def test_no_splits_on_tree_topology(self, two_broker_topology):
        assert table_for(two_broker_topology, "B0").split_count == 0


class TestDiamondTopology:
    def test_masks_differ_per_tree(self, diamond_topology):
        table = table_for(diamond_topology, "B1")
        mask_p1 = table.initialization_mask("B0")  # tree rooted at B0
        mask_p2 = table.initialization_mask("B3")  # tree rooted at B3
        assert mask_p1 != mask_p2

    def test_neighbors_for_mask_dedupes(self, diamond_topology):
        table = table_for(diamond_topology, "B0")
        mask = table.initialization_mask("B0").close_maybes()
        assert table.neighbors_for_mask(mask) == []

    def test_virtual_links_partition_destinations(self, diamond_topology):
        table = table_for(diamond_topology, "B0")
        covered = [d for v in table.virtual_links for d in v.destinations]
        assert sorted(covered) == diamond_topology.clients()


class TestFigure6:
    def test_lateral_links_force_splits(self):
        topology = figure6_topology(subscribers_per_broker=1)
        routing = RoutingTable(topology, "T0.M1")
        trees = spanning_trees_for_publishers(topology)
        # T0.M1 carries a lateral link to T1.M1: destinations reachable that
        # way are downstream on some publishers' trees only.
        table = VirtualLinkTable(topology, "T0.M1", routing, trees)
        assert table.num_links >= topology.degree("T0.M1")

    def test_no_laterals_no_splits(self):
        topology = figure6_topology(subscribers_per_broker=1, lateral_links=())
        trees = spanning_trees_for_publishers(topology)
        for broker in topology.brokers():
            routing = RoutingTable(topology, broker)
            table = VirtualLinkTable(topology, broker, routing, trees)
            assert table.split_count == 0
