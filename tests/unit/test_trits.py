"""Unit tests for the trit algebra (Figure 4)."""

from __future__ import annotations

import pytest

from repro.core import (
    M,
    N,
    Trit,
    TritVector,
    Y,
    alternative_combine,
    alternative_combine_all,
    parallel_combine,
    parallel_combine_all,
)

ALL = (Y, M, N)


class TestOperators:
    def test_alternative_table(self):
        # Figure 4, left: same stays, anything else is Maybe.
        expected = {
            (Y, Y): Y, (Y, M): M, (Y, N): M,
            (M, Y): M, (M, M): M, (M, N): M,
            (N, Y): M, (N, M): M, (N, N): N,
        }
        for (a, b), want in expected.items():
            assert alternative_combine(a, b) is want

    def test_parallel_table(self):
        # Figure 4, right: Yes dominates Maybe dominates No.
        expected = {
            (Y, Y): Y, (Y, M): Y, (Y, N): Y,
            (M, Y): Y, (M, M): M, (M, N): M,
            (N, Y): Y, (N, M): M, (N, N): N,
        }
        for (a, b), want in expected.items():
            assert parallel_combine(a, b) is want

    def test_both_commutative(self):
        for a in ALL:
            for b in ALL:
                assert alternative_combine(a, b) is alternative_combine(b, a)
                assert parallel_combine(a, b) is parallel_combine(b, a)

    def test_both_associative(self):
        for a in ALL:
            for b in ALL:
                for c in ALL:
                    assert alternative_combine(alternative_combine(a, b), c) is (
                        alternative_combine(a, alternative_combine(b, c))
                    )
                    assert parallel_combine(parallel_combine(a, b), c) is (
                        parallel_combine(a, parallel_combine(b, c))
                    )

    def test_parallel_identity_is_no(self):
        for a in ALL:
            assert parallel_combine(a, N) is a

    def test_parallel_distributes_over_alternative(self):
        # P(A(a,b), s) == A(P(a,s), P(b,s)) — this is what justifies the
        # paper's "alternative-combine the value children, then
        # parallel-combine the star child" recipe.
        for a in ALL:
            for b in ALL:
                for s in ALL:
                    left = parallel_combine(alternative_combine(a, b), s)
                    right = alternative_combine(
                        parallel_combine(a, s), parallel_combine(b, s)
                    )
                    assert left is right


class TestTritVector:
    def test_from_string(self):
        vector = TritVector("YNM")
        assert list(vector) == [Y, N, M]

    def test_from_string_case_insensitive(self):
        assert TritVector("ynm") == TritVector("YNM")

    def test_bad_letter(self):
        with pytest.raises(ValueError):
            TritVector("YXZ")

    def test_bad_element(self):
        with pytest.raises(TypeError):
            TritVector([Y, "N"])  # type: ignore[list-item]

    def test_constructors(self):
        assert str(TritVector.all_no(3)) == "NNN"
        assert str(TritVector.all_maybe(2)) == "MM"
        assert str(TritVector.all_yes(2)) == "YY"
        assert str(TritVector.with_yes_at(4, [1, 3])) == "NYNY"

    def test_figure5_example(self):
        # MYY A NYN = MYM ; MYM P YYN = YYM — straight from the paper.
        assert TritVector("MYY").alternative(TritVector("NYN")) == TritVector("MYM")
        assert TritVector("MYM").parallel(TritVector("YYN")) == TritVector("YYM")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TritVector("YN").alternative(TritVector("Y"))
        with pytest.raises(ValueError):
            TritVector("YN").parallel(TritVector("Y"))
        with pytest.raises(ValueError):
            TritVector("YN").refine_with(TritVector("Y"))

    def test_refine_with(self):
        mask = TritVector("MNMY")
        annotation = TritVector("YYNM")
        refined = mask.refine_with(annotation)
        # Maybes take the annotation; fixed trits stay.
        assert refined == TritVector("YNNY")

    def test_refine_keeps_maybe_when_annotation_maybe(self):
        assert TritVector("M").refine_with(TritVector("M")) == TritVector("M")

    def test_import_yes(self):
        current = TritVector("MMNY")
        returned = TritVector("YNYY")
        merged = current.import_yes(returned)
        # Only Maybe positions with a returned Yes flip; N and Y are final.
        assert merged == TritVector("YMNY")

    def test_close_maybes(self):
        assert TritVector("MYNM").close_maybes() == TritVector("NYNN")

    def test_positions(self):
        vector = TritVector("YMNY")
        assert vector.yes_positions() == [0, 3]
        assert vector.maybe_positions() == [1]
        assert vector.has_maybe
        assert not TritVector("YN").has_maybe

    def test_equality_and_hash(self):
        assert TritVector("YNM") == TritVector("YNM")
        assert hash(TritVector("YNM")) == hash(TritVector("YNM"))
        assert TritVector("YNM") != TritVector("YNN")

    def test_indexing(self):
        vector = TritVector("YNM")
        assert vector[0] is Y and vector[2] is M
        assert len(vector) == 3

    def test_empty_vector(self):
        vector = TritVector("")
        assert len(vector) == 0
        assert not vector.has_maybe
        assert vector.close_maybes() == vector


class TestFolds:
    def test_alternative_combine_all_empty_is_all_no(self):
        assert alternative_combine_all([], 3) == TritVector("NNN")

    def test_alternative_combine_all(self):
        vectors = [TritVector("YY"), TritVector("YN"), TritVector("YM")]
        assert alternative_combine_all(vectors, 2) == TritVector("YM")

    def test_parallel_combine_all_empty_is_all_no(self):
        assert parallel_combine_all([], 2) == TritVector("NN")

    def test_parallel_combine_all(self):
        vectors = [TritVector("NM"), TritVector("NY")]
        assert parallel_combine_all(vectors, 2) == TritVector("NY")

    def test_trit_from_letter(self):
        assert Trit.from_letter("y") is Y
        with pytest.raises(ValueError):
            Trit.from_letter("Q")
