"""Unit tests for the TCP transport (framing, sender pool, lifecycle)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.broker import TcpTransport, parse_endpoint
from repro.errors import TransportError


@pytest.fixture
def transport():
    t = TcpTransport(sender_threads=2)
    yield t
    t.close()


def wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestEndpointParsing:
    def test_host_port(self):
        assert parse_endpoint("127.0.0.1:8080") == ("127.0.0.1", 8080)

    def test_missing_port(self):
        with pytest.raises(TransportError):
            parse_endpoint("localhost")

    def test_bad_port(self):
        with pytest.raises(TransportError):
            parse_endpoint("localhost:http")

    def test_missing_host(self):
        with pytest.raises(TransportError):
            parse_endpoint(":8080")


class TestTcpMessaging:
    def test_roundtrip(self, transport):
        received = []
        accepted = threading.Event()

        def on_accept(connection):
            connection.on_message = received.append
            accepted.set()

        listener = transport.listen("127.0.0.1:0", on_accept)
        endpoint = f"127.0.0.1:{listener.port}"
        client = transport.connect(endpoint)
        client.start()
        assert wait_until(accepted.is_set)
        client.send(b"hello")
        client.send(b"world")
        assert wait_until(lambda: len(received) == 2)
        assert received == [b"hello", b"world"]

    def test_large_frame(self, transport):
        received = []

        def on_accept(connection):
            connection.on_message = received.append

        listener = transport.listen("127.0.0.1:0", on_accept)
        client = transport.connect(f"127.0.0.1:{listener.port}")
        client.start()
        payload = bytes(range(256)) * 4096  # 1 MiB
        client.send(payload)
        assert wait_until(lambda: len(received) == 1, timeout_s=10.0)
        assert received[0] == payload

    def test_bidirectional(self, transport):
        client_received = []
        server_connections = []

        def on_accept(connection):
            server_connections.append(connection)
            connection.on_message = lambda p: connection.send(p.upper())

        listener = transport.listen("127.0.0.1:0", on_accept)
        client = transport.connect(f"127.0.0.1:{listener.port}")
        client.on_message = client_received.append
        client.start()
        client.send(b"echo me")
        assert wait_until(lambda: client_received == [b"ECHO ME"])

    def test_connect_refused(self, transport):
        with pytest.raises(TransportError):
            transport.connect("127.0.0.1:1")  # nothing listens there

    def test_peer_close_fires_on_close(self, transport):
        closed = threading.Event()
        server_side = []

        def on_accept(connection):
            server_side.append(connection)

        listener = transport.listen("127.0.0.1:0", on_accept)
        client = transport.connect(f"127.0.0.1:{listener.port}")
        client.on_close = closed.set
        client.start()
        assert wait_until(lambda: server_side)
        server_side[0].close()
        assert wait_until(closed.is_set)
        assert not client.is_open

    def test_many_messages_in_order(self, transport):
        received = []

        def on_accept(connection):
            connection.on_message = received.append

        listener = transport.listen("127.0.0.1:0", on_accept)
        client = transport.connect(f"127.0.0.1:{listener.port}")
        client.start()
        for i in range(500):
            client.send(i.to_bytes(4, "big"))
        assert wait_until(lambda: len(received) == 500)
        assert received == [i.to_bytes(4, "big") for i in range(500)]
