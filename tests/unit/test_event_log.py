"""Unit tests for the per-client event log (reliable redelivery + GC)."""

from __future__ import annotations

import pytest

from repro.broker import EventLog
from repro.errors import ProtocolError


class TestSequencing:
    def test_appends_assign_increasing_seqs(self):
        log = EventLog("alice")
        assert log.append(b"a") == 1
        assert log.append(b"b") == 2
        assert log.last_seq == 2

    def test_entries_after(self):
        log = EventLog("alice")
        for payload in (b"a", b"b", b"c"):
            log.append(payload)
        assert log.entries_after(0) == [(1, b"a"), (2, b"b"), (3, b"c")]
        assert log.entries_after(2) == [(3, b"c")]
        assert log.entries_after(3) == []


class TestAcksAndGC:
    def test_ack_advances_watermark(self):
        log = EventLog("alice")
        log.append(b"a")
        log.append(b"b")
        log.ack(1)
        assert log.acked == 1

    def test_ack_is_monotonic(self):
        log = EventLog("alice")
        log.append(b"a")
        log.append(b"b")
        log.ack(2)
        log.ack(1)  # late/duplicate ack must not regress
        assert log.acked == 2

    def test_ack_beyond_sent_rejected(self):
        log = EventLog("alice")
        log.append(b"a")
        with pytest.raises(ProtocolError):
            log.ack(5)

    def test_collect_drops_only_acked(self):
        log = EventLog("alice")
        for payload in (b"a", b"b", b"c"):
            log.append(payload)
        log.ack(2)
        dropped = log.collect()
        assert dropped == 2
        assert len(log) == 1
        assert log.entries_after(0) == [(3, b"c")]

    def test_collect_is_idempotent(self):
        log = EventLog("alice")
        log.append(b"a")
        log.ack(1)
        assert log.collect() == 1
        assert log.collect() == 0

    def test_collect_never_drops_unacked(self):
        log = EventLog("alice")
        for i in range(10):
            log.append(bytes([i]))
        log.collect()
        assert len(log) == 10

    def test_sequence_numbers_survive_collection(self):
        log = EventLog("alice")
        log.append(b"a")
        log.ack(1)
        log.collect()
        assert log.append(b"b") == 2  # numbering continues, never reused


class TestReconnectScenario:
    def test_backlog_replay_after_crash(self):
        log = EventLog("alice")
        # Client processed 1-2, then crashed; 3-5 arrive while offline.
        for payload in (b"1", b"2", b"3", b"4", b"5"):
            log.append(payload)
        log.ack(2)
        log.collect()
        backlog = log.entries_after(2)
        assert [seq for seq, _data in backlog] == [3, 4, 5]
