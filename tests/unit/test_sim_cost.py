"""Unit tests for the broker cost model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_service_time_components(self):
        model = CostModel(
            per_message_overhead_us=10.0,
            per_matching_step_us=2.0,
            per_send_us=5.0,
            per_destination_entry_us=1.0,
        )
        assert model.service_time_us() == 10.0
        assert model.service_time_us(matching_steps=3) == 16.0
        assert model.service_time_us(sends=2) == 20.0
        assert model.service_time_us(destination_entries=4) == 14.0
        assert (
            model.service_time_us(matching_steps=3, sends=2, destination_entries=4)
            == 30.0
        )

    def test_negative_costs_rejected(self):
        with pytest.raises(SimulationError):
            CostModel(per_send_us=-1.0)
        with pytest.raises(SimulationError):
            CostModel(per_matching_step_us=-0.1)

    def test_default_model_matches_paper_narrative(self):
        # Matching steps are "a few microseconds"; a send costs more than a
        # step (transport dominates matching).
        assert 1.0 <= DEFAULT_COST_MODEL.per_matching_step_us <= 10.0
        assert DEFAULT_COST_MODEL.per_send_us > DEFAULT_COST_MODEL.per_matching_step_us

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.per_send_us = 0  # type: ignore[misc]
