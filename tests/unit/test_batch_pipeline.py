"""The batched event pipeline: client batches, broker ingest, sim batching.

Batching is a throughput optimization, never a semantics change: a
``publish_many`` call must deliver exactly what the equivalent ``publish``
loop delivers (same events, same per-client sequencing), coalesced
``BROKER_EVENT_BATCH`` forwarding must fan out like individual
``BROKER_EVENT`` messages, and a simulated broker draining its queue in
batches must produce the same deliveries as one draining it one message at
a time.
"""

from __future__ import annotations

import pytest

from repro.broker import (
    BrokerClient,
    BrokerNetworkConfig,
    BrokerNode,
    InMemoryTransport,
)
from repro.errors import ProtocolError
from repro.matching import Event, stock_trade_schema, uniform_schema
from repro.network import NodeKind, Topology
from repro.protocols import LinkMatchingProtocol, ProtocolContext
from repro.sim import NetworkSimulation
from tests.conftest import make_subscription

SCHEMA2 = uniform_schema(2)


def two_broker_network(**node_kwargs):
    """B0 -- B1; alice@B0, bob@B1, pub@B0."""
    schema = stock_trade_schema()
    topology = Topology()
    topology.add_broker("B0")
    topology.add_broker("B1")
    topology.add_link("B0", "B1", latency_ms=5.0)
    topology.add_client("alice", "B0")
    topology.add_client("bob", "B1")
    topology.add_client("pub", "B0", kind=NodeKind.PUBLISHER)
    config = BrokerNetworkConfig(topology, schema)
    transport = InMemoryTransport()
    endpoints = {name: f"mem://{name}" for name in topology.brokers()}
    nodes = {
        name: BrokerNode(config, name, transport, endpoints, **node_kwargs)
        for name in topology.brokers()
    }
    for node in nodes.values():
        node.start()
    for node in nodes.values():
        node.connect_neighbors()
    transport.pump()
    return schema, transport, nodes


def client(name, schema, transport, broker, **kwargs):
    c = BrokerClient(
        name, schema, transport, f"mem://{broker}", pump=transport.pump, **kwargs
    )
    c.connect()
    transport.pump()
    return c


def trades(count):
    return [
        {"issue": "IBM", "price": float(i), "volume": 100 + i} for i in range(count)
    ]


class TestPublishMany:
    def test_batch_delivers_local_and_remote(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        bob = client("bob", schema, transport, "B1")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("issue='IBM'")
        bob.subscribe_and_wait("volume>=100")
        transport.pump()
        pub.publish_many(trades(5))
        transport.pump()
        assert [e["price"] for e in alice.received_events] == [float(i) for i in range(5)]
        assert [e["price"] for e in bob.received_events] == [float(i) for i in range(5)]
        assert [seq for seq, _e in alice.deliveries] == [1, 2, 3, 4, 5]
        assert [seq for seq, _e in bob.deliveries] == [1, 2, 3, 4, 5]

    def test_batch_equals_publish_loop(self):
        published = trades(7)

        def deliveries(send):
            schema, transport, _nodes = two_broker_network()
            bob = client("bob", schema, transport, "B1")
            pub = client("pub", schema, transport, "B0")
            bob.subscribe_and_wait("*")
            transport.pump()
            send(pub, published)
            transport.pump()
            return [(seq, e.as_tuple()) for seq, e in bob.deliveries]

        def loop(publisher, events):
            for values in events:
                publisher.publish(values)

        assert deliveries(lambda p, evs: p.publish_many(evs)) == deliveries(loop)

    def test_batch_filters_non_matching(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("price>=3")
        transport.pump()
        pub.publish_many(trades(5))
        transport.pump()
        assert [e["price"] for e in alice.received_events] == [3.0, 4.0]

    def test_empty_batch_is_a_no_op(self):
        schema, transport, nodes = two_broker_network()
        pub = client("pub", schema, transport, "B0")
        pub.publish_many([])
        transport.pump()
        assert nodes["B0"].events_routed == 0

    def test_remote_forwarding_is_coalesced(self):
        """A multi-event batch crossing B0->B1 rides one BROKER_EVENT_BATCH
        (visible as routed-but-single-forward bookkeeping on B1)."""
        schema, transport, nodes = two_broker_network()
        bob = client("bob", schema, transport, "B1")
        pub = client("pub", schema, transport, "B0")
        bob.subscribe_and_wait("*")
        transport.pump()
        pub.publish_many(trades(6))
        transport.pump()
        assert nodes["B0"].events_routed == 6
        assert nodes["B1"].events_routed == 6
        assert len(bob.received_events) == 6

    def test_mixed_publish_and_batch_sequencing(self):
        schema, transport, _nodes = two_broker_network()
        alice = client("alice", schema, transport, "B0")
        pub = client("pub", schema, transport, "B0")
        alice.subscribe_and_wait("*")
        transport.pump()
        pub.publish({"issue": "IBM", "price": 0.5, "volume": 1})
        pub.publish_many(trades(3))
        pub.publish({"issue": "IBM", "price": 9.5, "volume": 1})
        transport.pump()
        assert [seq for seq, _e in alice.deliveries] == [1, 2, 3, 4, 5]
        assert [e["price"] for e in alice.received_events] == [0.5, 0.0, 1.0, 2.0, 9.5]


class TestIngestBatchSize:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ProtocolError):
            two_broker_network(ingest_batch_size=0)

    def test_small_ingest_batches_still_deliver_everything(self):
        schema, transport, _nodes = two_broker_network(ingest_batch_size=2)
        bob = client("bob", schema, transport, "B1")
        pub = client("pub", schema, transport, "B0")
        bob.subscribe_and_wait("*")
        transport.pump()
        pub.publish_many(trades(7))
        transport.pump()
        assert [seq for seq, _e in bob.deliveries] == list(range(1, 8))


class TestSimBatchEquivalence:
    def make_simulation(self, topology, expressions, batch_size):
        subscriptions = [
            make_subscription(SCHEMA2, expression, subscriber)
            for subscriber, expression in expressions.items()
        ]
        context = ProtocolContext(topology, SCHEMA2, subscriptions)
        return NetworkSimulation(
            topology, LinkMatchingProtocol(context), seed=1, batch_size=batch_size
        )

    @pytest.mark.parametrize("batch_size", [2, 4, 16])
    def test_batched_drain_matches_single_message_drain(
        self, two_broker_topology, batch_size
    ):
        events = [Event.from_tuple(SCHEMA2, (i % 3, i % 2)) for i in range(12)]

        def outcome(size):
            simulation = self.make_simulation(
                two_broker_topology, {"c1": "a1=1", "c0": "a2=0"}, size
            )
            for event in events:
                simulation.publish("P1", event)
            result = simulation.run()
            return (
                sorted((d.client, d.event_id, d.matched) for d in result.deliveries),
                result.link_messages,
            )

        single_deliveries, single_links = outcome(1)
        batched_deliveries, batched_links = outcome(batch_size)
        assert batched_deliveries == single_deliveries
        assert batched_links == single_links

    def test_batch_size_validation(self, two_broker_topology):
        with pytest.raises(ValueError):
            self.make_simulation(two_broker_topology, {}, 0)
