"""Unit tests for events."""

from __future__ import annotations

import pytest

from repro.errors import EventError
from repro.matching import Event, uniform_schema


class TestConstruction:
    def test_from_mapping(self, stock_schema):
        event = Event(stock_schema, {"issue": "IBM", "price": 119, "volume": 2000})
        assert event["issue"] == "IBM"
        assert event["price"] == 119.0  # coerced to float

    def test_from_tuple(self, schema5):
        event = Event.from_tuple(schema5, (1, 2, 3, 1, 2))
        assert event.as_tuple() == (1, 2, 3, 1, 2)

    def test_from_tuple_wrong_arity(self, schema5):
        with pytest.raises(EventError):
            Event.from_tuple(schema5, (1, 2, 3))

    def test_missing_attribute_rejected(self, stock_schema):
        with pytest.raises(EventError):
            Event(stock_schema, {"issue": "IBM", "price": 119})

    def test_extra_attribute_rejected(self, stock_schema):
        with pytest.raises(EventError):
            Event(stock_schema, {"issue": "IBM", "price": 1, "volume": 1, "x": 1})

    def test_wrong_type_rejected(self, stock_schema):
        with pytest.raises(EventError):
            Event(stock_schema, {"issue": 42, "price": 1, "volume": 1})


class TestAccess:
    def test_unknown_attribute_access(self, ibm_event):
        with pytest.raises(EventError):
            ibm_event.value("nope")

    def test_values_returns_copy(self, ibm_event):
        values = ibm_event.values
        values["issue"] = "MUTATED"
        assert ibm_event["issue"] == "IBM"

    def test_iteration_in_schema_order(self, ibm_event):
        assert list(ibm_event) == ["IBM", 119.0, 2000]


class TestIdentityAndEquality:
    def test_equality_by_values(self, stock_schema):
        a = Event(stock_schema, {"issue": "IBM", "price": 1, "volume": 2})
        b = Event(stock_schema, {"issue": "IBM", "price": 1, "volume": 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_event_ids_unique(self, stock_schema):
        a = Event(stock_schema, {"issue": "IBM", "price": 1, "volume": 2})
        b = Event(stock_schema, {"issue": "IBM", "price": 1, "volume": 2})
        assert a.event_id != b.event_id

    def test_inequality_across_schemas(self, stock_schema):
        a = Event(stock_schema, {"issue": "IBM", "price": 1, "volume": 2})
        other = Event.from_tuple(uniform_schema(2), (1, 2))
        assert a != other


class TestMetadata:
    def test_publisher_and_sequence(self, stock_schema):
        event = Event(
            stock_schema,
            {"issue": "IBM", "price": 1, "volume": 2},
            publisher="P1",
            sequence=9,
        )
        assert event.publisher == "P1"
        assert event.sequence == 9

    def test_with_metadata_copies(self, ibm_event):
        stamped = ibm_event.with_metadata(publisher="P2", sequence=3)
        assert stamped.publisher == "P2"
        assert stamped.sequence == 3
        assert ibm_event.publisher is None
        assert stamped == ibm_event  # metadata is not part of equality

    def test_with_metadata_keeps_existing(self, stock_schema):
        event = Event(
            stock_schema, {"issue": "X", "price": 1, "volume": 2}, publisher="P1"
        )
        assert event.with_metadata(sequence=5).publisher == "P1"
