"""Unit tests for the three routing protocols' decision logic."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.matching import Event, uniform_schema
from repro.protocols import (
    Decision,
    FloodingProtocol,
    LinkMatchingProtocol,
    MatchFirstProtocol,
    ProtocolContext,
    SimMessage,
)
from tests.conftest import make_subscription

SCHEMA2 = uniform_schema(2)


def context_for(topology, expressions) -> ProtocolContext:
    subscriptions = [
        make_subscription(SCHEMA2, expression, subscriber)
        for subscriber, expression in expressions
    ]
    return ProtocolContext(topology, SCHEMA2, subscriptions)


def drive(protocol, publisher_broker, event) -> dict:
    """Run an event through the protocol hop by hop; returns broker->Decision."""
    message = protocol.make_message(event, publisher_broker)
    decisions = {}
    frontier = [(publisher_broker, message)]
    while frontier:
        broker, incoming = frontier.pop()
        decision = protocol.handle(broker, incoming)
        assert broker not in decisions, "a broker saw the event twice"
        decisions[broker] = decision
        frontier.extend(decision.sends)
    return decisions


class TestSimMessage:
    def test_forwarded_increments_hop(self, schema5):
        event = Event.from_tuple(SCHEMA2, (0, 0))
        message = SimMessage(event, "B0", publish_time_ticks=42)
        forwarded = message.forwarded()
        assert forwarded.hop == 1
        assert forwarded.publish_time_ticks == 42
        assert forwarded.message_id != message.message_id

    def test_header_entries(self):
        event = Event.from_tuple(SCHEMA2, (0, 0))
        assert SimMessage(event, "B0").header_entries == 0
        assert SimMessage(event, "B0", destinations=("a", "b")).header_entries == 2


class TestLinkMatching:
    def test_delivery_set(self, diamond_topology):
        context = context_for(
            diamond_topology, [("c.B0", "a1=1"), ("c.B3", "a1=1"), ("c.B1", "a1=2")]
        )
        protocol = LinkMatchingProtocol(context)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (1, 0)))
        delivered = {c for d in decisions.values() for c in d.matched_deliveries}
        assert delivered == {"c.B0", "c.B3"}

    def test_untouched_brokers_not_visited(self, diamond_topology):
        context = context_for(diamond_topology, [("c.B0", "a1=1")])
        protocol = LinkMatchingProtocol(context)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (1, 0)))
        assert set(decisions) == {"B0"}  # only the publishing broker works


class TestFlooding:
    def test_visits_every_broker(self, diamond_topology):
        context = context_for(diamond_topology, [("c.B0", "a1=1")])
        protocol = FloodingProtocol(context)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (1, 0)))
        assert set(decisions) == set(diamond_topology.brokers())

    def test_pure_flooding_delivers_to_all_subscribers(self, diamond_topology):
        context = context_for(diamond_topology, [("c.B1", "a1=1")])
        protocol = FloodingProtocol(context)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (9, 0)))
        sent_to = {c for d in decisions.values() for c in d.deliveries}
        assert sent_to == set(diamond_topology.subscribers())
        matched = {c for d in decisions.values() for c in d.matched_deliveries}
        assert matched == set()

    def test_pure_flooding_charges_no_matching(self, diamond_topology):
        context = context_for(diamond_topology, [("c.B1", "a1=1")])
        protocol = FloodingProtocol(context)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (1, 0)))
        assert all(d.matching_steps == 0 for d in decisions.values())

    def test_edge_filtering_delivers_only_matches(self, diamond_topology):
        context = context_for(
            diamond_topology, [("c.B1", "a1=1"), ("c.B2", "a1=2")]
        )
        protocol = FloodingProtocol(context, filter_at_edge=True)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (1, 0)))
        sent_to = {c for d in decisions.values() for c in d.deliveries}
        assert sent_to == {"c.B1"}
        assert any(d.matching_steps > 0 for d in decisions.values())

    def test_no_duplicate_broker_visits(self, diamond_topology):
        context = context_for(diamond_topology, [])
        protocol = FloodingProtocol(context)
        # drive() asserts each broker is visited at most once.
        drive(protocol, "B3", Event.from_tuple(SCHEMA2, (0, 0)))


class TestMatchFirst:
    def test_destination_lists_carried_and_split(self, diamond_topology):
        context = context_for(
            diamond_topology, [("c.B1", "a1=1"), ("c.B3", "a1=1")]
        )
        protocol = MatchFirstProtocol(context)
        message = protocol.make_message(Event.from_tuple(SCHEMA2, (1, 0)), "B0")
        decision = protocol.handle("B0", message)
        assert decision.matching_steps > 0
        assert decision.destination_entries == 2
        forwarded = dict(decision.sends)
        assert set(forwarded) == {"B1"}
        assert set(forwarded["B1"].destinations) == {"c.B1", "c.B3"}

    def test_downstream_brokers_do_not_match(self, diamond_topology):
        context = context_for(diamond_topology, [("c.B3", "a1=1")])
        protocol = MatchFirstProtocol(context)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (1, 0)))
        non_root = {b: d for b, d in decisions.items() if b != "B0"}
        assert all(d.matching_steps == 0 for d in non_root.values())
        delivered = {c for d in decisions.values() for c in d.deliveries}
        assert delivered == {"c.B3"}

    def test_message_without_list_at_non_publisher_rejected(self, diamond_topology):
        context = context_for(diamond_topology, [])
        protocol = MatchFirstProtocol(context)
        message = protocol.make_message(Event.from_tuple(SCHEMA2, (1, 0)), "B0")
        with pytest.raises(SimulationError):
            protocol.handle("B1", message)

    def test_empty_match_sends_nothing(self, diamond_topology):
        context = context_for(diamond_topology, [("c.B3", "a1=1")])
        protocol = MatchFirstProtocol(context)
        decisions = drive(protocol, "B0", Event.from_tuple(SCHEMA2, (5, 0)))
        assert decisions["B0"].sends == []
        assert decisions["B0"].deliveries == []


class TestProtocolEquivalence:
    def test_all_protocols_deliver_the_same_matched_set(self, diamond_topology):
        import random

        rng = random.Random(3)
        expressions = []
        for i, client in enumerate(sorted(diamond_topology.subscribers())):
            tests = [f"a{j}={rng.randrange(3)}" for j in (1, 2) if rng.random() < 0.6]
            expressions.append((client, " & ".join(tests) if tests else "*"))
        context = context_for(diamond_topology, expressions)
        protocols = [
            LinkMatchingProtocol(context),
            FloodingProtocol(context),
            FloodingProtocol(context, filter_at_edge=True),
            MatchFirstProtocol(context),
        ]
        for trial in range(50):
            event = Event.from_tuple(SCHEMA2, (rng.randrange(3), rng.randrange(3)))
            for root in ("B0", "B3"):
                results = []
                for protocol in protocols:
                    decisions = drive(protocol, root, event)
                    results.append(
                        {c for d in decisions.values() for c in d.matched_deliveries}
                    )
                assert all(r == results[0] for r in results), (trial, event, results)


class TestDecision:
    def test_matched_defaults_to_deliveries(self):
        decision = Decision(deliveries=["a", "b"])
        assert decision.matched_deliveries == ["a", "b"]

    def test_send_count(self):
        event = Event.from_tuple(SCHEMA2, (0, 0))
        decision = Decision(
            sends=[("B1", SimMessage(event, "B0"))], deliveries=["c0", "c1"]
        )
        assert decision.send_count == 3
