"""Unit tests for the sharded matching engine.

The equivalence contract (sharded ≡ monolithic for any partition) lives in
``tests/property/test_prop_sharding.py``; this file pins the mechanics —
registration, partition policies, ownership bookkeeping, rebalancing,
worker-pool lifecycle, early exit, and the surgical churn repair of the
shard-local event caches.
"""

from __future__ import annotations

import pytest

from repro.core import M, TritVector, Y
from repro.errors import SubscriptionError
from repro.matching import Event, Predicate, Subscription, uniform_schema
from repro.matching.engines import ENGINE_NAMES, create_engine
from repro.matching.predicates import EqualityTest
from repro.matching.sharding import SHARD_POLICIES, ShardedEngine
from repro.obs import MetricsRegistry, get_registry, set_registry

SCHEMA = uniform_schema(3)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}
NUM_LINKS = 3


@pytest.fixture
def live_registry():
    previous = set_registry(MetricsRegistry(enabled=True))
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def subscription(subscriber, **tests):
    predicate = Predicate(
        SCHEMA, {name: EqualityTest(value) for name, value in tests.items()}
    )
    return Subscription(predicate, subscriber)


def event(*values):
    return Event.from_tuple(SCHEMA, values)


def link_of(entry):
    return int(entry.subscriber[1:]) % NUM_LINKS


def build_engine(*subscriptions, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("policy", "round-robin")
    engine = ShardedEngine(SCHEMA, domains=DOMAINS, **kwargs)
    for entry in subscriptions:
        engine.insert(entry)
    return engine


def subscribers_of(result):
    return {s.subscriber for s in result.subscriptions}


class TestRegistration:
    def test_listed_and_creatable_by_name(self):
        assert "sharded" in ENGINE_NAMES
        engine = create_engine(
            "sharded", SCHEMA, domains=DOMAINS, shards=2, shard_policy="round-robin"
        )
        assert isinstance(engine, ShardedEngine)
        assert engine.num_shards == 2
        assert engine.policy == "round-robin"

    def test_create_engine_defaults(self):
        from repro.matching.sharding import DEFAULT_SHARD_POLICY, DEFAULT_SHARDS

        engine = create_engine("sharded", SCHEMA, domains=DOMAINS)
        assert engine.num_shards == DEFAULT_SHARDS
        assert engine.policy == DEFAULT_SHARD_POLICY
        assert engine.workers == 0

    def test_constructor_validation(self):
        with pytest.raises(SubscriptionError):
            ShardedEngine(SCHEMA, num_shards=0)
        with pytest.raises(SubscriptionError):
            ShardedEngine(SCHEMA, policy="alphabetical")
        with pytest.raises(SubscriptionError):
            ShardedEngine(SCHEMA, workers=-1)


class TestOwnership:
    def test_duplicate_insert_rejected(self):
        alice = subscription("s0", a1=1)
        engine = build_engine(alice)
        with pytest.raises(SubscriptionError):
            engine.insert(alice)

    def test_unknown_remove_rejected(self):
        engine = build_engine()
        with pytest.raises(SubscriptionError):
            engine.remove(12345)
        with pytest.raises(SubscriptionError):
            engine.shard_of(12345)

    def test_counts_and_shard_of_track_churn(self):
        alice = subscription("s0", a1=1)
        bob = subscription("s1", a2=2)
        engine = build_engine(alice, bob)
        assert engine.subscription_count == 2
        assert len(engine.subscriptions) == 2
        assert engine.shard_of(alice.subscription_id) in range(engine.num_shards)
        removed = engine.remove(bob.subscription_id)
        assert removed is bob
        assert engine.subscription_count == 1
        with pytest.raises(SubscriptionError):
            engine.shard_of(bob.subscription_id)

    def test_match_brute_force_agrees_with_match(self):
        engine = build_engine(
            subscription("s0", a1=1), subscription("s1", a2=0), subscription("s2", a1=2)
        )
        target = event(1, 0, 0)
        brute = {s.subscriber for s in engine.match_brute_force(target)}
        assert brute == subscribers_of(engine.match(target)) == {"s0", "s1"}


class TestPolicies:
    def test_policy_names_are_exactly_the_documented_ones(self):
        assert SHARD_POLICIES == ("round-robin", "hash", "balanced")

    def test_round_robin_cycles(self):
        entries = [subscription(f"s{i}", a1=1) for i in range(4)]
        engine = build_engine(*entries, num_shards=2, policy="round-robin")
        owners = [engine.shard_of(entry.subscription_id) for entry in entries]
        assert owners == [0, 1, 0, 1]

    def test_hash_colocates_equal_first_tests_deterministically(self):
        first = build_engine(num_shards=3, policy="hash")
        second = build_engine(num_shards=3, policy="hash")
        same_branch = [subscription(f"s{i}", a1=1) for i in range(3)]
        other_branch = subscription("s9", a1=2)
        for engine in (first, second):
            for entry in [*same_branch, other_branch]:
                engine.insert(entry)
        owners = {
            engine.shard_of(entry.subscription_id)
            for engine in (first, second)
            for entry in same_branch
        }
        assert len(owners) == 1  # co-located, and identically in both engines

    def test_hash_all_dont_care_goes_to_shard_zero(self):
        engine = build_engine(num_shards=3, policy="hash")
        star = subscription("s0")
        engine.insert(star)
        assert engine.shard_of(star.subscription_id) == 0

    def test_balanced_spreads_identical_subscriptions(self):
        entries = [subscription(f"s{i}", a1=1, a2=2) for i in range(4)]
        engine = build_engine(*entries, num_shards=2, policy="balanced")
        owners = [engine.shard_of(entry.subscription_id) for entry in entries]
        assert sorted(owners) == [0, 0, 1, 1]


class TestRebalance:
    def make_skewed(self):
        # Hash policy piles equal first tests onto one shard by design.
        entries = [subscription(f"s{i}", a1=1) for i in range(6)]
        return build_engine(*entries, num_shards=3, policy="hash"), entries

    def test_forced_rebalance_levels_counts_and_updates_owners(self, live_registry):
        engine, entries = self.make_skewed()
        moved = engine.rebalance(force=True)
        assert moved == 4
        assert sorted(len(shard.tree) for shard in engine.shards) == [2, 2, 2]
        assert live_registry.counter("engine.shard.rebalances").value == 1
        assert live_registry.counter("engine.shard.migrations").value == 4
        # The owner map followed the migrations: every entry removable and
        # every answer still exact.
        assert subscribers_of(engine.match(event(1, 0, 0))) == {
            entry.subscriber for entry in entries
        }
        for entry in entries:
            engine.remove(entry.subscription_id)
        assert engine.subscription_count == 0

    def test_rebalance_is_a_noop_below_threshold(self):
        entries = [subscription(f"s{i}", a1=i % 3) for i in range(6)]
        engine = build_engine(*entries, num_shards=3, policy="hash")
        if engine.skew() <= engine.rebalance_threshold:
            assert engine.rebalance() == 0

    def test_rebalance_interval_triggers_automatically(self):
        engine = build_engine(num_shards=3, policy="hash", rebalance_interval=6)
        for i in range(6):
            engine.insert(subscription(f"s{i}", a1=1))
        # The sixth mutation ran a pass; the skewed pile was spread out.
        assert sorted(len(shard.tree) for shard in engine.shards) == [2, 2, 2]


class TestWorkersAndLifecycle:
    def test_threaded_results_equal_serial(self):
        entries = [
            subscription(f"s{i}", a1=i % 3, a2=(i + 1) % 3) for i in range(9)
        ]
        serial = build_engine(*entries, num_shards=3, workers=0)
        serial.bind_links(NUM_LINKS, link_of)
        events = [event(a, b, 0) for a in DOMAIN for b in DOMAIN]
        mask = TritVector([M] * NUM_LINKS)
        with build_engine(*(entries), num_shards=3, workers=2) as threaded:
            threaded.bind_links(NUM_LINKS, link_of)
            for target in events:
                assert subscribers_of(threaded.match(target)) == subscribers_of(
                    serial.match(target)
                )
                assert (
                    threaded.match_links(target, mask).mask
                    == serial.match_links(target, mask).mask
                )
            batched = threaded.match_batch(events)
            for target, result in zip(events, batched):
                assert subscribers_of(result) == subscribers_of(serial.match(target))
        assert threaded._executor is None  # context exit shut the pool down

    def test_close_is_idempotent_and_serial_noop(self):
        engine = build_engine()
        engine.close()
        engine.close()

    def test_repr_names_shards_and_policy(self):
        engine = build_engine(subscription("s0", a1=1))
        assert "policy='round-robin'" in repr(engine)


class TestEarlyExit:
    def test_all_yes_mask_skips_every_shard(self):
        engine = build_engine(
            subscription("s0", a1=1), subscription("s1", a2=2), early_exit=True
        )
        engine.bind_links(NUM_LINKS, link_of)
        result = engine.match_links(event(1, 2, 0), TritVector([Y] * NUM_LINKS))
        assert all(trit == Y for trit in result.mask)
        assert result.steps == 0  # no Maybe to resolve — no shard was visited


class TestSurgicalRepair:
    def warm_engine(self):
        engine = build_engine(subscription("s0", a1=1), num_shards=1)
        hot = event(1, 0, 0)  # matched by s0
        cold = event(2, 0, 0)  # matched by nobody yet
        engine.match(hot)
        engine.match(cold)
        return engine, hot, cold

    def test_insert_evicts_only_matching_entries(self):
        engine, hot, cold = self.warm_engine()
        cache = engine._event_caches[0]
        assert len(cache) == 2
        engine.insert(subscription("s1", a1=2))  # matches only the cold event
        assert len(cache) == 1
        hits_before = cache.hits
        assert subscribers_of(engine.match(hot)) == {"s0"}
        assert cache.hits == hits_before + 1  # untouched entry kept serving
        assert subscribers_of(engine.match(cold)) == {"s1"}  # re-walked, exact

    def test_remove_evicts_only_entries_that_contained_it(self):
        engine, hot, cold = self.warm_engine()
        doomed = subscription("s1", a1=2)
        engine.insert(doomed)
        engine.match(cold)  # re-warm the entry the insert evicted
        cache = engine._event_caches[0]
        assert len(cache) == 2
        engine.remove(doomed.subscription_id)
        assert len(cache) == 1
        hits_before = cache.hits
        assert subscribers_of(engine.match(hot)) == {"s0"}
        assert cache.hits == hits_before + 1
        assert subscribers_of(engine.match(cold)) == set()

    def test_link_cache_repaired_too(self):
        engine = build_engine(subscription("s0", a1=1), num_shards=1)
        engine.bind_links(NUM_LINKS, link_of)
        mask = TritVector([M] * NUM_LINKS)
        hot, cold = event(1, 0, 0), event(2, 0, 0)
        engine.match_links(hot, mask)
        engine.match_links(cold, mask)
        cache = engine._link_caches[0]
        assert len(cache) == 2
        engine.insert(subscription("s1", a1=2))
        assert len(cache) == 1
        refined = engine.match_links(cold, mask)
        assert refined.mask[link_of(subscription("s1"))] == Y

    def test_oversized_caches_flush_instead_of_repairing(self, monkeypatch):
        import repro.matching.sharding as sharding

        engine, hot, cold = self.warm_engine()
        monkeypatch.setattr(sharding, "REPAIR_SCAN_LIMIT", 1)
        engine.insert(subscription("s9", a3=2))  # matches neither warm event
        assert len(engine._event_caches[0]) == 0  # wholesale flush path

    def test_capacity_zero_disables_shard_caches(self):
        engine = build_engine(
            subscription("s0", a1=1), num_shards=2, match_cache_capacity=0
        )
        assert engine._event_caches is None and engine._link_caches is None
        engine.bind_links(NUM_LINKS, link_of)
        target = event(1, 0, 0)
        for _ in range(2):  # every path must work cache-free
            assert subscribers_of(engine.match(target)) == {"s0"}
            engine.match_batch([target, target])
            engine.match_links(target, TritVector([M] * NUM_LINKS))
            engine.match_links_batch([target], TritVector([M] * NUM_LINKS))
        engine.insert(subscription("s1", a1=1))  # repair path no-ops
        engine.invalidate()

    def test_invalidate_flushes_shard_caches(self):
        engine, hot, cold = self.warm_engine()
        assert len(engine._event_caches[0]) == 2
        engine.invalidate()
        assert len(engine._event_caches[0]) == 0
        assert subscribers_of(engine.match(hot)) == {"s0"}


class TestConfigThreading:
    def test_router_accepts_shard_configuration(self, two_broker_topology, schema5):
        from repro.core import ContentRouter
        from repro.network import RoutingTable, spanning_trees_for_publishers
        from tests.conftest import make_subscription

        router = ContentRouter(
            two_broker_topology,
            "B0",
            RoutingTable(two_broker_topology, "B0"),
            spanning_trees_for_publishers(two_broker_topology),
            schema5,
            engine="sharded",
            shards=2,
            shard_policy="balanced",
        )
        router.add_subscription(make_subscription(schema5, "a1=1", "c0"))
        decision = router.route(Event.from_tuple(schema5, (1, 0, 0, 0, 0)), "B0")
        assert decision.deliver_to == ["c0"]

    def test_cli_parses_shard_flags(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            [
                "--engine", "sharded",
                "--shards", "2",
                "--shard-policy", "balanced",
                "--shard-workers", "1",
                "chart1",
            ]
        )
        assert (args.engine, args.shards) == ("sharded", 2)
        assert (args.shard_policy, args.shard_workers) == ("balanced", 1)
