"""The projection-keyed match cache: hits, invalidation, residency waste.

The cache may never change an answer — its contract is that equal
projections provably share results, and that any subscription churn or
annotation change flushes whatever the mutation could have staled.  The
stale-hit regressions here pin the bug class where a cached result survives
``insert``/``remove``/recompile and keeps answering with the old match set.
"""

from __future__ import annotations

import pytest

from repro.core import M, TritVector, Y
from repro.matching import Event, Predicate, Subscription, uniform_schema
from repro.matching.compile import (
    _CACHE_RESIDENCY_WASTE_SHIFT,
    DEFAULT_MATCH_CACHE_CAPACITY,
    ProjectionCache,
    compile_tree,
)
from repro.matching.engines import CompiledEngine
from repro.matching.predicates import EqualityTest
from repro.obs import MetricsRegistry, get_registry, set_registry

SCHEMA = uniform_schema(3)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}


@pytest.fixture
def live_registry():
    previous = set_registry(MetricsRegistry(enabled=True))
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def subscription(subscriber, **tests):
    predicate = Predicate(
        SCHEMA, {name: EqualityTest(value) for name, value in tests.items()}
    )
    return Subscription(predicate, subscriber)


def event(*values):
    return Event.from_tuple(SCHEMA, values)


def build_engine(*subscriptions, capacity=DEFAULT_MATCH_CACHE_CAPACITY):
    engine = CompiledEngine(SCHEMA, domains=DOMAINS, match_cache_capacity=capacity)
    for entry in subscriptions:
        engine.insert(entry)
    return engine


class TestProjectionCache:
    def test_lru_eviction_at_capacity(self):
        cache = ProjectionCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_and_miss_counters(self, live_registry):
        cache = ProjectionCache(4)
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert live_registry.counter("match.cache.hit", cache="match").value == 1
        assert live_registry.counter("match.cache.miss", cache="match").value == 1

    def test_flush_counts_only_when_resident(self, live_registry):
        cache = ProjectionCache(4)
        assert cache.flush() == 0
        assert cache.flushes == 0
        cache.put("k", "v")
        assert cache.flush() == 1
        assert cache.flushes == 1
        assert live_registry.counter("match.cache.flush", cache="match").value == 1

    def test_residency_gauge_tracks_fill(self, live_registry):
        cache = ProjectionCache(4)
        gauge = live_registry.gauge("match.cache.residency", cache="match")
        cache.put("a", 1)
        assert gauge.value == 0.25
        cache.put("b", 2)
        assert gauge.value == 0.5
        cache.flush()
        assert gauge.value == 0.0

    def test_evict_if_drops_only_flagged_entries(self, live_registry):
        cache = ProjectionCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.evict_if(lambda key, value: value % 2 == 1) == 2
        assert cache.get("b") == 2
        assert cache.get("a") is None
        assert live_registry.gauge("match.cache.residency", cache="match").value == 0.25
        # Nothing flagged: a no-op that reports zero.
        assert cache.evict_if(lambda key, value: False) == 0


class TestCachedMatching:
    def test_repeat_match_is_a_cache_hit(self):
        engine = build_engine(subscription("alice", a1=1))
        first = engine.match(event(1, 0, 0))
        again = engine.match(event(1, 0, 0))
        cache = engine.program.match_cache
        assert cache.hits == 1
        assert [s.subscriber for s in again.subscriptions] == ["alice"]
        assert again.steps == first.steps

    def test_equal_projection_shares_result_across_event_objects(self):
        engine = build_engine(subscription("alice", a1=1))
        engine.match(event(1, 2, 2))
        assert engine.program.match_cache.hits == 0
        engine.match(event(1, 2, 2))  # distinct Event object, same values
        assert engine.program.match_cache.hits == 1

    def test_capacity_zero_disables_caching(self):
        engine = build_engine(subscription("alice", a1=1), capacity=0)
        program = engine.program
        assert program.match_cache is None
        assert program.link_cache is None
        engine.match(event(1, 0, 0))
        engine.match(event(1, 0, 0))  # would be a hit if a cache existed


class TestInvalidation:
    def test_insert_invalidates_stale_hit(self):
        """Regression: a cached result must not hide a new subscription."""
        engine = build_engine(subscription("alice", a1=1))
        target = event(1, 1, 1)
        assert {s.subscriber for s in engine.match(target).subscriptions} == {"alice"}
        engine.insert(subscription("bob", a2=1))
        assert {s.subscriber for s in engine.match(target).subscriptions} == {
            "alice",
            "bob",
        }

    def test_remove_invalidates_stale_hit(self):
        """Regression: a cached result must not resurrect a removed one."""
        bob = subscription("bob", a2=1)
        engine = build_engine(subscription("alice", a1=1), bob)
        target = event(1, 1, 1)
        assert {s.subscriber for s in engine.match(target).subscriptions} == {
            "alice",
            "bob",
        }
        engine.remove(bob.subscription_id)
        assert {s.subscriber for s in engine.match(target).subscriptions} == {"alice"}

    def test_recompile_starts_with_empty_caches(self):
        engine = build_engine(subscription("alice", a1=1))
        engine.match(event(1, 0, 0))
        assert len(engine.program.match_cache) == 1
        engine.invalidate()
        assert len(engine.program.match_cache) == 0
        # Still correct, now recomputed against the fresh program.
        assert {
            s.subscriber for s in engine.match(event(1, 0, 0)).subscriptions
        } == {"alice"}

    def test_patch_charges_cache_residency_to_waste(self):
        """An incremental patch flushes resident entries and charges a share
        of them to the program's waste, so heavy churn against a hot cache
        eventually triggers the recompile heuristic."""
        engine = build_engine(subscription("alice", a1=1))
        program = engine.program
        for a in DOMAIN:
            for b in DOMAIN:
                engine.match(event(a, b, 0))
        resident = len(program.match_cache)
        assert resident == len(DOMAIN) ** 2
        waste_before = program.waste
        engine.insert(subscription("bob", a3=2))
        assert engine.program is program  # patched in place, not recompiled
        assert len(program.match_cache) == 0
        expected_charge = resident >> _CACHE_RESIDENCY_WASTE_SHIFT
        assert program.waste == waste_before + expected_charge

    def test_invalidate_flushes_caches_and_resets_waste_gauge(self, live_registry):
        """Regression: ``invalidate()`` discards the program, so the caches
        living on it must flush (their counters are program-independent
        aggregates) and the waste gauge must return to zero — a fresh
        compile starts waste-free."""
        engine = build_engine(subscription("alice", a1=1))
        engine.bind_links(1, lambda s: 0)
        program = engine.program
        for a in DOMAIN:
            engine.match(event(a, 0, 0))
        engine.match_links(event(1, 0, 0), TritVector([M]))
        assert len(program.match_cache) == len(DOMAIN)
        assert len(program.link_cache) == 1
        engine.insert(subscription("bob", a2=1))  # patch: charges cache waste
        gauge = live_registry.gauge("engine.compiled.waste_ratio")
        assert gauge.value > 0.0
        flushes = live_registry.counter("match.cache.flush", cache="match").value
        engine.match(event(1, 0, 0))  # re-warm so invalidate has entries to drop
        engine.invalidate()
        assert gauge.value == 0.0
        assert len(program.match_cache) == 0
        assert len(program.link_cache) == 0
        assert (
            live_registry.counter("match.cache.flush", cache="match").value
            == flushes + 1
        )
        assert {
            s.subscriber for s in engine.match(event(1, 1, 0)).subscriptions
        } == {"alice", "bob"}

    def test_annotate_flushes_link_cache_but_not_match_cache(self):
        engine = build_engine(subscription("s0", a1=1), subscription("s1", a2=2))
        engine.bind_links(2, lambda s: int(s.subscriber[1:]))
        mask = TritVector([M, M])
        engine.match(event(1, 2, 0))
        engine.match_links(event(1, 2, 0), mask)
        program = engine.program
        assert len(program.match_cache) == 1
        assert len(program.link_cache) == 1
        program.annotate(2, lambda s: int(s.subscriber[1:]))
        assert len(program.link_cache) == 0  # refinements depend on annotations
        assert len(program.match_cache) == 1  # match results do not

    def test_link_cache_keyed_by_mask_too(self):
        engine = build_engine(subscription("s0", a1=1), subscription("s1", a2=2))
        engine.bind_links(2, lambda s: int(s.subscriber[1:]))
        target = event(1, 2, 0)
        refined_mm = engine.match_links(target, TritVector([M, M]))
        refined_ym = engine.match_links(target, TritVector([Y, M]))
        assert len(engine.program.link_cache) == 2
        cached_mm = engine.match_links(target, TritVector([M, M]))
        assert cached_mm.mask == refined_mm.mask
        assert cached_mm.steps == refined_mm.steps
        assert refined_ym.mask[0] == Y

    def test_churn_never_serves_stale_results(self):
        """Alternating hot-key matches with churn on the same projection."""
        engine = build_engine()
        target = event(2, 2, 2)
        live = []
        for index in range(6):
            entry = subscription(f"n{index}", a1=2)
            live.append(entry)
            engine.insert(entry)
            assert {s.subscriber for s in engine.match(target).subscriptions} == {
                s.subscriber for s in live
            }
        while live:
            gone = live.pop()
            engine.remove(gone.subscription_id)
            assert {s.subscriber for s in engine.match(target).subscriptions} == {
                s.subscriber for s in live
            }


class TestCompileTreeCapacity:
    def test_compile_tree_default_has_caches(self):
        from repro.matching.pst import ParallelSearchTree

        tree = ParallelSearchTree(SCHEMA)
        tree.insert(subscription("alice", a1=1))
        program = compile_tree(tree)
        assert program.match_cache is not None
        assert program.match_cache.capacity == DEFAULT_MATCH_CACHE_CAPACITY

    def test_compile_tree_capacity_zero_disables(self):
        from repro.matching.pst import ParallelSearchTree

        tree = ParallelSearchTree(SCHEMA)
        tree.insert(subscription("alice", a1=1))
        program = compile_tree(tree, cache_capacity=0)
        assert program.match_cache is None
