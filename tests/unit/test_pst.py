"""Unit tests for the Parallel Search Tree (Section 2)."""

from __future__ import annotations

import random

import pytest

from repro.errors import SubscriptionError
from repro.matching import (
    Event,
    ParallelSearchTree,
    Predicate,
    RangeOp,
    RangeTest,
    Subscription,
    build_pst,
)
from tests.conftest import make_subscription


def figure2_tree(schema5) -> ParallelSearchTree:
    """A small tree in the spirit of Figure 2."""
    subscriptions = [
        make_subscription(schema5, "a1=1 & a2=2 & a3=3 & a5=3", "s1"),
        make_subscription(schema5, "a1=1 & a2=2", "s2"),
        make_subscription(schema5, "a3=3", "s3"),
        make_subscription(schema5, "a1=1 & a3=4", "s4"),
    ]
    return build_pst(schema5, subscriptions)


class TestInsertAndStructure:
    def test_empty_tree(self, schema5):
        tree = ParallelSearchTree(schema5)
        assert len(tree) == 0
        result = tree.match(Event.from_tuple(schema5, (1, 2, 3, 4, 5)))
        assert result.subscriptions == []
        assert result.steps >= 1

    def test_insert_registers(self, schema5):
        tree = ParallelSearchTree(schema5)
        sub = make_subscription(schema5, "a1=1", "alice")
        tree.insert(sub)
        assert len(tree) == 1
        assert sub.subscription_id in tree

    def test_duplicate_id_rejected(self, schema5):
        tree = ParallelSearchTree(schema5)
        sub = make_subscription(schema5, "a1=1", "alice")
        tree.insert(sub)
        with pytest.raises(SubscriptionError):
            tree.insert(sub)

    def test_wrong_schema_rejected(self, schema5, stock_schema):
        tree = ParallelSearchTree(schema5)
        with pytest.raises(SubscriptionError):
            tree.insert(make_subscription(stock_schema, "issue='IBM'", "alice"))

    def test_unsatisfiable_rejected(self, schema5):
        tree = ParallelSearchTree(schema5)
        predicate = Predicate(
            schema5,
            {"a1": [RangeTest(RangeOp.GT, 5), RangeTest(RangeOp.LT, 3)]},
        )
        with pytest.raises(SubscriptionError):
            tree.insert(Subscription(predicate, "alice"))

    def test_shared_prefixes_share_nodes(self, schema5):
        # Two subscriptions sharing a1=1 & a2=2 should share that path.
        tree = build_pst(
            schema5,
            [
                make_subscription(schema5, "a1=1 & a2=2 & a3=1", "x"),
                make_subscription(schema5, "a1=1 & a2=2 & a3=2", "y"),
            ],
        )
        solo = build_pst(
            schema5, [make_subscription(schema5, "a1=1 & a2=2 & a3=1", "x")]
        )
        # Adding the second subscription costs fewer nodes than a new path.
        assert tree.node_count() < 2 * solo.node_count()

    def test_attribute_order_permutation_checked(self, schema5):
        with pytest.raises(SubscriptionError):
            ParallelSearchTree(schema5, attribute_order=["a1", "a2"])

    def test_custom_attribute_order(self, schema5):
        tree = ParallelSearchTree(
            schema5, attribute_order=["a5", "a4", "a3", "a2", "a1"]
        )
        sub = make_subscription(schema5, "a5=3", "alice")
        tree.insert(sub)
        event_hit = Event.from_tuple(schema5, (0, 0, 0, 0, 3))
        event_miss = Event.from_tuple(schema5, (3, 0, 0, 0, 0))
        assert tree.match(event_hit).subscribers == {"alice"}
        assert tree.match(event_miss).subscribers == set()


class TestMatching:
    def test_figure2_walk(self, schema5):
        tree = figure2_tree(schema5)
        result = tree.match(Event.from_tuple(schema5, (1, 2, 3, 1, 2)))
        assert result.subscribers == {"s2", "s3"}

    def test_figure2_all_matching(self, schema5):
        tree = figure2_tree(schema5)
        result = tree.match(Event.from_tuple(schema5, (1, 2, 3, 1, 3)))
        assert result.subscribers == {"s1", "s2", "s3"}

    def test_star_only_path(self, schema5):
        tree = figure2_tree(schema5)
        result = tree.match(Event.from_tuple(schema5, (9, 9, 3, 9, 9)))
        assert result.subscribers == {"s3"}

    def test_no_match(self, schema5):
        tree = figure2_tree(schema5)
        assert tree.match(Event.from_tuple(schema5, (9, 9, 9, 9, 9))).subscribers == set()

    def test_range_branches(self, stock_schema):
        tree = build_pst(
            stock_schema,
            [
                make_subscription(stock_schema, "price<120", "cheap"),
                make_subscription(stock_schema, "price>=120", "expensive"),
            ],
        )
        low = Event(stock_schema, {"issue": "X", "price": 100.0, "volume": 1})
        high = Event(stock_schema, {"issue": "X", "price": 150.0, "volume": 1})
        assert tree.match(low).subscribers == {"cheap"}
        assert tree.match(high).subscribers == {"expensive"}

    def test_matches_equal_brute_force_randomized(self, schema5):
        rng = random.Random(5)
        subscriptions = []
        for i in range(120):
            tests = [
                f"a{j}={rng.randrange(3)}" for j in range(1, 6) if rng.random() < 0.5
            ]
            subscriptions.append(
                make_subscription(schema5, " & ".join(tests) if tests else "*", f"s{i}")
            )
        tree = build_pst(schema5, subscriptions)
        for _ in range(200):
            event = Event.from_tuple(
                schema5, tuple(rng.randrange(3) for _ in range(5))
            )
            expected = {s.subscription_id for s in tree.match_brute_force(event)}
            actual = {s.subscription_id for s in tree.match(event).subscriptions}
            assert actual == expected

    def test_steps_counted(self, schema5):
        tree = figure2_tree(schema5)
        result = tree.match(Event.from_tuple(schema5, (1, 2, 3, 1, 2)))
        assert result.steps >= 5  # at least the constrained path is walked

    def test_wrong_schema_event(self, schema5, ibm_event):
        tree = figure2_tree(schema5)
        with pytest.raises(SubscriptionError):
            tree.match(ibm_event)

    def test_duplicate_subscriber_reported_once_per_subscription(self, schema5):
        a = make_subscription(schema5, "a1=1", "alice")
        b = make_subscription(schema5, "a2=2", "alice")
        tree = build_pst(schema5, [a, b])
        result = tree.match(Event.from_tuple(schema5, (1, 2, 0, 0, 0)))
        assert len(result.subscriptions) == 2
        assert result.subscribers == {"alice"}


class TestRemove:
    def test_remove_returns_subscription(self, schema5):
        tree = figure2_tree(schema5)
        target = next(s for s in tree.subscriptions if s.subscriber == "s3")
        removed = tree.remove(target.subscription_id)
        assert removed is target
        assert len(tree) == 3

    def test_removed_subscription_no_longer_matches(self, schema5):
        tree = figure2_tree(schema5)
        target = next(s for s in tree.subscriptions if s.subscriber == "s3")
        tree.remove(target.subscription_id)
        result = tree.match(Event.from_tuple(schema5, (9, 9, 3, 9, 9)))
        assert result.subscribers == set()

    def test_remove_unknown_id(self, schema5):
        tree = figure2_tree(schema5)
        with pytest.raises(SubscriptionError):
            tree.remove(999_999_999)

    def test_remove_prunes_empty_branches(self, schema5):
        tree = ParallelSearchTree(schema5)
        sub = make_subscription(schema5, "a1=1 & a2=2", "alice")
        tree.insert(sub)
        nodes_with = tree.node_count()
        tree.remove(sub.subscription_id)
        assert tree.node_count() < nodes_with
        # Root always remains.
        assert tree.node_count() == 1

    def test_remove_all_then_reinsert(self, schema5):
        subscriptions = [
            make_subscription(schema5, "a1=1", "a"),
            make_subscription(schema5, "a1=2 & a3=1", "b"),
        ]
        tree = build_pst(schema5, subscriptions)
        for sub in subscriptions:
            tree.remove(sub.subscription_id)
        assert len(tree) == 0
        again = make_subscription(schema5, "a1=1", "a")
        tree.insert(again)
        assert tree.match(Event.from_tuple(schema5, (1, 0, 0, 0, 0))).subscribers == {"a"}


class TestTrivialTestElimination:
    def test_eliminates_star_only_levels(self, schema5):
        tree = build_pst(schema5, [make_subscription(schema5, "a5=3", "alice")])
        before = tree.node_count()
        eliminated = tree.eliminate_trivial_tests()
        assert eliminated == 4  # a1..a4 levels were pure-star
        assert tree.node_count() == before - eliminated

    def test_matching_unchanged_after_elimination(self, schema5):
        tree = figure2_tree(schema5)
        events = [
            Event.from_tuple(schema5, (a, b, c, 1, e))
            for a in range(3)
            for b in range(3)
            for c in range(4)
            for e in range(4)
        ]
        expected = [
            {s.subscription_id for s in tree.match(event).subscriptions}
            for event in events
        ]
        tree.eliminate_trivial_tests()
        for event, want in zip(events, expected):
            got = {s.subscription_id for s in tree.match(event).subscriptions}
            assert got == want

    def test_steps_do_not_increase(self, schema5):
        tree = figure2_tree(schema5)
        event = Event.from_tuple(schema5, (1, 2, 3, 1, 3))
        before = tree.match(event).steps
        tree.eliminate_trivial_tests()
        assert tree.match(event).steps <= before

    def test_insert_after_elimination_rematerializes(self, schema5):
        tree = build_pst(schema5, [make_subscription(schema5, "a5=3", "alice")])
        tree.eliminate_trivial_tests()
        # This subscription constrains a2, a level that was spliced out.
        newcomer = make_subscription(schema5, "a2=7 & a5=3", "bob")
        tree.insert(newcomer)
        hit = Event.from_tuple(schema5, (0, 7, 0, 0, 3))
        miss = Event.from_tuple(schema5, (0, 8, 0, 0, 3))
        assert tree.match(hit).subscribers == {"alice", "bob"}
        assert tree.match(miss).subscribers == {"alice"}

    def test_remove_after_elimination(self, schema5):
        alice = make_subscription(schema5, "a5=3", "alice")
        bob = make_subscription(schema5, "a3=1 & a5=3", "bob")
        tree = build_pst(schema5, [alice, bob])
        tree.eliminate_trivial_tests()
        tree.remove(bob.subscription_id)
        event = Event.from_tuple(schema5, (0, 0, 1, 0, 3))
        assert tree.match(event).subscribers == {"alice"}


class TestDomains:
    def test_domain_validation(self, schema5):
        with pytest.raises(Exception):
            ParallelSearchTree(schema5, domains={"zzz": [1, 2]})

    def test_domain_lookup(self, schema5):
        tree = ParallelSearchTree(schema5, domains={"a1": [0, 1, 2]})
        assert tree.domain_of(0) == frozenset({0, 1, 2})
        assert tree.domain_of(1) is None
