"""Unit tests for event schemas and information spaces."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.matching import (
    Attribute,
    AttributeType,
    EventSchema,
    InformationSpace,
    stock_trade_schema,
    uniform_schema,
)


class TestAttributeType:
    def test_coerce_integer_accepts_int(self):
        assert AttributeType.INTEGER.coerce(7) == 7

    def test_coerce_integer_rejects_bool(self):
        # bool subclasses int in Python; silently accepting it invites bugs.
        with pytest.raises(SchemaError):
            AttributeType.INTEGER.coerce(True)

    def test_coerce_integer_rejects_float(self):
        with pytest.raises(SchemaError):
            AttributeType.INTEGER.coerce(1.5)

    def test_coerce_float_widens_int(self):
        value = AttributeType.FLOAT.coerce(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_coerce_dollar_widens_int(self):
        assert AttributeType.DOLLAR.coerce(120) == 120.0

    def test_coerce_float_rejects_bool(self):
        with pytest.raises(SchemaError):
            AttributeType.FLOAT.coerce(False)

    def test_coerce_string(self):
        assert AttributeType.STRING.coerce("IBM") == "IBM"

    def test_coerce_string_rejects_number(self):
        with pytest.raises(SchemaError):
            AttributeType.STRING.coerce(42)

    def test_coerce_boolean(self):
        assert AttributeType.BOOLEAN.coerce(True) is True

    def test_coerce_boolean_rejects_int(self):
        with pytest.raises(SchemaError):
            AttributeType.BOOLEAN.coerce(1)

    def test_boolean_is_not_ordered(self):
        assert not AttributeType.BOOLEAN.is_ordered

    def test_numbers_and_strings_are_ordered(self):
        for type in (AttributeType.STRING, AttributeType.INTEGER, AttributeType.FLOAT):
            assert type.is_ordered


class TestAttribute:
    def test_equality_by_name_and_type(self):
        assert Attribute("a", AttributeType.STRING) == Attribute("a", AttributeType.STRING)
        assert Attribute("a", AttributeType.STRING) != Attribute("a", AttributeType.INTEGER)
        assert Attribute("a", AttributeType.STRING) != Attribute("b", AttributeType.STRING)

    def test_hashable(self):
        attributes = {Attribute("a", AttributeType.STRING), Attribute("a", AttributeType.STRING)}
        assert len(attributes) == 1

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeType.STRING)

    def test_rejects_leading_digit(self):
        with pytest.raises(SchemaError):
            Attribute("1bad", AttributeType.STRING)

    def test_rejects_bad_characters(self):
        with pytest.raises(SchemaError):
            Attribute("a-b", AttributeType.STRING)


class TestEventSchema:
    def test_from_pairs_with_string_types(self):
        schema = EventSchema([("issue", "string"), ("price", "dollar")])
        assert schema.names == ("issue", "price")
        assert schema["price"].type is AttributeType.DOLLAR

    def test_unknown_string_type_rejected(self):
        with pytest.raises(SchemaError):
            EventSchema([("x", "decimal")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            EventSchema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            EventSchema([("a", "string"), ("a", "integer")])

    def test_position_of(self, stock_schema):
        assert stock_schema.position_of("issue") == 0
        assert stock_schema.position_of("volume") == 2

    def test_position_of_unknown(self, stock_schema):
        with pytest.raises(SchemaError):
            stock_schema.position_of("nope")

    def test_contains(self, stock_schema):
        assert "price" in stock_schema
        assert "nope" not in stock_schema

    def test_getitem_by_index_and_name(self, stock_schema):
        assert stock_schema[0].name == "issue"
        assert stock_schema["volume"].name == "volume"

    def test_len_and_iter(self, stock_schema):
        assert len(stock_schema) == 3
        assert [a.name for a in stock_schema] == ["issue", "price", "volume"]

    def test_validate_values_roundtrip(self, stock_schema):
        values = stock_schema.validate_values({"issue": "IBM", "price": 10, "volume": 5})
        assert values == {"issue": "IBM", "price": 10.0, "volume": 5}

    def test_validate_values_missing(self, stock_schema):
        with pytest.raises(SchemaError, match="missing"):
            stock_schema.validate_values({"issue": "IBM"})

    def test_validate_values_unknown(self, stock_schema):
        with pytest.raises(SchemaError, match="unknown"):
            stock_schema.validate_values(
                {"issue": "IBM", "price": 1, "volume": 2, "extra": 3}
            )

    def test_tuple_of_preserves_order(self, stock_schema):
        values = {"volume": 5, "issue": "IBM", "price": 1.0}
        assert stock_schema.tuple_of(values) == ("IBM", 1.0, 5)

    def test_reordered(self, stock_schema):
        reordered = stock_schema.reordered(["volume", "issue", "price"])
        assert reordered.names == ("volume", "issue", "price")
        # Original untouched.
        assert stock_schema.names == ("issue", "price", "volume")

    def test_reordered_rejects_non_permutation(self, stock_schema):
        with pytest.raises(SchemaError):
            stock_schema.reordered(["volume", "issue"])

    def test_equality_and_hash(self):
        assert stock_trade_schema() == stock_trade_schema()
        assert hash(stock_trade_schema()) == hash(stock_trade_schema())
        assert stock_trade_schema() != uniform_schema(3)


class TestHelpers:
    def test_uniform_schema_names(self):
        schema = uniform_schema(3)
        assert schema.names == ("a1", "a2", "a3")
        assert all(a.type is AttributeType.INTEGER for a in schema)

    def test_uniform_schema_rejects_zero(self):
        with pytest.raises(SchemaError):
            uniform_schema(0)

    def test_stock_trade_schema_types(self):
        schema = stock_trade_schema()
        assert schema["issue"].type is AttributeType.STRING
        assert schema["price"].type is AttributeType.DOLLAR
        assert schema["volume"].type is AttributeType.INTEGER

    def test_information_space(self, stock_schema):
        space = InformationSpace("trades", stock_schema)
        assert space == InformationSpace("trades", stock_trade_schema())
        assert space != InformationSpace("quotes", stock_schema)

    def test_information_space_rejects_empty_name(self, stock_schema):
        with pytest.raises(SchemaError):
            InformationSpace("", stock_schema)
