"""Units for the fault-injection layer: plans, actions, coordinator basics."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.matching import Event, Subscription, parse_predicate, uniform_schema
from repro.network.figures import linear_chain
from repro.protocols import LinkMatchingProtocol, ProtocolContext
from repro.sim import (
    FaultAction,
    FaultPlan,
    NetworkSimulation,
    check_invariants,
)

SCHEMA = uniform_schema(3)
DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 4)}


def build_topology():
    topology = linear_chain(5, subscribers_per_broker=2)
    topology.add_link("B1", "B3", latency_ms=25.0)
    return topology


def build_simulation(plan, *, seed=7, events=80, repair_delay_ms=5.0, **kwargs):
    topology = build_topology()
    rng = random.Random(1)
    subscriptions = []
    for client in sorted(topology.subscribers()):
        tests = [f"a{j}={rng.randrange(3)}" for j in range(1, 4) if rng.random() < 0.5]
        expression = " & ".join(tests) if tests else "*"
        subscriptions.append(Subscription(parse_predicate(SCHEMA, expression), client))
    context = ProtocolContext(topology, SCHEMA, subscriptions, domains=DOMAINS)
    simulation = NetworkSimulation(
        topology,
        LinkMatchingProtocol(context),
        seed=seed,
        fault_plan=plan,
        repair_delay_ms=repair_delay_ms,
        **kwargs,
    )
    simulation.add_poisson_publisher(
        "P1",
        60.0,
        lambda r: Event.from_tuple(SCHEMA, tuple(r.randrange(3) for _ in range(3))),
        events,
    )
    return simulation


# ----------------------------------------------------------------------
# FaultAction


def test_action_requires_exactly_one_trigger():
    with pytest.raises(SimulationError):
        FaultAction("fail_broker", "B1")
    with pytest.raises(SimulationError):
        FaultAction("fail_broker", "B1", at_s=1.0, after_events=5)


def test_action_validates_fields():
    with pytest.raises(SimulationError):
        FaultAction("explode", "B1", at_s=1.0)
    with pytest.raises(SimulationError):
        FaultAction.fail_broker("B1", at_s=-0.5)
    with pytest.raises(SimulationError):
        FaultAction.fail_link("A", "B", after_events=0)
    with pytest.raises(SimulationError):
        FaultAction("join_broker", "B9", at_s=1.0)  # needs attach_to


def test_action_constructors_round_trip():
    action = FaultAction.join_broker(
        "B9", attach_to="B1", clients=("S.B9.0",), at_s=2.0, latency_ms=12.0
    )
    assert action.kind == "join_broker"
    assert action.attach_to == "B1"
    assert action.clients == ("S.B9.0",)
    assert action.latency_ms == 12.0
    assert "join_broker" in repr(action)


# ----------------------------------------------------------------------
# FaultPlan


def test_random_plan_spares_publisher_brokers():
    topology = build_topology()
    for seed in range(20):
        plan = FaultPlan.random(topology, seed=seed, failures=3)
        for action in plan:
            if action.kind == "fail_broker":
                assert action.target != "B0"  # hosts P1


def test_random_plan_targets_each_element_once():
    topology = build_topology()
    for seed in range(20):
        plan = FaultPlan.random(topology, seed=seed, failures=4)
        failed = [a.target for a in plan if a.kind.startswith("fail")]
        assert len(failed) == len(set(failed))
        # Every failure is paired with a later recovery of the same element.
        for action in plan:
            if not action.kind.startswith("fail"):
                continue
            kind = action.kind.replace("fail", "recover")
            partner = next(a for a in plan if a.kind == kind and a.target == action.target)
            assert partner.at_s > action.at_s


def test_random_plan_respects_spare_list():
    topology = build_topology()
    plan = FaultPlan.random(topology, seed=3, failures=10, spare=("B1", "B2", "B3", "B4"))
    assert all(a.kind in ("fail_link", "recover_link") for a in plan)


# ----------------------------------------------------------------------
# Coordinator


def test_coordinator_rejects_negative_delays():
    with pytest.raises(SimulationError):
        build_simulation(FaultPlan([]), repair_delay_ms=-1.0)


def test_coordinator_rejects_unsupported_protocol():
    from repro.protocols.base import Decision, RoutingProtocol

    class NoFaults(RoutingProtocol):
        name = "no-faults"
        supports_faults = False

        def handle(self, broker, message):
            return Decision(sends=[], deliveries=[], matching_steps=0)

    topology = build_topology()
    context = ProtocolContext(topology, SCHEMA, [], domains=DOMAINS)
    with pytest.raises(SimulationError):
        NetworkSimulation(
            topology,
            NoFaults(context),
            fault_plan=FaultPlan([FaultAction.fail_broker("B2", at_s=1.0)]),
        )


def test_empty_plan_keeps_run_undisturbed():
    simulation = build_simulation(FaultPlan([]), events=40)
    result = simulation.run()
    report = check_invariants(result, simulation.faults)
    assert report.ok
    assert report.disturbed_events == 0
    assert report.events_checked == 40


def test_leave_broker_refuses_publisher_host():
    plan = FaultPlan([FaultAction.leave_broker("B0", at_s=0.2)])
    simulation = build_simulation(plan, events=30)
    with pytest.raises(SimulationError):
        simulation.run()


def test_link_failure_composes_with_broker_failure():
    """Fail a broker, then independently fail one of its (islanded) links;
    recover in the same order.  The link must come back exactly once."""
    plan = FaultPlan(
        [
            FaultAction.fail_broker("B2", at_s=0.3),
            FaultAction.fail_link("B1", "B2", at_s=0.5),
            FaultAction.recover_broker("B2", at_s=0.7),
            FaultAction.recover_link("B1", "B2", at_s=0.9),
        ]
    )
    simulation = build_simulation(plan, events=80)
    result = simulation.run()
    assert simulation.topology.has_link("B1", "B2")
    assert simulation.topology.has_link("B2", "B3")
    report = check_invariants(result, simulation.faults)
    assert report.ok, (report.lost[:5], report.duplicates[:5])


def test_fault_metrics_recorded():
    plan = FaultPlan(
        [
            FaultAction.fail_broker("B2", at_s=0.4),
            FaultAction.recover_broker("B2", at_s=0.8),
        ]
    )
    simulation = build_simulation(plan, events=80)
    result = simulation.run()
    metrics = result.counter_snapshot()
    assert metrics["sim.fault.actions_applied"]["value"] == 2
    assert metrics["sim.fault.repairs"]["value"] >= 2
    assert metrics["sim.fault.brokers_down"]["value"] == 0
    report = check_invariants(result, simulation.faults)
    assert report.ok
