"""Unit tests for the analytical matching-cost model's components."""

from __future__ import annotations

import pytest

from repro.analysis import MatchingCostModel
from repro.workload import WorkloadSpec

UNIFORM = WorkloadSpec(
    num_attributes=4,
    values_per_attribute=4,
    factoring_levels=0,
    zipf_exponent=0.0,
    locality_regions=1,
    first_non_star_probability=0.5,
    non_star_decay=1.0,  # flat: every attribute constrained w.p. 0.5
)


class TestComponents:
    def test_uniform_match_probability(self):
        model = MatchingCostModel(UNIFORM, 10)
        assert model.match_probability_per_position == pytest.approx(0.25)

    def test_zipf_match_probability_exceeds_uniform(self):
        zipf = WorkloadSpec(
            num_attributes=4, values_per_attribute=4, factoring_levels=0,
            zipf_exponent=1.0, locality_regions=1,
        )
        model = MatchingCostModel(zipf, 10)
        assert model.match_probability_per_position > 0.25

    def test_pattern_probability_all_star(self):
        model = MatchingCostModel(UNIFORM, 10)
        # P(prefix of length 2 entirely unconstrained) = 0.5 * 0.5.
        assert model.pattern_probability((False, False)) == pytest.approx(0.25)

    def test_pattern_probability_constrained(self):
        model = MatchingCostModel(UNIFORM, 10)
        # Constrained-and-compatible: p * m = 0.5 * 0.25 per position.
        assert model.pattern_probability((True,)) == pytest.approx(0.125)
        assert model.pattern_probability((True, False)) == pytest.approx(0.125 * 0.5)

    def test_pattern_probabilities_cover_compatibility_mass(self):
        model = MatchingCostModel(UNIFORM, 10)
        # Summing P over all 2^j patterns gives P(prefix compatible with the
        # event) = prod(1 - p_k (1 - m)).
        import itertools

        total = sum(
            model.pattern_probability(pattern)
            for pattern in itertools.product((False, True), repeat=3)
        )
        expected = (1 - 0.5 * (1 - 0.25)) ** 3
        assert total == pytest.approx(expected)

    def test_visited_prefixes_bounded_by_pattern_count(self):
        model = MatchingCostModel(UNIFORM, 10**9)  # effectively infinite S
        for level in range(1, 5):
            visited = model.expected_visited_prefixes(level)
            assert visited <= 2**level + 1e-9

    def test_visited_prefixes_monotone_in_subscriptions(self):
        small = MatchingCostModel(UNIFORM, 10)
        large = MatchingCostModel(UNIFORM, 1000)
        for level in range(1, 5):
            assert large.expected_visited_prefixes(level) >= (
                small.expected_visited_prefixes(level)
            )

    def test_expected_matches_linear_in_subscriptions(self):
        small = MatchingCostModel(UNIFORM, 100)
        large = MatchingCostModel(UNIFORM, 200)
        assert large.expected_matches() == pytest.approx(2 * small.expected_matches())

    def test_selectivity_independent_of_count(self):
        a = MatchingCostModel(UNIFORM, 100).expected_selectivity()
        b = MatchingCostModel(UNIFORM, 10000).expected_selectivity()
        assert a == pytest.approx(b)


class TestWorkloadRedundancy:
    def test_selective_workload_has_little_redundancy(self):
        from repro.analysis import measure_workload_redundancy
        from repro.workload import CHART1_SPEC

        redundancy = measure_workload_redundancy(CHART1_SPEC, 300, subscribers=5)
        assert redundancy < 0.25

    def test_loose_workload_is_mostly_redundant(self):
        from repro.analysis import measure_workload_redundancy

        loose = WorkloadSpec(
            num_attributes=4, values_per_attribute=2, factoring_levels=0,
            first_non_star_probability=0.5, non_star_decay=1.0, locality_regions=1,
        )
        assert measure_workload_redundancy(loose, 300, subscribers=3) > 0.5

    def test_empty_workload(self):
        from repro.analysis import measure_workload_redundancy
        from repro.workload import CHART1_SPEC

        assert measure_workload_redundancy(CHART1_SPEC, 0) == 0.0
