"""Unit tests for the discrete-event engine and tick conversions."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import (
    TICK_US,
    Simulator,
    ms_to_ticks,
    seconds_to_ticks,
    ticks_to_ms,
    ticks_to_seconds,
    us_to_ticks,
)


class TestTickConversions:
    def test_tick_is_12_microseconds(self):
        assert TICK_US == 12.0

    def test_us_to_ticks_rounds(self):
        assert us_to_ticks(12.0) == 1
        assert us_to_ticks(18.0) == 2  # rounds to nearest
        assert us_to_ticks(5.0) == 0

    def test_ms_to_ticks(self):
        assert ms_to_ticks(1.0) == 83  # 1000/12 rounded

    def test_seconds_to_ticks(self):
        assert seconds_to_ticks(1.0) == 83333

    def test_roundtrips_approximately(self):
        assert abs(ticks_to_ms(ms_to_ticks(65.0)) - 65.0) < 0.01
        assert abs(ticks_to_seconds(seconds_to_ticks(0.5)) - 0.5) < 1e-4

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            us_to_ticks(-1.0)


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(30, lambda: order.append("c"))
        simulator.schedule(10, lambda: order.append("a"))
        simulator.schedule(20, lambda: order.append("b"))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_fifo_within_same_tick(self):
        simulator = Simulator()
        order = []
        simulator.schedule(5, lambda: order.append(1))
        simulator.schedule(5, lambda: order.append(2))
        simulator.schedule(5, lambda: order.append(3))
        simulator.run()
        assert order == [1, 2, 3]

    def test_now_advances(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(7, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [7]
        assert simulator.now == 7

    def test_callbacks_can_schedule_more(self):
        simulator = Simulator()
        hits = []

        def tick():
            hits.append(simulator.now)
            if len(hits) < 3:
                simulator.schedule(10, tick)

        simulator.schedule(0, tick)
        simulator.run()
        assert hits == [0, 10, 20]

    def test_run_until_caps_clock(self):
        simulator = Simulator()
        hits = []
        simulator.schedule(10, lambda: hits.append("early"))
        simulator.schedule(100, lambda: hits.append("late"))
        simulator.run(until_ticks=50)
        assert hits == ["early"]
        assert simulator.now == 50
        assert simulator.pending == 1

    def test_resume_after_horizon(self):
        simulator = Simulator()
        hits = []
        simulator.schedule(100, lambda: hits.append("late"))
        simulator.run(until_ticks=50)
        simulator.run()
        assert hits == ["late"]

    def test_cannot_schedule_in_past(self):
        simulator = Simulator()
        simulator.schedule(10, lambda: simulator.schedule_at(5, lambda: None))
        with pytest.raises(SimulationError):
            simulator.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_request_stop(self):
        simulator = Simulator()
        hits = []
        simulator.schedule(1, lambda: hits.append(1))
        simulator.schedule(2, simulator.request_stop)
        simulator.schedule(3, lambda: hits.append(3))
        simulator.run()
        assert hits == [1]
        assert simulator.pending == 1

    def test_processed_events_counted(self):
        simulator = Simulator()
        for delay in range(5):
            simulator.schedule(delay, lambda: None)
        simulator.run()
        assert simulator.processed_events == 5

    def test_run_until_with_empty_queue_advances_clock(self):
        simulator = Simulator()
        simulator.run(until_ticks=42)
        assert simulator.now == 42
