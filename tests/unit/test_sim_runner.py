"""Unit tests for the simulation runner, brokers and publisher processes."""

from __future__ import annotations


import pytest

from repro.errors import SimulationError
from repro.matching import Event, uniform_schema
from repro.protocols import LinkMatchingProtocol, ProtocolContext
from repro.sim import NetworkSimulation, ms_to_ticks
from tests.conftest import make_subscription

SCHEMA2 = uniform_schema(2)


def make_network(topology, subscriber_expressions):
    """Build a link-matching simulation over ``topology`` with the given
    {subscriber: expression} subscriptions."""
    subscriptions = [
        make_subscription(SCHEMA2, expression, subscriber)
        for subscriber, expression in subscriber_expressions.items()
    ]
    context = ProtocolContext(topology, SCHEMA2, subscriptions)
    return NetworkSimulation(topology, LinkMatchingProtocol(context), seed=1)


class TestPublishing:
    def test_publish_delivers_to_matching_subscriber(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "a1=1"})
        simulation.publish("P1", Event.from_tuple(SCHEMA2, (1, 0)))
        result = simulation.run()
        assert len(result.deliveries) == 1
        assert result.deliveries[0].client == "c1"
        assert result.deliveries[0].matched

    def test_non_matching_event_not_delivered(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "a1=1"})
        simulation.publish("P1", Event.from_tuple(SCHEMA2, (2, 0)))
        result = simulation.run()
        assert result.deliveries == []

    def test_only_publishers_may_publish(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {})
        with pytest.raises(SimulationError):
            simulation.publish("c0", Event.from_tuple(SCHEMA2, (1, 0)))

    def test_latency_includes_all_hops(self, two_broker_topology):
        # Client link 1 ms up, broker link 10 ms, client link 1 ms down,
        # plus broker service times.
        simulation = make_network(two_broker_topology, {"c1": "a1=1"})
        simulation.publish("P1", Event.from_tuple(SCHEMA2, (1, 0)))
        result = simulation.run()
        record = result.deliveries[0]
        assert record.latency_ticks >= ms_to_ticks(12.0)

    def test_link_counters(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "a1=1"})
        for _ in range(3):
            simulation.publish("P1", Event.from_tuple(SCHEMA2, (1, 0)))
        result = simulation.run()
        assert result.link_messages == {("B0", "B1"): 3}

    def test_at_most_one_copy_per_link(self, diamond_topology):
        expressions = {f"c.{broker}": "*" for broker in diamond_topology.brokers()}
        simulation = make_network(diamond_topology, expressions)
        simulation.publish("P1", Event.from_tuple(SCHEMA2, (0, 0)))
        result = simulation.run()
        assert all(count == 1 for count in result.link_messages.values())
        assert len(result.deliveries) == 4

    def test_broker_stats_accumulate(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "a1=1"})
        for _ in range(5):
            simulation.publish("P1", Event.from_tuple(SCHEMA2, (1, 0)))
        result = simulation.run()
        assert result.broker_stats["B0"].processed == 5
        assert result.broker_stats["B1"].processed == 5
        assert result.broker_stats["B0"].busy_ticks > 0


class TestPublisherProcesses:
    def test_poisson_publishes_exact_count(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "*"})
        factory = lambda rng: Event.from_tuple(SCHEMA2, (rng.randrange(2), 0))
        simulation.add_poisson_publisher("P1", 1000.0, factory, 20)
        result = simulation.run()
        assert result.published_events == 20
        assert len(result.deliveries) == 20

    def test_poisson_rate_roughly_respected(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {})
        factory = lambda rng: Event.from_tuple(SCHEMA2, (0, 0))
        simulation.add_poisson_publisher("P1", 1000.0, factory, 200)
        result = simulation.run()
        # 200 events at 1000/s should take roughly 0.2 simulated seconds.
        assert 0.05 < result.elapsed_seconds < 1.0

    def test_bursty_publishes_exact_count(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "*"})
        factory = lambda rng: Event.from_tuple(SCHEMA2, (0, 0))
        simulation.add_bursty_publisher("P1", 500.0, factory, 30, burstiness=4.0)
        result = simulation.run()
        assert result.published_events == 30

    def test_invalid_rates_rejected(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {})
        factory = lambda rng: Event.from_tuple(SCHEMA2, (0, 0))
        with pytest.raises(SimulationError):
            simulation.add_poisson_publisher("P1", 0.0, factory, 5)
        with pytest.raises(SimulationError):
            simulation.add_bursty_publisher("P1", 10.0, factory, 5, burstiness=0.5)


class TestRunControls:
    def test_abort_on_queue(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "*"})
        factory = lambda rng: Event.from_tuple(SCHEMA2, (0, 0))
        # Way beyond capacity: overhead ~30us/message means ~30k/s tops.
        simulation.add_poisson_publisher("P1", 1_000_000.0, factory, 5000)
        result = simulation.run(max_seconds=1.0, drain=False, abort_on_queue=50)
        assert result.aborted_overloaded
        assert result.is_overloaded

    def test_capped_run_does_not_drain_backlog(self, two_broker_topology):
        simulation = make_network(two_broker_topology, {"c1": "*"})
        factory = lambda rng: Event.from_tuple(SCHEMA2, (0, 0))
        simulation.add_poisson_publisher("P1", 1_000_000.0, factory, 5000)
        result = simulation.run(max_seconds=0.01, drain=False)
        assert result.published_events < 5000 or result.deliveries == []
