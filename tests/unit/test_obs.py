"""The observability layer: registry semantics, exporters, BENCH artifacts."""

import json

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    bench,
    configure,
    diff_snapshots,
    export,
    get_registry,
    metrics_output,
    set_registry,
)
from repro.obs.registry import NOOP_INSTRUMENT, instrument_key


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_and_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("link.messages", src="B0", dst="B1")
        b = registry.counter("link.messages", dst="B1", src="B0")
        assert a is b  # label order is canonicalized

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("link.messages", src="B0", dst="B1")
        b = registry.counter("link.messages", src="B1", dst="B0")
        a.inc()
        assert b.value == 0

    def test_flat_key_rendering(self):
        assert instrument_key("x", ()) == "x"
        assert instrument_key("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("waste")
        gauge.set(0.5)
        gauge.inc(0.25)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(0.25)


class TestHistogram:
    def test_bucket_placement_and_stats(self):
        histogram = Histogram("lat", (1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        # boundaries are inclusive upper bounds; 100 lands in overflow
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(111.5 / 5)

    def test_snapshot_has_overflow_bucket(self):
        histogram = Histogram("lat", (1.0,))
        histogram.observe(2.0)
        snap = histogram.snapshot_value()
        assert snap["buckets"][-1] == ["+Inf", 1]

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("bad", (5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", ())


class TestTimer:
    def test_context_manager_records(self):
        timer = MetricsRegistry().timer("wall")
        with timer:
            pass
        assert timer.count == 1
        assert timer.total_s >= 0.0

    def test_timeit_returns_result_and_elapsed(self):
        timer = MetricsRegistry().timer("wall")
        result, elapsed = timer.timeit(lambda: 42)
        assert result == 42
        assert elapsed >= 0.0
        assert timer.count == 1

    def test_snapshot_type_is_timer(self):
        timer = MetricsRegistry().timer("wall")
        timer.observe_s(0.001)
        assert timer.snapshot_value()["type"] == "timer"


class TestDisabledRegistry:
    def test_disabled_hands_out_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NOOP_INSTRUMENT
        assert registry.gauge("y") is NOOP_INSTRUMENT
        assert registry.histogram("z", (1.0,)) is NOOP_INSTRUMENT
        assert registry.timer("t") is NOOP_INSTRUMENT

    def test_disabled_registry_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("x").inc(100)
        with registry.timer("t"):
            pass
        assert len(registry) == 0
        assert registry.snapshot() == {}

    def test_noop_timeit_still_times(self):
        result, elapsed = NOOP_INSTRUMENT.timeit(lambda: "ok")
        assert result == "ok"
        assert elapsed >= 0.0

    def test_enable_is_fetch_time(self):
        registry = MetricsRegistry(enabled=False)
        before = registry.counter("x")
        registry.enable()
        after = registry.counter("x")
        before.inc()  # no-op: fetched while disabled
        after.inc()
        assert registry.value_of("x") == 1


class TestScope:
    def test_prefixes_and_nests(self):
        registry = MetricsRegistry()
        scope = registry.scope("sim").scope("broker")
        scope.counter("arrivals", broker="B0").inc()
        assert registry.value_of("sim.broker.arrivals", broker="B0") == 1


class TestSnapshotAndDiff:
    def test_snapshot_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("sim.events").inc()
        registry.counter("engine.matches").inc()
        assert set(registry.snapshot("sim.")) == {"sim.events"}

    def test_diff_counters_subtract(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc(3)
        before = registry.snapshot()
        counter.inc(7)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta == {"events": {"type": "counter", "value": 7}}

    def test_diff_drops_unchanged_counters(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        snap = registry.snapshot()
        assert diff_snapshots(snap, snap) == {}

    def test_diff_gauges_keep_after_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("waste")
        gauge.set(0.2)
        before = registry.snapshot()
        gauge.set(0.9)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["waste"]["value"] == pytest.approx(0.9)

    def test_diff_histograms_subtract_counts_and_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", (1.0, 10.0))
        histogram.observe(0.5)
        before = registry.snapshot()
        histogram.observe(5.0)
        histogram.observe(5.0)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["lat"]["count"] == 2
        buckets = {str(b): c for b, c in delta["lat"]["buckets"]}
        assert buckets["1.0"] == 0 and buckets["10.0"] == 2

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0


class TestGlobalRegistry:
    def test_configure_toggles_and_set_registry_swaps(self):
        previous = set_registry(MetricsRegistry(enabled=False))
        try:
            configure(enabled=True)
            assert get_registry().enabled
            get_registry().counter("x").inc()
            configure(enabled=False, reset=True)
            assert not get_registry().enabled
            assert len(get_registry()) == 0
        finally:
            set_registry(previous)

    def test_metrics_output_writes_json_and_restores_state(self, tmp_path):
        previous = set_registry(MetricsRegistry(enabled=False))
        try:
            target = tmp_path / "metrics.json"
            with metrics_output(target) as registry:
                assert registry.enabled
                registry.counter("x").inc(2)
            assert not get_registry().enabled  # restored
            data = json.loads(target.read_text())
            assert data["x"]["value"] == 2
        finally:
            set_registry(previous)

    def test_metrics_output_none_is_passthrough(self, tmp_path):
        previous = set_registry(MetricsRegistry(enabled=False))
        try:
            with metrics_output(None) as registry:
                assert not registry.enabled
        finally:
            set_registry(previous)


class TestExporters:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("sim.events", kind="pub").inc(3)
        registry.gauge("engine.waste").set(0.25)
        histogram = registry.histogram("lat_ms", (1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_json_round_trip(self):
        registry = self.make_registry()
        data = json.loads(export.to_json(registry))
        assert data["sim.events{kind=pub}"] == {"type": "counter", "value": 3}
        assert data["lat_ms"]["count"] == 2

    def test_write_json_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "metrics.json"
        export.write_json(self.make_registry(), target)
        assert json.loads(target.read_text())["engine.waste"]["value"] == 0.25

    def test_prometheus_format(self):
        text = export.to_prometheus(self.make_registry())
        assert "# TYPE repro_sim_events counter" in text
        assert 'repro_sim_events{kind="pub"} 3' in text
        assert "# TYPE repro_lat_ms histogram" in text
        # cumulative le buckets + the conventional _sum/_count pair
        assert 'repro_lat_ms_bucket{le="1.0"} 1' in text
        assert 'repro_lat_ms_bucket{le="+Inf"} 2' in text
        assert "repro_lat_ms_count 2" in text

    def test_prometheus_accepts_plain_snapshot(self):
        snapshot = self.make_registry().snapshot()
        assert export.to_prometheus(snapshot) == export.to_prometheus(self.make_registry())


class TestBenchArtifacts:
    def make_payload(self, **overrides):
        registry = MetricsRegistry()
        registry.counter("engine.matches").inc(7)
        kwargs = dict(
            engine="compiled",
            workload={"subscriptions": 100},
            wall_clock_s=1.5,
            metrics=registry,
        )
        kwargs.update(overrides)
        return bench.bench_payload("unit_test", **kwargs)

    def test_payload_is_schema_versioned_and_valid(self):
        payload = self.make_payload()
        assert payload["schema"] == bench.BENCH_SCHEMA
        assert payload["schema_version"] == bench.BENCH_SCHEMA_VERSION
        bench.validate_bench(payload)  # must not raise
        assert payload["metrics"]["engine.matches"]["value"] == 7

    def test_payload_is_json_serializable(self):
        payload = self.make_payload()
        assert json.loads(json.dumps(payload))["name"] == "unit_test"

    def test_validate_rejects_missing_and_wrong_types(self):
        payload = self.make_payload()
        del payload["machine"]
        payload["wall_clock_s"] = "fast"
        with pytest.raises(ValueError) as error:
            bench.validate_bench(payload)
        message = str(error.value)
        assert "machine" in message and "wall_clock_s" in message

    def test_validate_rejects_wrong_schema(self):
        payload = self.make_payload()
        payload["schema"] = "something/else"
        with pytest.raises(ValueError):
            bench.validate_bench(payload)

    def test_write_and_load_round_trip(self, tmp_path):
        path = bench.write_bench(self.make_payload(), tmp_path)
        assert path.name == "BENCH_unit_test.json"
        loaded = bench.load_bench(path)
        assert loaded["engine"] == "compiled"

    def test_load_bench_dir_skips_invalid(self, tmp_path):
        bench.write_bench(self.make_payload(), tmp_path)
        (tmp_path / "BENCH_broken.json").write_text("{\"schema\": \"nope\"}")
        (tmp_path / "BENCH_garbage.json").write_text("not json")
        payloads = bench.load_bench_dir(tmp_path)
        assert [p["name"] for p in payloads] == ["unit_test"]

    def test_workload_dataclass_is_dictified(self):
        from repro.experiments import Chart3Config

        payload = self.make_payload(workload=Chart3Config(subscription_counts=(10,)))
        assert payload["workload"]["subscription_counts"] == [10]
