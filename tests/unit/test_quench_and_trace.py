"""Unit tests for quenching (would_deliver) and trace rendering, plus the
latency summary metrics."""

from __future__ import annotations

import pytest

from repro.core import ContentRoutedNetwork
from repro.matching import uniform_schema
from repro.network import linear_chain
from repro.sim import DeliveryRecord, SimulationResult

SCHEMA = uniform_schema(2)


@pytest.fixture
def network():
    net = ContentRoutedNetwork(linear_chain(3, subscribers_per_broker=1), SCHEMA)
    net.subscribe("S.B2.00", "a1=1")
    return net


class TestQuenching:
    def test_quenches_unwanted_events(self, network):
        assert not network.would_deliver("P1", {"a1": 0, "a2": 0})

    def test_passes_wanted_events(self, network):
        assert network.would_deliver("P1", {"a1": 1, "a2": 0})

    def test_agrees_with_actual_delivery(self, network):
        for a1 in (0, 1):
            event = {"a1": a1, "a2": 0}
            predicted = network.would_deliver("P1", event)
            actual = bool(network.publish("P1", event).delivered_clients)
            assert predicted == actual

    def test_local_subscriber_detected(self, network):
        network.subscribe("S.B0.00", "a2=1")
        assert network.would_deliver("P1", {"a1": 0, "a2": 1})


class TestTraceRendering:
    def test_render_tree_shows_path_and_deliveries(self, network):
        network.subscribe("S.B0.00", "a1=1")
        trace = network.publish("P1", {"a1": 1, "a2": 0})
        text = trace.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("B0 [")
        assert any("+- S.B0.00" in line for line in lines)
        assert any(line.strip().startswith("B2 [") for line in lines)
        assert any("+- S.B2.00" in line for line in lines)
        # Depth is visible: B2's line is indented deeper than B0's.
        b0_indent = next(line for line in lines if line.lstrip().startswith("B0"))
        b2_indent = next(line for line in lines if line.lstrip().startswith("B2"))
        assert len(b2_indent) - len(b2_indent.lstrip()) > len(b0_indent) - len(
            b0_indent.lstrip()
        )

    def test_render_tree_empty_delivery(self, network):
        trace = network.publish("P1", {"a1": 0, "a2": 0})
        assert trace.render_tree().startswith("B0 [")


def make_result(latencies_ms):
    from repro.sim.engine import TICK_US

    deliveries = [
        DeliveryRecord(f"c{i}", i, 0, round(ms * 1000 / TICK_US), True, 1)
        for i, ms in enumerate(latencies_ms)
    ]
    return SimulationResult(
        elapsed_ticks=10_000,
        broker_stats={},
        link_messages={},
        deliveries=deliveries,
        published_events=len(deliveries),
    )


class TestLatencySummary:
    def test_percentiles(self):
        result = make_result(list(range(1, 101)))  # 1..100 ms
        assert result.latency_percentile_ms(50) == pytest.approx(50.0, abs=0.6)
        assert result.latency_percentile_ms(99) == pytest.approx(99.0, abs=0.6)
        assert result.latency_percentile_ms(100) == pytest.approx(100.0, abs=0.6)

    def test_percentile_bounds(self):
        result = make_result([1.0])
        with pytest.raises(ValueError):
            result.latency_percentile_ms(0)
        with pytest.raises(ValueError):
            result.latency_percentile_ms(101)

    def test_empty_result(self):
        result = make_result([])
        assert result.latency_percentile_ms(50) is None
        assert result.latency_summary_ms() == {}

    def test_summary_keys(self):
        summary = make_result([5.0, 10.0, 20.0]).latency_summary_ms()
        assert set(summary) == {"p50", "p95", "p99", "max"}
        assert summary["max"] >= summary["p99"] >= summary["p50"]
