"""Unit tests for the link-matching refinement search (Section 3.3)."""

from __future__ import annotations

import pytest

from repro.core import LinkMatcher, TreeAnnotation, TritVector
from repro.errors import RoutingError
from repro.matching import Event, build_pst
from tests.conftest import make_subscription

LINKS = {"l0": 0, "l1": 1, "l2": 2}


def build_matcher(schema, expressions):
    """expressions: list of (expression, link_name)."""
    subscriptions = [
        make_subscription(schema, expression, link)
        for expression, link in expressions
    ]
    tree = build_pst(schema, subscriptions)
    annotation = TreeAnnotation(3, lambda s: LINKS[s.subscriber])
    annotation.annotate(tree)
    return LinkMatcher(tree, annotation)


class TestRefinement:
    def test_event_matching_one_link(self, schema5):
        matcher = build_matcher(
            schema5, [("a1=1", "l0"), ("a1=2", "l1")]
        )
        result = matcher.match_links(
            Event.from_tuple(schema5, (1, 0, 0, 0, 0)), TritVector("MMM")
        )
        assert result.mask == TritVector("YNN")

    def test_event_matching_no_link(self, schema5):
        matcher = build_matcher(schema5, [("a1=1", "l0"), ("a1=2", "l1")])
        result = matcher.match_links(
            Event.from_tuple(schema5, (7, 0, 0, 0, 0)), TritVector("MMM")
        )
        assert result.mask == TritVector("NNN")

    def test_no_trits_beyond_mask(self, schema5):
        # A No in the initialization mask is never revisited, even though a
        # matching subscriber exists on that link (it is not downstream).
        matcher = build_matcher(schema5, [("a1=1", "l0")])
        result = matcher.match_links(
            Event.from_tuple(schema5, (1, 0, 0, 0, 0)), TritVector("NMM")
        )
        assert result.mask == TritVector("NNN")

    def test_star_subscription_resolves_immediately(self, schema5):
        matcher = build_matcher(schema5, [("*", "l1")])
        result = matcher.match_links(
            Event.from_tuple(schema5, (0, 0, 0, 0, 0)), TritVector("MMM")
        )
        assert result.mask[1].value == "Y"
        # The guaranteed link resolves at the root: one step, no descent.
        assert result.steps == 1

    def test_early_termination_saves_steps(self, schema5):
        # With one guaranteed and one impossible link, refinement finishes at
        # the root; a full match of the same tree would walk further.
        expressions = [("*", "l0")] + [(f"a3={v}", "l0") for v in range(3)]
        matcher = build_matcher(schema5, expressions)
        event = Event.from_tuple(schema5, (0, 0, 1, 0, 0))
        link_result = matcher.match_links(event, TritVector("MNN"))
        full = matcher.tree.match(event)
        assert link_result.steps < full.steps

    def test_partial_match_fewer_steps_than_full(self, schema5):
        # Typical case: many subscriptions on one link; once any of them is
        # guaranteed the rest need not be searched.
        expressions = [(f"a1=1 & a2={v}", "l0") for v in range(3)]
        expressions += [("a1=1", "l0")]
        matcher = build_matcher(schema5, expressions)
        event = Event.from_tuple(schema5, (1, 1, 0, 0, 0))
        link_result = matcher.match_links(event, TritVector("MNN"))
        full_steps = matcher.tree.match(event).steps
        assert link_result.mask[0].value == "Y"
        assert link_result.steps <= full_steps

    def test_wrong_schema(self, schema5, ibm_event):
        matcher = build_matcher(schema5, [("a1=1", "l0")])
        with pytest.raises(RoutingError):
            matcher.match_links(ibm_event, TritVector("MMM"))

    def test_mask_with_no_maybes_is_returned_as_is(self, schema5):
        matcher = build_matcher(schema5, [("a1=1", "l0")])
        result = matcher.match_links(
            Event.from_tuple(schema5, (1, 0, 0, 0, 0)), TritVector("NNN")
        )
        assert result.mask == TritVector("NNN")
        assert result.steps == 1

    def test_multiple_links_resolved_independently(self, schema5):
        matcher = build_matcher(
            schema5,
            [("a1=1", "l0"), ("a2=2", "l1"), ("a3=3", "l2")],
        )
        result = matcher.match_links(
            Event.from_tuple(schema5, (1, 2, 9, 0, 0)), TritVector("MMM")
        )
        assert result.mask == TritVector("YYN")

    def test_stale_annotation_detected(self, schema5):
        matcher = build_matcher(schema5, [("a1=1", "l0")])
        matcher.tree.insert(make_subscription(schema5, "a1=3", "l1"))
        with pytest.raises(RoutingError):
            matcher.match_links(
                Event.from_tuple(schema5, (3, 0, 0, 0, 0)), TritVector("MMM")
            )
