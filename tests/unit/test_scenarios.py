"""Units for the stress-scenario workload shapes (flash crowd, thundering
herd) and the delayed-start publisher primitive they ride on."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import SimulationError
from repro.matching import Event, Subscription, parse_predicate, uniform_schema
from repro.network.figures import linear_chain
from repro.protocols import LinkMatchingProtocol, ProtocolContext
from repro.sim import NetworkSimulation, seconds_to_ticks
from repro.workload import FlashCrowd, ThunderingHerd, WorkloadSpec

SPEC = WorkloadSpec(num_attributes=3, values_per_attribute=5, factoring_levels=1)


# ----------------------------------------------------------------------
# FlashCrowd


def test_flash_crowd_validates():
    with pytest.raises(SimulationError):
        FlashCrowd(SPEC, start_after_s=-1.0)
    with pytest.raises(SimulationError):
        FlashCrowd(SPEC, rate_multiplier=0.0)
    with pytest.raises(SimulationError):
        FlashCrowd(SPEC, num_events=0)
    with pytest.raises(SimulationError):
        # The crowd exponent must be hotter than the background's.
        FlashCrowd(SPEC, hot_exponent=SPEC.zipf_exponent).event_factory("P1")


def test_flash_crowd_concentrates_on_hot_values():
    crowd = FlashCrowd(SPEC, hot_exponent=6.0)
    factory = crowd.event_factory("P1", seed=5)
    rng = random.Random(5)
    counts = Counter(factory(rng)["a1"] for _ in range(300))
    # With exponent 6 over 5 values, rank 1 carries ~98% of the mass.
    assert counts[0] / 300 > 0.9


def test_flash_crowd_rate_scaling():
    crowd = FlashCrowd(SPEC, rate_multiplier=4.0)
    assert crowd.crowd_rate(50.0) == 200.0


# ----------------------------------------------------------------------
# ThunderingHerd


def test_herd_validates():
    with pytest.raises(SimulationError):
        ThunderingHerd(SPEC, arrive_at_s=-0.1)
    with pytest.raises(SimulationError):
        ThunderingHerd(SPEC, size=0)
    with pytest.raises(SimulationError):
        ThunderingHerd(SPEC).subscriptions([])


def test_herd_generates_hot_subscriptions():
    herd = ThunderingHerd(SPEC, size=40, hot_exponent=6.0)
    subscriptions = herd.subscriptions(["s1", "s2", "s3"], seed=2)
    assert len(subscriptions) == 40
    assert {s.subscriber for s in subscriptions} == {"s1", "s2", "s3"}
    # Constrained values pile onto the hot end of the ranking.
    constrained = [
        test.value
        for subscription in subscriptions
        for test in subscription.predicate.tests
        if getattr(test, "value", None) is not None
    ]
    assert constrained, "herd predicates should constrain something"
    hot = sum(1 for value in constrained if value == 0)
    assert hot / len(constrained) > 0.8


def test_herd_arrivals_are_simultaneous():
    herd = ThunderingHerd(SPEC, arrive_at_s=1.5, size=6)
    arrivals = herd.arrivals(["s1", "s2"], seed=0)
    assert len(arrivals) == 6
    assert {at for at, _ in arrivals} == {1.5}


# ----------------------------------------------------------------------
# Delayed-start publisher


def test_poisson_publisher_start_after():
    schema = uniform_schema(3)
    topology = linear_chain(3, subscribers_per_broker=1)
    context = ProtocolContext(
        topology,
        schema,
        [
            Subscription(parse_predicate(schema, "*"), client)
            for client in topology.subscribers()
        ],
        domains={f"a{i}": [0, 1, 2] for i in range(1, 4)},
    )
    simulation = NetworkSimulation(topology, LinkMatchingProtocol(context), seed=3)
    simulation.add_poisson_publisher(
        "P1",
        200.0,
        lambda r: Event.from_tuple(schema, (0, 0, 0)),
        10,
        start_after_s=0.5,
    )
    result = simulation.run()
    assert result.published_events == 10
    first_publish = min(r.publish_time_ticks for r in result.deliveries)
    assert first_publish >= seconds_to_ticks(0.5)


def test_poisson_publisher_rejects_negative_start():
    schema = uniform_schema(3)
    topology = linear_chain(2, subscribers_per_broker=1)
    context = ProtocolContext(topology, schema, [], domains={})
    simulation = NetworkSimulation(topology, LinkMatchingProtocol(context), seed=3)
    with pytest.raises(SimulationError):
        simulation.add_poisson_publisher(
            "P1",
            100.0,
            lambda r: Event.from_tuple(schema, (0, 0, 0)),
            5,
            start_after_s=-0.1,
        )
