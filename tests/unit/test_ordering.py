"""Unit tests for attribute-ordering heuristics."""

from __future__ import annotations

from repro.matching import (
    declaration_order,
    dont_care_counts,
    order_by_fewest_dont_cares,
    order_quality,
    parse_predicate,
    reverse_declaration_order,
    uniform_schema,
)
from repro.workload import CHART1_SPEC, SubscriptionGenerator


class TestCounts:
    def test_dont_care_counts(self, schema5):
        predicates = [
            parse_predicate(schema5, "a1=1"),
            parse_predicate(schema5, "a1=1 & a3=2"),
            parse_predicate(schema5, "*"),
        ]
        counts = dont_care_counts(schema5, predicates)
        assert counts == {"a1": 1, "a2": 3, "a3": 2, "a4": 3, "a5": 3}

    def test_foreign_schema_predicates_ignored(self, schema5, stock_schema):
        counts = dont_care_counts(
            schema5, [parse_predicate(stock_schema, "issue='IBM'")]
        )
        assert all(count == 0 for count in counts.values())


class TestOrderings:
    def test_heuristic_puts_most_constrained_first(self, schema5):
        predicates = [
            parse_predicate(schema5, "a4=1"),
            parse_predicate(schema5, "a4=2"),
            parse_predicate(schema5, "a4=3 & a2=1"),
        ]
        order = order_by_fewest_dont_cares(schema5, predicates)
        assert order[0] == "a4"
        assert order[1] == "a2"

    def test_heuristic_ties_break_by_declaration(self, schema5):
        order = order_by_fewest_dont_cares(schema5, [])
        assert order == ["a1", "a2", "a3", "a4", "a5"]

    def test_declaration_and_reverse(self, schema5):
        assert declaration_order(schema5) == ["a1", "a2", "a3", "a4", "a5"]
        assert reverse_declaration_order(schema5) == ["a5", "a4", "a3", "a2", "a1"]

    def test_orders_are_permutations(self, schema5):
        predicates = [parse_predicate(schema5, "a3=1")]
        for order in (
            order_by_fewest_dont_cares(schema5, predicates),
            declaration_order(schema5),
            reverse_declaration_order(schema5),
        ):
            assert sorted(order) == sorted(schema5.names)


class TestQualityProxy:
    def test_quality_lower_is_better(self):
        schema = uniform_schema(10)
        generator = SubscriptionGenerator(CHART1_SPEC, seed=3)
        predicates = [generator.predicate_for(f"c{i}") for i in range(300)]
        good = order_quality(schema, predicates, order_by_fewest_dont_cares(schema, predicates))
        bad = order_quality(schema, predicates, reverse_declaration_order(schema))
        # The paper's workload constrains early attributes most, so the
        # heuristic must clearly beat the reversed order.
        assert good < bad

    def test_quality_empty_predicates(self, schema5):
        assert order_quality(schema5, [], declaration_order(schema5)) == 0.0
