"""Unit tests for the disk-backed event log."""

from __future__ import annotations

import pytest

from repro.broker.persistent_log import FileEventLog
from repro.errors import ProtocolError


class TestBasicOperation:
    def test_append_and_read_back(self, tmp_path):
        log = FileEventLog("alice", tmp_path)
        assert log.append(b"one") == 1
        assert log.append(b"two") == 2
        assert log.entries_after(0) == [(1, b"one"), (2, b"two")]

    def test_ack_and_collect(self, tmp_path):
        log = FileEventLog("alice", tmp_path)
        for payload in (b"a", b"b", b"c"):
            log.append(payload)
        log.ack(2)
        assert log.collect() == 2
        assert log.entries_after(0) == [(3, b"c")]
        assert log.collect() == 0

    def test_ack_validation(self, tmp_path):
        log = FileEventLog("alice", tmp_path)
        log.append(b"x")
        with pytest.raises(ProtocolError):
            log.ack(9)
        log.ack(1)
        log.ack(0)  # late ack is a no-op
        assert log.acked == 1

    def test_interface_matches_in_memory_log(self, tmp_path):
        from repro.broker import EventLog

        memory, disk = EventLog("c"), FileEventLog("c", tmp_path)
        for log in (memory, disk):
            log.append(b"1")
            log.append(b"2")
            log.ack(1)
        assert memory.entries_after(0) == disk.entries_after(0)
        assert memory.last_seq == disk.last_seq
        assert memory.acked == disk.acked
        assert len(memory) == len(disk)


class TestDurability:
    def test_reopen_restores_unacked_entries(self, tmp_path):
        log = FileEventLog("alice", tmp_path)
        for payload in (b"a", b"b", b"c"):
            log.append(payload)
        log.ack(1)
        log.close()
        reopened = FileEventLog("alice", tmp_path)
        assert reopened.entries_after(reopened.acked) == [(2, b"b"), (3, b"c")]
        assert reopened.acked == 1
        assert reopened.last_seq == 3

    def test_sequence_numbers_continue_after_reopen(self, tmp_path):
        log = FileEventLog("alice", tmp_path)
        log.append(b"a")
        log.close()
        reopened = FileEventLog("alice", tmp_path)
        assert reopened.append(b"b") == 2

    def test_reopen_after_compaction(self, tmp_path):
        log = FileEventLog("alice", tmp_path)
        for i in range(10):
            log.append(bytes([i]))
        log.ack(7)
        log.collect()
        log.close()
        reopened = FileEventLog("alice", tmp_path)
        assert [s for s, _p in reopened.entries_after(0)] == [8, 9, 10]
        assert reopened.append(b"next") == 11

    def test_torn_final_record_dropped(self, tmp_path):
        log = FileEventLog("alice", tmp_path)
        log.append(b"complete")
        log.append(b"torn-away")
        log.close()
        path = tmp_path / "alice.log"
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # simulate a crash mid-write
        reopened = FileEventLog("alice", tmp_path)
        assert reopened.entries_after(0) == [(1, b"complete")]

    def test_unusual_client_names_are_escaped(self, tmp_path):
        log = FileEventLog("client/../with:odd*chars", tmp_path)
        log.append(b"x")
        log.close()
        reopened = FileEventLog("client/../with:odd*chars", tmp_path)
        assert reopened.entries_after(0) == [(1, b"x")]
        # Nothing escaped the directory.
        assert all(p.parent == tmp_path for p in tmp_path.iterdir())


class TestBrokerIntegration:
    def test_redelivery_across_broker_restart(self, tmp_path):
        from repro.broker import (
            BrokerClient,
            BrokerNetworkConfig,
            BrokerNode,
            InMemoryTransport,
        )
        from repro.matching import uniform_schema
        from repro.network import NodeKind, Topology

        schema = uniform_schema(2)
        topology = Topology()
        topology.add_broker("B0")
        topology.add_client("alice", "B0")
        topology.add_client("pub", "B0", kind=NodeKind.PUBLISHER)
        config = BrokerNetworkConfig(topology, schema)
        endpoints = {"B0": "mem://B0"}

        transport = InMemoryTransport()
        node = BrokerNode(
            config, "B0", transport, endpoints, log_directory=str(tmp_path)
        )
        node.start()
        alice = BrokerClient("alice", schema, transport, "mem://B0", pump=transport.pump)
        pub = BrokerClient("pub", schema, transport, "mem://B0", pump=transport.pump)
        alice.connect()
        pub.connect()
        transport.pump()
        alice.subscribe_and_wait("a1=1")
        transport.pump()
        pub.publish({"a1": 1, "a2": 0})
        transport.pump()
        assert len(alice.received_events) == 1
        alice.drop_connection()
        transport.pump()
        pub.publish({"a1": 1, "a2": 5})
        transport.pump()
        node.stop()  # broker goes down with an undelivered event logged

        # Broker restarts with fresh in-memory state but the same log dir.
        transport2 = InMemoryTransport()
        restarted = BrokerNode(
            config, "B0", transport2, endpoints, log_directory=str(tmp_path)
        )
        restarted.start()
        alice2 = BrokerClient(
            "alice", schema, transport2, "mem://B0", pump=transport2.pump
        )
        alice2.last_seq = 1  # the client remembers what it processed
        alice2.connect(resume=True)
        transport2.pump()
        assert [e["a2"] for e in alice2.received_events] == [5]
        restarted.stop()
