"""Unit tests for PST trit-vector annotation (Section 3.1)."""

from __future__ import annotations

import pytest

from repro.core import M, N, TreeAnnotation, TritVector, Y
from repro.errors import RoutingError
from repro.matching import ParallelSearchTree, build_pst
from tests.conftest import make_subscription

#: Map subscriber names to link positions for these tests.
LINKS = {"l0": 0, "l1": 1, "l2": 2}


def link_of(subscription) -> int:
    return LINKS[subscription.subscriber]


def annotate(tree: ParallelSearchTree, num_links: int = 3) -> TreeAnnotation:
    annotation = TreeAnnotation(num_links, link_of)
    annotation.annotate(tree)
    return annotation


class TestLeafAnnotation:
    def test_leaf_yes_at_subscriber_links(self, schema5):
        tree = build_pst(
            schema5,
            [
                make_subscription(schema5, "a1=1", "l0"),
                make_subscription(schema5, "a1=1", "l2"),
            ],
        )
        annotation = annotate(tree)
        leaf = next(node for node in tree.nodes() if node.is_leaf)
        assert annotation.vector_for(leaf) == TritVector("YNY")

    def test_out_of_range_link_position(self, schema5):
        tree = build_pst(schema5, [make_subscription(schema5, "a1=1", "l2")])
        annotation = TreeAnnotation(2, link_of)  # only 2 links but position 2
        with pytest.raises(RoutingError):
            annotation.annotate(tree)


class TestPropagation:
    def test_star_only_tree_is_yes(self, schema5):
        # A match-all subscription guarantees delivery on its link at the root.
        tree = build_pst(schema5, [make_subscription(schema5, "*", "l1")])
        tree.eliminate_trivial_tests()
        annotation = annotate(tree)
        assert annotation.vector_for(tree.root)[1] is Y

    def test_value_branch_without_domain_is_maybe(self, schema5):
        tree = build_pst(schema5, [make_subscription(schema5, "a1=1", "l0")])
        annotation = annotate(tree)
        # Without domain knowledge the root cannot promise a match: an event
        # with a1 != 1 misses the only subscription.
        assert annotation.vector_for(tree.root)[0] is M
        assert annotation.vector_for(tree.root)[1] is N

    def test_covered_domain_promotes_to_yes(self, schema5):
        subscriptions = [
            make_subscription(schema5, f"a1={value}", "l0") for value in (0, 1, 2)
        ]
        tree = build_pst(schema5, subscriptions, domains={"a1": [0, 1, 2]})
        annotation = annotate(tree)
        # Every domain value has a subscription on link 0: guaranteed match.
        assert annotation.vector_for(tree.root)[0] is Y

    def test_partially_covered_domain_stays_maybe(self, schema5):
        subscriptions = [
            make_subscription(schema5, f"a1={value}", "l0") for value in (0, 1)
        ]
        tree = build_pst(schema5, subscriptions, domains={"a1": [0, 1, 2]})
        annotation = annotate(tree)
        assert annotation.vector_for(tree.root)[0] is M

    def test_no_subscriptions_is_all_no(self, schema5):
        tree = ParallelSearchTree(schema5)
        annotation = annotate(tree)
        assert annotation.vector_for(tree.root) == TritVector("NNN")

    def test_mixed_links(self, schema5):
        tree = build_pst(
            schema5,
            [
                make_subscription(schema5, "*", "l0"),       # guaranteed on l0
                make_subscription(schema5, "a2=1", "l1"),    # conditional on l1
            ],
        )
        tree.eliminate_trivial_tests()
        annotation = annotate(tree)
        root = annotation.vector_for(tree.root)
        assert root[0] is Y
        assert root[1] is M
        assert root[2] is N

    def test_range_branches_are_conservative(self, stock_schema):
        def stock_link(subscription):
            return 0

        tree = build_pst(
            stock_schema, [make_subscription(stock_schema, "price<120", "any")]
        )
        annotation = TreeAnnotation(1, stock_link)
        annotation.annotate(tree)
        # A range test can never produce Yes at the root (no domain coverage
        # reasoning for ranges) but must not produce No either.
        assert annotation.vector_for(tree.root)[0] is M


class TestStaleness:
    def test_vector_for_unannotated_node(self, schema5):
        tree = build_pst(schema5, [make_subscription(schema5, "a1=1", "l0")])
        annotation = annotate(tree)
        tree.insert(make_subscription(schema5, "a1=2", "l1"))
        new_leaf = [
            node
            for node in tree.nodes()
            if node.is_leaf and any(s.subscriber == "l1" for s in node.subscriptions)
        ][0]
        with pytest.raises(RoutingError):
            annotation.vector_for(new_leaf)

    def test_reannotation_picks_up_changes(self, schema5):
        tree = build_pst(schema5, [make_subscription(schema5, "a1=1", "l0")])
        annotation = annotate(tree)
        tree.insert(make_subscription(schema5, "*", "l1"))
        tree.eliminate_trivial_tests()
        annotation.annotate(tree)
        assert annotation.vector_for(tree.root)[1] is Y
