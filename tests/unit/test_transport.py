"""Unit tests for the in-memory transport."""

from __future__ import annotations

import pytest

from repro.broker import InMemoryHub, InMemoryTransport
from repro.errors import ConnectionClosedError, TransportError


def connected_pair(transport):
    """Listen, dial, return (client_side, server_side)."""
    accepted = []
    transport.listen("mem://server", accepted.append)
    client = transport.connect("mem://server")
    assert len(accepted) == 1
    return client, accepted[0]


class TestConnectLifecycle:
    def test_dial_triggers_accept(self):
        transport = InMemoryTransport()
        client, server = connected_pair(transport)
        assert client.is_open and server.is_open

    def test_dial_unknown_endpoint(self):
        transport = InMemoryTransport()
        with pytest.raises(TransportError):
            transport.connect("mem://nobody")

    def test_duplicate_listen_rejected(self):
        transport = InMemoryTransport()
        transport.listen("mem://x", lambda c: None)
        with pytest.raises(TransportError):
            transport.listen("mem://x", lambda c: None)

    def test_listener_close_frees_endpoint(self):
        transport = InMemoryTransport()
        listener = transport.listen("mem://x", lambda c: None)
        listener.close()
        transport.listen("mem://x", lambda c: None)  # no error

    def test_close_notifies_peer_on_pump(self):
        transport = InMemoryTransport()
        client, server = connected_pair(transport)
        closed = []
        server.on_close = lambda: closed.append(True)
        client.close()
        assert not closed  # deferred
        transport.pump()
        assert closed == [True]
        assert not server.is_open


class TestMessaging:
    def test_messages_delivered_in_order(self):
        transport = InMemoryTransport()
        client, server = connected_pair(transport)
        received = []
        server.on_message = received.append
        client.send(b"one")
        client.send(b"two")
        assert received == []  # nothing until pump
        transport.pump()
        assert received == [b"one", b"two"]

    def test_bidirectional(self):
        transport = InMemoryTransport()
        client, server = connected_pair(transport)
        client_received = []
        client.on_message = client_received.append
        server.send(b"hello")
        transport.pump()
        assert client_received == [b"hello"]

    def test_send_after_close_raises(self):
        transport = InMemoryTransport()
        client, _server = connected_pair(transport)
        client.close()
        with pytest.raises(ConnectionClosedError):
            client.send(b"x")

    def test_send_requires_bytes(self):
        transport = InMemoryTransport()
        client, _server = connected_pair(transport)
        with pytest.raises(TransportError):
            client.send("text")  # type: ignore[arg-type]

    def test_handlers_may_send_more(self):
        # A reply loop: server echoes, client counts; the pump must flatten
        # the cascade without recursion errors.
        transport = InMemoryTransport()
        client, server = connected_pair(transport)
        replies = []
        server.on_message = lambda payload: server.send(payload + b"!")
        client.on_message = replies.append
        client.send(b"ping")
        transport.pump()
        assert replies == [b"ping!"]

    def test_pump_max_messages(self):
        transport = InMemoryTransport()
        client, server = connected_pair(transport)
        received = []
        server.on_message = received.append
        for i in range(5):
            client.send(bytes([i]))
        assert transport.pump(max_messages=2) == 2
        assert len(received) == 2
        transport.pump()
        assert len(received) == 5

    def test_messages_to_closed_endpoint_dropped(self):
        transport = InMemoryTransport()
        client, server = connected_pair(transport)
        received = []
        server.on_message = received.append
        client.send(b"in flight")
        server.close()
        transport.pump()
        assert received == []  # closed before delivery

    def test_shared_hub_between_transports(self):
        hub = InMemoryHub()
        transport_a = InMemoryTransport(hub)
        transport_b = InMemoryTransport(hub)
        accepted = []
        transport_a.listen("mem://a", accepted.append)
        connection = transport_b.connect("mem://a")
        assert connection.is_open and len(accepted) == 1
