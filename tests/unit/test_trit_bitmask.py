"""Unit + property tests of the packed (bitmask) trit encoding.

The compiled matcher of :mod:`repro.matching.compile` runs the whole trit
algebra on ``(yes_bits, maybe_bits)`` integer pairs.  These tests pin the
encoding against the reference :class:`TritVector` implementation: the
packed operators must agree element-wise with the scalar combine tables for
every input, and pack/unpack must round-trip exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    M,
    N,
    TritVector,
    Y,
    alternative_combine,
    alternative_combine_bits,
    import_yes_bits,
    pack_tritvector,
    parallel_combine,
    parallel_combine_bits,
    refine_bits,
    unpack_tritvector,
)

trits = st.sampled_from([Y, M, N])
vectors = st.integers(min_value=0, max_value=8).flatmap(
    lambda n: st.lists(trits, min_size=n, max_size=n).map(TritVector)
)
paired_vectors = st.integers(min_value=1, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(trits, min_size=n, max_size=n).map(TritVector),
        st.lists(trits, min_size=n, max_size=n).map(TritVector),
    )
)


class TestRoundTrip:
    @given(vector=vectors)
    def test_pack_unpack_round_trip(self, vector):
        yes, maybe = pack_tritvector(vector)
        assert unpack_tritvector(yes, maybe, len(vector)) == vector

    @given(vector=vectors)
    def test_masks_never_overlap(self, vector):
        yes, maybe = pack_tritvector(vector)
        assert yes & maybe == 0
        assert (yes | maybe) >> len(vector) == 0

    def test_known_encoding(self):
        # Trit i lives at bit i: "YMN" -> yes=0b001, maybe=0b010.
        assert pack_tritvector(TritVector("YMN")) == (0b001, 0b010)
        assert unpack_tritvector(0b001, 0b010, 3) == TritVector("YMN")

    def test_pack_rejects_non_trits(self):
        with pytest.raises(TypeError):
            pack_tritvector(["Y"])

    def test_unpack_rejects_negative_masks(self):
        with pytest.raises(ValueError):
            unpack_tritvector(-1, 0, 3)

    def test_unpack_rejects_overlapping_masks(self):
        with pytest.raises(ValueError):
            unpack_tritvector(0b1, 0b1, 3)

    def test_unpack_rejects_excess_bits(self):
        with pytest.raises(ValueError):
            unpack_tritvector(0b100, 0, 2)


class TestPackedCombinesMatchScalarTables:
    @given(pair=paired_vectors)
    def test_parallel_combine(self, pair):
        a, b = pair
        a_yes, a_maybe = pack_tritvector(a)
        b_yes, b_maybe = pack_tritvector(b)
        yes, maybe = parallel_combine_bits(a_yes, a_maybe, b_yes, b_maybe)
        expected = TritVector(parallel_combine(x, y) for x, y in zip(a, b))
        assert unpack_tritvector(yes, maybe, len(a)) == expected

    @given(pair=paired_vectors)
    def test_alternative_combine(self, pair):
        a, b = pair
        full = (1 << len(a)) - 1
        a_yes, a_maybe = pack_tritvector(a)
        b_yes, b_maybe = pack_tritvector(b)
        yes, maybe = alternative_combine_bits(a_yes, a_maybe, b_yes, b_maybe, full)
        expected = TritVector(alternative_combine(x, y) for x, y in zip(a, b))
        assert unpack_tritvector(yes, maybe, len(a)) == expected

    @given(pair=paired_vectors)
    def test_refine(self, pair):
        mask, annotation = pair
        m_yes, m_maybe = pack_tritvector(mask)
        a_yes, a_maybe = pack_tritvector(annotation)
        yes, maybe = refine_bits(m_yes, m_maybe, a_yes, a_maybe)
        expected = mask.refine_with(annotation)
        assert unpack_tritvector(yes, maybe, len(mask)) == expected

    @given(pair=paired_vectors)
    def test_import_yes(self, pair):
        mask, returned = pair
        m_yes, m_maybe = pack_tritvector(mask)
        returned_yes, _ = pack_tritvector(returned)
        # TritVector.import_yes only looks at the Yes positions of the
        # returned vector, so dropping its Maybe bits must not change it.
        yes, maybe = import_yes_bits(m_yes, m_maybe, returned_yes)
        expected = mask.import_yes(returned)
        assert unpack_tritvector(yes, maybe, len(mask)) == expected


class TestPackedAlgebraLaws:
    @given(pair=paired_vectors)
    def test_commutativity(self, pair):
        a, b = pair
        full = (1 << len(a)) - 1
        pa = pack_tritvector(a)
        pb = pack_tritvector(b)
        assert parallel_combine_bits(*pa, *pb) == parallel_combine_bits(*pb, *pa)
        assert alternative_combine_bits(*pa, *pb, full) == alternative_combine_bits(
            *pb, *pa, full
        )

    @given(vector=vectors)
    def test_parallel_identity_is_all_no(self, vector):
        packed = pack_tritvector(vector)
        assert parallel_combine_bits(*packed, 0, 0) == packed

    @given(vector=vectors)
    def test_alternative_with_all_no_is_not_identity(self, vector):
        # Alternative Combine with an all-No vector keeps No and turns any
        # Yes/Maybe disagreement into Maybe — the open-domain annotation fold
        # depends on this (the implicit "no value branch accepts" outcome).
        full = (1 << len(vector)) - 1
        yes, maybe = alternative_combine_bits(*pack_tritvector(vector), 0, 0, full)
        assert yes == 0
        packed_yes, packed_maybe = pack_tritvector(vector)
        assert maybe == packed_yes | packed_maybe
