"""Unit tests of the MatcherEngine surface and the compiled program's
lifecycle (lazy compilation, incremental patching, recompile fallback)."""

from __future__ import annotations

import pytest

from repro.core import TritVector
from repro.errors import RoutingError, SubscriptionError
from repro.matching import (
    CompiledEngine,
    MatcherEngine,
    TreeEngine,
    create_engine,
    uniform_schema,
)
from repro.matching.compile import compile_tree
from repro.matching.events import Event
from repro.matching.predicates import EqualityTest, Predicate, Subscription

SCHEMA = uniform_schema(3)
DOMAINS = {name: [0, 1, 2] for name in SCHEMA.names}


def subscription(values, subscriber="s0", **kwargs):
    tests = {
        name: EqualityTest(value)
        for name, value in zip(SCHEMA.names, values)
        if value is not None
    }
    return Subscription(Predicate(SCHEMA, tests), subscriber, **kwargs)


def link_of(sub):
    return int(sub.subscriber[1:])


class TestCreateEngine:
    def test_names(self):
        assert create_engine("tree", SCHEMA).name == "tree"
        assert create_engine("compiled", SCHEMA).name == "compiled"

    def test_unknown_name_rejected(self):
        with pytest.raises(SubscriptionError):
            create_engine("jit", SCHEMA)

    def test_engines_are_matcher_engines(self):
        assert isinstance(create_engine("tree", SCHEMA), MatcherEngine)
        assert isinstance(create_engine("compiled", SCHEMA), MatcherEngine)


class TestEngineSurface:
    @pytest.mark.parametrize("engine_name", ["tree", "compiled"])
    def test_match_links_requires_bind_links(self, engine_name):
        engine = create_engine(engine_name, SCHEMA, domains=DOMAINS)
        with pytest.raises(RoutingError):
            engine.match_links(Event.from_tuple(SCHEMA, (0, 0, 0)), TritVector("MM"))

    @pytest.mark.parametrize("engine_name", ["tree", "compiled"])
    def test_match_links_rejects_wrong_mask_length(self, engine_name):
        engine = create_engine(engine_name, SCHEMA, domains=DOMAINS)
        engine.bind_links(3, link_of)
        with pytest.raises(ValueError):
            engine.match_links(Event.from_tuple(SCHEMA, (0, 0, 0)), TritVector("MM"))

    @pytest.mark.parametrize("engine_name", ["tree", "compiled"])
    def test_subscription_bookkeeping(self, engine_name):
        engine = create_engine(engine_name, SCHEMA)
        sub = subscription((0, None, 1))
        engine.insert(sub)
        assert engine.subscription_count == 1
        assert engine.subscriptions == [sub]
        removed = engine.remove(sub.subscription_id)
        assert removed is sub
        assert engine.subscription_count == 0


class TestCompiledProgramLifecycle:
    def test_program_compiles_lazily_and_is_patched_in_place(self):
        engine = CompiledEngine(SCHEMA)
        engine.insert(subscription((0, 1, None)))
        program = engine.program  # force compilation
        engine.insert(subscription((0, 2, None)))
        assert engine.program is program  # patched, not recompiled

    def test_waste_accumulates_and_triggers_recompile(self):
        engine = CompiledEngine(SCHEMA)
        engine.insert(subscription((0, 1, None)))
        program = engine.program
        # Repeated insert/remove of the same shape leaves dead slots behind;
        # past the waste threshold the patch bails out and the engine
        # recompiles from the tree.
        for round_index in range(500):
            sub = subscription((round_index % 3, None, 1))
            engine.insert(sub)
            engine.remove(sub.subscription_id)
            if engine._program is None or engine._program is not program:
                break
        else:
            pytest.fail("patching never fell back to recompilation")
        event = Event.from_tuple(SCHEMA, (0, 1, 0))
        assert {s.subscription_id for s in engine.match(event).subscriptions}

    def test_invalidate_forces_recompile(self):
        engine = CompiledEngine(SCHEMA)
        engine.insert(subscription((0, 1, None)))
        before = engine.program
        engine.invalidate()
        assert engine.program is not before

    def test_compile_tree_matches_like_the_tree(self):
        engine = TreeEngine(SCHEMA)
        for values in ((0, 1, None), (None, 1, 2), (2, None, None)):
            engine.insert(subscription(values))
        program = compile_tree(engine.tree)
        for event_values in ((0, 1, 2), (2, 1, 2), (1, 1, 1)):
            event = Event.from_tuple(SCHEMA, event_values)
            tree_result = engine.match(event)
            compiled_result = program.match(event)
            assert sorted(
                s.subscription_id for s in compiled_result.subscriptions
            ) == sorted(s.subscription_id for s in tree_result.subscriptions)
            assert compiled_result.steps == tree_result.steps

    def test_match_rejects_foreign_schema(self):
        engine = CompiledEngine(SCHEMA)
        engine.insert(subscription((0, None, None)))
        other = uniform_schema(2)
        with pytest.raises(SubscriptionError):
            engine.match(Event.from_tuple(other, (0, 0)))
