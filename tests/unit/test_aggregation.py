"""Unit tests for the online covering forest (repro.matching.aggregation).

The property suite (``tests/property/test_prop_aggregation.py``) pins the
end-to-end equivalence contract; these tests pin the forest mechanics the
equivalence rides on: canonical deduplication, covering attachment and
demotion, child promotion when a covering parent dissolves, the in-place
``refresh_links`` path on membership-only changes, and the error surface.
"""

from __future__ import annotations

import pytest

from repro.core import M, TritVector
from repro.errors import SubscriptionError
from repro.matching import Event, Predicate, Subscription, uniform_schema
from repro.matching.aggregation import (
    AggregatingEngine,
    canonicalize_predicate,
)
from repro.matching.engines import CompiledEngine, TreeEngine, create_engine
from repro.matching.predicates import EqualityTest, RangeOp, RangeTest

SCHEMA = uniform_schema(3)
DOMAINS = {name: [0, 1, 2] for name in SCHEMA.names}
NUM_LINKS = 4


def predicate(**tests):
    return Predicate(SCHEMA, tests)


def sub(subscriber="s0", **tests):
    return Subscription(predicate(**tests), subscriber)


def event(values=(0, 0, 0)):
    return Event.from_tuple(SCHEMA, values)


def make_engine(**kwargs):
    return AggregatingEngine(
        CompiledEngine(SCHEMA, domains=DOMAINS), **kwargs
    )


def link_of(subscription):
    return int(subscription.subscriber[1:])


def matched_ids(engine, ev):
    return sorted(s.subscription_id for s in engine.match(ev).subscriptions)


class TestCanonicalization:
    def test_strict_integer_bounds_close(self):
        loose = canonicalize_predicate(predicate(a1=RangeTest(RangeOp.LT, 2)))
        closed = canonicalize_predicate(predicate(a1=RangeTest(RangeOp.LE, 1)))
        assert loose == closed

    def test_equal_acceptance_predicates_share_a_group(self):
        engine = make_engine()
        first = sub("s0", a1=RangeTest(RangeOp.LT, 2))
        second = sub("s1", a1=RangeTest(RangeOp.LE, 1))
        engine.insert(first)
        engine.insert(second)
        assert engine.forest_nodes == 1
        assert engine.root_count == 1
        assert engine.dedup_hits == 1
        assert engine.compression_ratio == 2.0
        canonical, members, is_root = engine.group_of(first.subscription_id)
        assert members == 2 and is_root
        assert engine.group_of(second.subscription_id)[0] == canonical

    def test_dont_cares_and_equalities_pass_through(self):
        original = predicate(a1=EqualityTest(1))
        assert canonicalize_predicate(original) is original


class TestCoveringForest:
    def test_covered_insert_is_not_compiled(self):
        engine = make_engine()
        engine.insert(sub("s0"))  # empty predicate covers everything
        strict = sub("s1", a1=EqualityTest(1))
        engine.insert(strict)
        assert engine.forest_nodes == 2
        assert engine.root_count == 1  # only the cover reached the inner engine
        assert engine.inner.subscription_count == 1
        assert not engine.group_of(strict.subscription_id)[2]

    def test_later_cover_demotes_existing_roots(self):
        engine = make_engine()
        strict = sub("s0", a1=EqualityTest(1))
        engine.insert(strict)
        assert engine.group_of(strict.subscription_id)[2]
        engine.insert(sub("s1"))  # covers the earlier root
        assert engine.root_count == 1
        assert not engine.group_of(strict.subscription_id)[2]
        assert matched_ids(engine, event((1, 0, 0))) == sorted(
            s.subscription_id for s in engine.subscriptions
        )

    def test_removing_covering_parent_promotes_children(self):
        engine = make_engine()
        parent = sub("s0")
        left = sub("s1", a1=EqualityTest(0))
        right = sub("s2", a1=EqualityTest(1))
        for subscription in (parent, left, right):
            engine.insert(subscription)
        assert engine.root_count == 1
        engine.remove(parent.subscription_id)
        assert engine.root_count == 2
        assert engine.group_of(left.subscription_id)[2]
        assert engine.group_of(right.subscription_id)[2]
        assert matched_ids(engine, event((0, 0, 0))) == [left.subscription_id]
        assert matched_ids(engine, event((1, 0, 0))) == [right.subscription_id]

    def test_removing_covered_group_reattaches_grandchildren(self):
        engine = make_engine()
        root = sub("s0")
        middle = sub("s1", a1=EqualityTest(0))
        leaf = sub("s2", a1=EqualityTest(0), a2=EqualityTest(0))
        for subscription in (root, middle, leaf):
            engine.insert(subscription)
        engine.remove(middle.subscription_id)
        assert engine.forest_nodes == 2
        assert engine.root_count == 1
        assert matched_ids(engine, event((0, 0, 0))) == sorted(
            [root.subscription_id, leaf.subscription_id]
        )

    def test_scan_limit_degrades_to_extra_roots_not_wrong_answers(self):
        engine = make_engine(cover_scan_limit=0)
        engine.insert(sub("s0"))
        strict = sub("s1", a1=EqualityTest(1))
        engine.insert(strict)
        # No cover search at all: both groups compile as roots...
        assert engine.root_count == 2
        # ...and matching is still exact.
        assert matched_ids(engine, event((1, 0, 0))) == sorted(
            s.subscription_id for s in engine.subscriptions
        )

    def test_member_removal_keeps_group_alive(self):
        engine = make_engine()
        first = sub("s0", a1=EqualityTest(1))
        second = sub("s1", a1=EqualityTest(1))
        engine.insert(first)
        engine.insert(second)
        engine.remove(first.subscription_id)
        assert engine.forest_nodes == 1
        assert engine.subscription_count == 1
        assert matched_ids(engine, event((1, 0, 0))) == [second.subscription_id]

    def test_cover_scan_accounting(self):
        engine = make_engine()
        engine.insert(sub("s0"))
        engine.insert(sub("s1", a1=EqualityTest(1)))
        assert engine.cover_probes == 2
        assert engine.mean_cover_candidates >= 0.0


class TestLinearMode:
    """The ``use_index=False`` path must build the same kind of forest
    through the bounded linear sibling scans."""

    def test_covered_insert_is_not_compiled(self):
        engine = make_engine(use_index=False)
        assert engine._index is None
        engine.insert(sub("s0"))
        strict = sub("s1", a1=EqualityTest(1))
        engine.insert(strict)
        assert engine.root_count == 1
        assert not engine.group_of(strict.subscription_id)[2]

    def test_later_cover_demotes_existing_roots(self):
        engine = make_engine(use_index=False)
        strict = sub("s0", a1=EqualityTest(1))
        engine.insert(strict)
        engine.insert(sub("s1"))
        assert engine.root_count == 1
        assert not engine.group_of(strict.subscription_id)[2]
        assert matched_ids(engine, event((1, 0, 0))) == sorted(
            s.subscription_id for s in engine.subscriptions
        )

    def test_dissolving_parent_promotes_children(self):
        engine = make_engine(use_index=False)
        parent = sub("s0")
        left = sub("s1", a1=EqualityTest(0))
        right = sub("s2", a1=EqualityTest(1))
        for subscription in (parent, left, right):
            engine.insert(subscription)
        engine.remove(parent.subscription_id)
        assert engine.root_count == 2
        assert matched_ids(engine, event((0, 0, 0))) == [left.subscription_id]

    def test_matches_indexed_forest_shape_on_small_pool(self):
        subscriptions = [
            sub("s0"),
            sub("s1", a1=EqualityTest(1)),
            sub("s2", a1=EqualityTest(1), a2=EqualityTest(0)),
            sub("s3", a2=RangeTest(RangeOp.LE, 1)),
            sub("s4", a1=EqualityTest(1)),
        ]
        indexed = make_engine()
        linear = make_engine(use_index=False)
        for subscription in subscriptions:
            indexed.insert(Subscription(subscription.predicate, subscription.subscriber))
            linear.insert(Subscription(subscription.predicate, subscription.subscriber))
        assert indexed.root_count == linear.root_count
        assert indexed.forest_nodes == linear.forest_nodes
        assert indexed.compression_ratio == linear.compression_ratio


class TestDescentCacheRepair:
    def test_dedup_insert_evicts_only_matching_entries(self):
        engine = make_engine()
        engine.insert(sub("s0"))  # universal root
        engine.insert(sub("s1", a1=EqualityTest(1)))  # covered group
        hit, miss = event((1, 0, 0)), event((0, 0, 0))
        engine.match(hit)
        engine.match(miss)
        assert len(engine._descent_cache) == 2
        extra = sub("s2", a1=EqualityTest(1))
        engine.insert(extra)  # dedup hit into the Eq(1) group
        # Only the entry whose event satisfies Eq(1) is stale; the miss
        # entry survives the surgical repair.
        assert len(engine._descent_cache) == 1
        assert extra.subscription_id in matched_ids(engine, hit)

    def test_member_removal_reaches_surviving_stream(self):
        engine = make_engine()
        keep = sub("s0", a1=EqualityTest(1))
        drop = sub("s1", a1=EqualityTest(1))
        engine.insert(keep)
        engine.insert(drop)
        hit, miss = event((1, 0, 0)), event((0, 0, 0))
        engine.match(hit)
        engine.match(miss)
        engine.remove(drop.subscription_id)
        assert matched_ids(engine, hit) == [keep.subscription_id]
        assert matched_ids(engine, miss) == []

    def test_new_root_insert_evicts_entries_it_now_matches(self):
        engine = make_engine()
        engine.insert(sub("s0", a1=EqualityTest(0)))
        ev = event((1, 0, 0))
        assert matched_ids(engine, ev) == []
        late = sub("s1", a1=EqualityTest(1))
        engine.insert(late)
        assert matched_ids(engine, ev) == [late.subscription_id]

    def test_repair_limit_falls_back_to_flush(self):
        engine = make_engine()
        engine._descent_repair_limit = 0
        engine.insert(sub("s0", a1=EqualityTest(1)))
        engine.match(event((0, 0, 0)))  # non-matching entry cached
        assert len(engine._descent_cache) == 1
        engine.insert(sub("s1", a1=EqualityTest(2)))  # any churn now flushes
        assert len(engine._descent_cache) == 0


class TestCompiledDescent:
    def _warm_engine(self, **kwargs):
        engine = make_engine(
            subtree_compile_threshold=2, subtree_min_size=1, **kwargs
        )
        engine.insert(sub("s0"))  # universal root
        engine.insert(sub("s1", a1=EqualityTest(1)))
        engine.insert(sub("s2", a2=EqualityTest(2)))
        return engine

    def test_hot_subtree_compiles_and_matches_identically(self):
        engine = self._warm_engine()
        # Distinct events: descent hits only accumulate on cache misses.
        first = matched_ids(engine, event((1, 0, 0)))
        assert engine.subtree_compiles == 0
        second = matched_ids(engine, event((0, 2, 0)))
        assert engine.subtree_compiles == 1
        root = next(iter(engine._roots.values()))
        assert root.subtree_program is not None
        ids = {s.subscription_id for s in engine.subscriptions}
        by_subscriber = {
            s.subscriber: s.subscription_id for s in engine.subscriptions
        }
        assert set(first) == {by_subscriber["s0"], by_subscriber["s1"]}
        assert set(second) == {by_subscriber["s0"], by_subscriber["s2"]}
        # Compiled descent serves subsequent misses with the same answers.
        third = matched_ids(engine, event((1, 2, 0)))
        assert set(third) == ids

    def test_structural_churn_invalidates_the_program(self):
        engine = self._warm_engine()
        matched_ids(engine, event((1, 0, 0)))
        matched_ids(engine, event((0, 2, 0)))
        assert engine.subtree_compiles == 1
        late = sub("s3", a3=EqualityTest(0))
        engine.insert(late)  # attaches under the universal root
        root = next(iter(engine._roots.values()))
        assert root.subtree_program is None
        # The counter warms back up and the recompiled program sees s3.
        matched = matched_ids(engine, event((2, 0, 0)))
        matched = matched_ids(engine, event((2, 1, 0)))
        assert engine.subtree_compiles == 2
        assert late.subscription_id in matched

    def test_threshold_zero_disables_compiled_descent(self):
        engine = self._warm_engine()
        engine.subtree_compile_threshold = 0
        for a1 in range(3):
            for a2 in range(3):
                matched_ids(engine, event((a1, a2, 0)))
        assert engine.subtree_compiles == 0

    def test_small_subtrees_reset_instead_of_compiling(self):
        engine = make_engine(subtree_compile_threshold=1, subtree_min_size=5)
        engine.insert(sub("s0"))
        engine.insert(sub("s1", a1=EqualityTest(1)))
        matched_ids(engine, event((1, 0, 0)))
        assert engine.subtree_compiles == 0
        root = next(iter(engine._roots.values()))
        assert root.subtree_program is None
        assert root.descent_hits == 0  # reset: too small to be worth it


class TestLinkRefresh:
    def test_dedup_member_lights_its_link_without_rebuild(self):
        engine = make_engine()
        engine.bind_links(NUM_LINKS, link_of)
        first = sub("s0", a1=EqualityTest(1))
        engine.insert(first)
        mask = TritVector([M] * NUM_LINKS)
        ev = event((1, 0, 0))
        assert [t.name for t in engine.match_links(ev, mask).mask] == [
            "YES", "NO", "NO", "NO",
        ]
        # Same body, different subscriber/link: a membership-only change.
        second = sub("s2", a1=EqualityTest(1))
        engine.insert(second)
        assert engine.root_count == 1
        assert [t.name for t in engine.match_links(ev, mask).mask] == [
            "YES", "NO", "YES", "NO",
        ]
        engine.remove(first.subscription_id)
        assert [t.name for t in engine.match_links(ev, mask).mask] == [
            "NO", "NO", "YES", "NO",
        ]

    def test_covered_members_contribute_links_through_descent(self):
        engine = make_engine()
        engine.bind_links(NUM_LINKS, link_of)
        engine.insert(sub("s0"))
        engine.insert(sub("s3", a1=EqualityTest(1)))  # covered, link 3
        mask = TritVector([M] * NUM_LINKS)
        hit = engine.match_links(event((1, 0, 0)), mask).mask
        miss = engine.match_links(event((0, 0, 0)), mask).mask
        assert [t.name for t in hit] == ["YES", "NO", "NO", "YES"]
        assert [t.name for t in miss] == ["YES", "NO", "NO", "NO"]


class TestErrorsAndFactory:
    def test_duplicate_id_rejected(self):
        engine = make_engine()
        subscription = sub("s0", a1=EqualityTest(1))
        engine.insert(subscription)
        with pytest.raises(SubscriptionError, match="already registered"):
            engine.insert(subscription)

    def test_unknown_remove_rejected(self):
        with pytest.raises(SubscriptionError, match="unknown subscription"):
            make_engine().remove(12345)

    def test_unsatisfiable_rejected(self):
        unsat = predicate(
            a1=[RangeTest(RangeOp.LT, 1), RangeTest(RangeOp.GT, 1)]
        )
        with pytest.raises(SubscriptionError, match="unsatisfiable"):
            make_engine().insert(Subscription(unsat, "s0"))

    def test_tree_engine_cannot_aggregate(self):
        with pytest.raises(SubscriptionError, match="aggregate"):
            create_engine("tree", SCHEMA, aggregate=True)
        with pytest.raises(SubscriptionError, match="refresh"):
            AggregatingEngine(TreeEngine(SCHEMA))

    def test_factory_wraps_compiled_and_sharded(self):
        for inner, kwargs in (("compiled", {}), ("sharded", {"shards": 2})):
            engine = create_engine(
                inner, SCHEMA, domains=DOMAINS, aggregate=True, **kwargs
            )
            assert isinstance(engine, AggregatingEngine)
            engine.insert(sub("s0", a1=EqualityTest(1)))
            assert engine.subscription_count == 1

    def test_subscriptions_lists_members_not_representatives(self):
        engine = make_engine()
        engine.insert(sub("s0", a1=EqualityTest(1)))
        engine.insert(sub("s1", a1=EqualityTest(1)))
        subscribers = sorted(s.subscriber for s in engine.subscriptions)
        assert subscribers == ["s0", "s1"]
