"""Unit tests for the online covering forest (repro.matching.aggregation).

The property suite (``tests/property/test_prop_aggregation.py``) pins the
end-to-end equivalence contract; these tests pin the forest mechanics the
equivalence rides on: canonical deduplication, covering attachment and
demotion, child promotion when a covering parent dissolves, the in-place
``refresh_links`` path on membership-only changes, and the error surface.
"""

from __future__ import annotations

import pytest

from repro.core import M, TritVector
from repro.errors import SubscriptionError
from repro.matching import Event, Predicate, Subscription, uniform_schema
from repro.matching.aggregation import (
    AggregatingEngine,
    canonicalize_predicate,
)
from repro.matching.engines import CompiledEngine, TreeEngine, create_engine
from repro.matching.predicates import EqualityTest, RangeOp, RangeTest

SCHEMA = uniform_schema(3)
DOMAINS = {name: [0, 1, 2] for name in SCHEMA.names}
NUM_LINKS = 4


def predicate(**tests):
    return Predicate(SCHEMA, tests)


def sub(subscriber="s0", **tests):
    return Subscription(predicate(**tests), subscriber)


def event(values=(0, 0, 0)):
    return Event.from_tuple(SCHEMA, values)


def make_engine(**kwargs):
    return AggregatingEngine(
        CompiledEngine(SCHEMA, domains=DOMAINS), **kwargs
    )


def link_of(subscription):
    return int(subscription.subscriber[1:])


def matched_ids(engine, ev):
    return sorted(s.subscription_id for s in engine.match(ev).subscriptions)


class TestCanonicalization:
    def test_strict_integer_bounds_close(self):
        loose = canonicalize_predicate(predicate(a1=RangeTest(RangeOp.LT, 2)))
        closed = canonicalize_predicate(predicate(a1=RangeTest(RangeOp.LE, 1)))
        assert loose == closed

    def test_equal_acceptance_predicates_share_a_group(self):
        engine = make_engine()
        first = sub("s0", a1=RangeTest(RangeOp.LT, 2))
        second = sub("s1", a1=RangeTest(RangeOp.LE, 1))
        engine.insert(first)
        engine.insert(second)
        assert engine.forest_nodes == 1
        assert engine.root_count == 1
        assert engine.dedup_hits == 1
        assert engine.compression_ratio == 2.0
        canonical, members, is_root = engine.group_of(first.subscription_id)
        assert members == 2 and is_root
        assert engine.group_of(second.subscription_id)[0] == canonical

    def test_dont_cares_and_equalities_pass_through(self):
        original = predicate(a1=EqualityTest(1))
        assert canonicalize_predicate(original) is original


class TestCoveringForest:
    def test_covered_insert_is_not_compiled(self):
        engine = make_engine()
        engine.insert(sub("s0"))  # empty predicate covers everything
        strict = sub("s1", a1=EqualityTest(1))
        engine.insert(strict)
        assert engine.forest_nodes == 2
        assert engine.root_count == 1  # only the cover reached the inner engine
        assert engine.inner.subscription_count == 1
        assert not engine.group_of(strict.subscription_id)[2]

    def test_later_cover_demotes_existing_roots(self):
        engine = make_engine()
        strict = sub("s0", a1=EqualityTest(1))
        engine.insert(strict)
        assert engine.group_of(strict.subscription_id)[2]
        engine.insert(sub("s1"))  # covers the earlier root
        assert engine.root_count == 1
        assert not engine.group_of(strict.subscription_id)[2]
        assert matched_ids(engine, event((1, 0, 0))) == sorted(
            s.subscription_id for s in engine.subscriptions
        )

    def test_removing_covering_parent_promotes_children(self):
        engine = make_engine()
        parent = sub("s0")
        left = sub("s1", a1=EqualityTest(0))
        right = sub("s2", a1=EqualityTest(1))
        for subscription in (parent, left, right):
            engine.insert(subscription)
        assert engine.root_count == 1
        engine.remove(parent.subscription_id)
        assert engine.root_count == 2
        assert engine.group_of(left.subscription_id)[2]
        assert engine.group_of(right.subscription_id)[2]
        assert matched_ids(engine, event((0, 0, 0))) == [left.subscription_id]
        assert matched_ids(engine, event((1, 0, 0))) == [right.subscription_id]

    def test_removing_covered_group_reattaches_grandchildren(self):
        engine = make_engine()
        root = sub("s0")
        middle = sub("s1", a1=EqualityTest(0))
        leaf = sub("s2", a1=EqualityTest(0), a2=EqualityTest(0))
        for subscription in (root, middle, leaf):
            engine.insert(subscription)
        engine.remove(middle.subscription_id)
        assert engine.forest_nodes == 2
        assert engine.root_count == 1
        assert matched_ids(engine, event((0, 0, 0))) == sorted(
            [root.subscription_id, leaf.subscription_id]
        )

    def test_scan_limit_degrades_to_extra_roots_not_wrong_answers(self):
        engine = make_engine(cover_scan_limit=0)
        engine.insert(sub("s0"))
        strict = sub("s1", a1=EqualityTest(1))
        engine.insert(strict)
        # No cover search at all: both groups compile as roots...
        assert engine.root_count == 2
        # ...and matching is still exact.
        assert matched_ids(engine, event((1, 0, 0))) == sorted(
            s.subscription_id for s in engine.subscriptions
        )

    def test_member_removal_keeps_group_alive(self):
        engine = make_engine()
        first = sub("s0", a1=EqualityTest(1))
        second = sub("s1", a1=EqualityTest(1))
        engine.insert(first)
        engine.insert(second)
        engine.remove(first.subscription_id)
        assert engine.forest_nodes == 1
        assert engine.subscription_count == 1
        assert matched_ids(engine, event((1, 0, 0))) == [second.subscription_id]


class TestLinkRefresh:
    def test_dedup_member_lights_its_link_without_rebuild(self):
        engine = make_engine()
        engine.bind_links(NUM_LINKS, link_of)
        first = sub("s0", a1=EqualityTest(1))
        engine.insert(first)
        mask = TritVector([M] * NUM_LINKS)
        ev = event((1, 0, 0))
        assert [t.name for t in engine.match_links(ev, mask).mask] == [
            "YES", "NO", "NO", "NO",
        ]
        # Same body, different subscriber/link: a membership-only change.
        second = sub("s2", a1=EqualityTest(1))
        engine.insert(second)
        assert engine.root_count == 1
        assert [t.name for t in engine.match_links(ev, mask).mask] == [
            "YES", "NO", "YES", "NO",
        ]
        engine.remove(first.subscription_id)
        assert [t.name for t in engine.match_links(ev, mask).mask] == [
            "NO", "NO", "YES", "NO",
        ]

    def test_covered_members_contribute_links_through_descent(self):
        engine = make_engine()
        engine.bind_links(NUM_LINKS, link_of)
        engine.insert(sub("s0"))
        engine.insert(sub("s3", a1=EqualityTest(1)))  # covered, link 3
        mask = TritVector([M] * NUM_LINKS)
        hit = engine.match_links(event((1, 0, 0)), mask).mask
        miss = engine.match_links(event((0, 0, 0)), mask).mask
        assert [t.name for t in hit] == ["YES", "NO", "NO", "YES"]
        assert [t.name for t in miss] == ["YES", "NO", "NO", "NO"]


class TestErrorsAndFactory:
    def test_duplicate_id_rejected(self):
        engine = make_engine()
        subscription = sub("s0", a1=EqualityTest(1))
        engine.insert(subscription)
        with pytest.raises(SubscriptionError, match="already registered"):
            engine.insert(subscription)

    def test_unknown_remove_rejected(self):
        with pytest.raises(SubscriptionError, match="unknown subscription"):
            make_engine().remove(12345)

    def test_unsatisfiable_rejected(self):
        unsat = predicate(
            a1=[RangeTest(RangeOp.LT, 1), RangeTest(RangeOp.GT, 1)]
        )
        with pytest.raises(SubscriptionError, match="unsatisfiable"):
            make_engine().insert(Subscription(unsat, "s0"))

    def test_tree_engine_cannot_aggregate(self):
        with pytest.raises(SubscriptionError, match="aggregate"):
            create_engine("tree", SCHEMA, aggregate=True)
        with pytest.raises(SubscriptionError, match="refresh"):
            AggregatingEngine(TreeEngine(SCHEMA))

    def test_factory_wraps_compiled_and_sharded(self):
        for inner, kwargs in (("compiled", {}), ("sharded", {"shards": 2})):
            engine = create_engine(
                inner, SCHEMA, domains=DOMAINS, aggregate=True, **kwargs
            )
            assert isinstance(engine, AggregatingEngine)
            engine.insert(sub("s0", a1=EqualityTest(1)))
            assert engine.subscription_count == 1

    def test_subscriptions_lists_members_not_representatives(self):
        engine = make_engine()
        engine.insert(sub("s0", a1=EqualityTest(1)))
        engine.insert(sub("s1", a1=EqualityTest(1)))
        subscribers = sorted(s.subscriber for s in engine.subscriptions)
        assert subscribers == ["s0", "s1"]
