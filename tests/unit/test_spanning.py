"""Unit tests for spanning trees."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.network import (
    SpanningTree,
    Topology,
    linear_chain,
    spanning_trees_for_publishers,
)


class TestSpanningTree:
    def test_parent_child_consistency(self, diamond_topology):
        tree = SpanningTree(diamond_topology, "B0")
        for node, parent in tree.parent.items():
            if parent is None:
                assert node == "B0"
            else:
                assert node in tree.children[parent]

    def test_root_has_no_parent(self, diamond_topology):
        tree = SpanningTree(diamond_topology, "B0")
        assert tree.parent["B0"] is None

    def test_every_node_spanned(self, diamond_topology):
        tree = SpanningTree(diamond_topology, "B0")
        assert set(tree.parent) == {n.name for n in diamond_topology.nodes()}

    def test_descendants(self):
        topology = linear_chain(3, subscribers_per_broker=1)
        tree = SpanningTree(topology, "B0")
        assert "B2" in tree.descendants("B1")
        assert "S.B2.00" in tree.descendants("B1")
        assert "B0" not in tree.descendants("B1")

    def test_is_downstream(self):
        topology = linear_chain(3, subscribers_per_broker=1)
        tree = SpanningTree(topology, "B0")
        assert tree.is_downstream("S.B2.00", "B1")
        assert not tree.is_downstream("S.B0.00", "B1")

    def test_downstream_via(self):
        topology = linear_chain(3, subscribers_per_broker=1)
        tree = SpanningTree(topology, "B0")
        via_b1 = tree.downstream_via("B0", "B1")
        assert "B2" in via_b1 and "S.B1.00" in via_b1
        # Client link: exactly that client.
        assert tree.downstream_via("B0", "S.B0.00") == frozenset({"S.B0.00"})
        # Not a tree child: empty.
        assert tree.downstream_via("B1", "B0") == frozenset()

    def test_path_from_root_and_depth(self):
        topology = linear_chain(4, subscribers_per_broker=1)
        tree = SpanningTree(topology, "B0")
        assert tree.path_from_root("B3") == ["B0", "B1", "B2", "B3"]
        assert tree.depth("B3") == 3
        assert tree.depth("S.B3.00") == 4
        assert tree.depth("B0") == 0

    def test_rooted_at_client_rejected(self):
        topology = linear_chain(2, subscribers_per_broker=1)
        with pytest.raises(RoutingError):
            SpanningTree(topology, "S.B0.00")

    def test_unreachable_nodes_rejected(self):
        topology = Topology()
        topology.add_broker("B0")
        topology.add_broker("B1")
        with pytest.raises(RoutingError):
            SpanningTree(topology, "B0")

    def test_unknown_node_queries(self, diamond_topology):
        tree = SpanningTree(diamond_topology, "B0")
        with pytest.raises(RoutingError):
            tree.descendants("zzz")
        with pytest.raises(RoutingError):
            tree.path_from_root("zzz")


class TestTreesForPublishers:
    def test_one_tree_per_publisher_broker(self, diamond_topology):
        trees = spanning_trees_for_publishers(diamond_topology)
        assert set(trees) == {"B0", "B3"}  # P1 on B0, P2 on B3
        for root, tree in trees.items():
            assert tree.root == root

    def test_publishers_on_same_broker_share_tree(self):
        topology = linear_chain(2, subscribers_per_broker=1)
        from repro.network import NodeKind

        topology.add_client("P2", "B0", kind=NodeKind.PUBLISHER)
        trees = spanning_trees_for_publishers(topology)
        assert set(trees) == {"B0"}

    def test_no_publishers_no_trees(self):
        topology = Topology()
        topology.add_broker("B0")
        topology.add_client("c0", "B0")
        assert spanning_trees_for_publishers(topology) == {}
