"""Unit tests for attribute tests, predicates and subscriptions."""

from __future__ import annotations

import pytest

from repro.errors import PredicateError
from repro.matching import (
    DONT_CARE,
    DontCare,
    EqualityTest,
    Event,
    IntervalTest,
    Predicate,
    RangeOp,
    RangeTest,
    Subscription,
    normalize_tests,
)


class TestDontCare:
    def test_matches_everything(self):
        for value in ("x", 0, 3.5, True):
            assert DONT_CARE.evaluate(value)

    def test_is_dont_care(self):
        assert DONT_CARE.is_dont_care
        assert not EqualityTest(1).is_dont_care

    def test_singleton_equality(self):
        assert DontCare() == DONT_CARE
        assert hash(DontCare()) == hash(DONT_CARE)


class TestEqualityTest:
    def test_evaluate(self):
        test = EqualityTest("IBM")
        assert test.evaluate("IBM")
        assert not test.evaluate("MSFT")

    def test_equality_is_type_sensitive(self):
        # 1 == 1.0 in Python, but a branch keyed by int 1 is a different
        # branch from one keyed by 1.0 only if types differ in the test.
        assert EqualityTest(1) != EqualityTest(1.0)
        assert EqualityTest(1) == EqualityTest(1)

    def test_describe(self):
        assert EqualityTest(5).describe("a1") == "a1=5"


class TestRangeTest:
    @pytest.mark.parametrize(
        "op,bound,value,expected",
        [
            (RangeOp.LT, 10, 5, True),
            (RangeOp.LT, 10, 10, False),
            (RangeOp.LE, 10, 10, True),
            (RangeOp.GT, 10, 11, True),
            (RangeOp.GT, 10, 10, False),
            (RangeOp.GE, 10, 10, True),
            (RangeOp.NE, 10, 10, False),
            (RangeOp.NE, 10, 11, True),
        ],
    )
    def test_evaluate(self, op, bound, value, expected):
        assert RangeTest(op, bound).evaluate(value) is expected

    def test_incomparable_types_do_not_match(self):
        assert not RangeTest(RangeOp.LT, 10).evaluate("string")

    def test_rejects_boolean_bound(self):
        with pytest.raises(PredicateError):
            RangeTest(RangeOp.LT, True)

    def test_from_symbol(self):
        assert RangeOp.from_symbol("<=") is RangeOp.LE
        with pytest.raises(PredicateError):
            RangeOp.from_symbol("~")


class TestIntervalTest:
    def test_closed_interval(self):
        test = IntervalTest(low=1, high=5)
        assert test.evaluate(1) and test.evaluate(5) and test.evaluate(3)
        assert not test.evaluate(0) and not test.evaluate(6)

    def test_open_interval(self):
        test = IntervalTest(low=1, high=5, low_closed=False, high_closed=False)
        assert not test.evaluate(1) and not test.evaluate(5)
        assert test.evaluate(2)

    def test_half_unbounded(self):
        assert IntervalTest(low=3).evaluate(1_000_000)
        assert IntervalTest(high=3).evaluate(-1_000_000)

    def test_exclusions(self):
        test = IntervalTest(low=0, high=10, excluded=(5,))
        assert test.evaluate(4)
        assert not test.evaluate(5)

    def test_emptiness(self):
        assert IntervalTest(low=5, high=3).is_empty
        assert IntervalTest(low=5, high=5, high_closed=False).is_empty
        assert not IntervalTest(low=5, high=5).is_empty


class TestNormalizeTests:
    def test_empty_is_dont_care(self):
        assert normalize_tests([]) is DONT_CARE
        assert normalize_tests([DONT_CARE, DONT_CARE]) is DONT_CARE

    def test_single_equality_passthrough(self):
        assert normalize_tests([EqualityTest(3)]) == EqualityTest(3)

    def test_agreeing_equalities_collapse(self):
        assert normalize_tests([EqualityTest(3), EqualityTest(3)]) == EqualityTest(3)

    def test_conflicting_equalities_are_empty(self):
        result = normalize_tests([EqualityTest(3), EqualityTest(4)])
        assert isinstance(result, IntervalTest) and result.is_empty

    def test_equality_consistent_with_range(self):
        result = normalize_tests([EqualityTest(3), RangeTest(RangeOp.LT, 10)])
        assert result == EqualityTest(3)

    def test_equality_inconsistent_with_range(self):
        result = normalize_tests([EqualityTest(30), RangeTest(RangeOp.LT, 10)])
        assert isinstance(result, IntervalTest) and result.is_empty

    def test_two_ranges_to_interval(self):
        result = normalize_tests(
            [RangeTest(RangeOp.GT, 100), RangeTest(RangeOp.LT, 120)]
        )
        assert isinstance(result, IntervalTest)
        assert result.evaluate(110)
        assert not result.evaluate(100)
        assert not result.evaluate(120)

    def test_tightest_bounds_win(self):
        result = normalize_tests(
            [RangeTest(RangeOp.GE, 1), RangeTest(RangeOp.GT, 1), RangeTest(RangeOp.LE, 9)]
        )
        assert not result.evaluate(1)
        assert result.evaluate(2)

    def test_not_equal_becomes_exclusion(self):
        result = normalize_tests([RangeTest(RangeOp.NE, 5), RangeTest(RangeOp.LT, 10)])
        assert not result.evaluate(5)
        assert result.evaluate(4)


class TestPredicate:
    def test_matches_conjunction(self, stock_schema, ibm_event):
        predicate = Predicate(
            stock_schema,
            {
                "issue": EqualityTest("IBM"),
                "price": RangeTest(RangeOp.LT, 120),
                "volume": RangeTest(RangeOp.GT, 1000),
            },
        )
        assert predicate.matches(ibm_event)

    def test_unconstrained_attributes_are_dont_care(self, stock_schema, ibm_event):
        predicate = Predicate(stock_schema, {"issue": EqualityTest("IBM")})
        assert predicate.test_for("price").is_dont_care
        assert predicate.matches(ibm_event)

    def test_unknown_attribute_rejected(self, stock_schema):
        with pytest.raises(PredicateError):
            Predicate(stock_schema, {"nope": EqualityTest(1)})

    def test_range_on_boolean_rejected(self):
        from repro.matching import EventSchema

        schema = EventSchema([("flag", "boolean")])
        with pytest.raises(PredicateError):
            Predicate(schema, {"flag": RangeTest(RangeOp.LT, 1)})

    def test_equality_value_coerced(self, stock_schema):
        predicate = Predicate(stock_schema, {"price": EqualityTest(120)})
        test = predicate.test_for("price")
        assert isinstance(test, EqualityTest) and test.value == 120.0

    def test_from_values(self, stock_schema, ibm_event):
        predicate = Predicate.from_values(stock_schema, issue="IBM", volume=2000)
        assert predicate.matches(ibm_event)

    def test_mismatched_schema_rejected(self, stock_schema, schema5):
        predicate = Predicate(stock_schema, {})
        event = Event.from_tuple(schema5, (1, 2, 3, 4, 5))
        with pytest.raises(PredicateError):
            predicate.matches(event)

    def test_num_dont_cares(self, stock_schema):
        predicate = Predicate.from_values(stock_schema, issue="IBM")
        assert predicate.num_dont_cares == 2

    def test_satisfiability(self, stock_schema):
        ok = Predicate(stock_schema, {"price": [RangeTest(RangeOp.LT, 10)]})
        bad = Predicate(
            stock_schema,
            {"price": [RangeTest(RangeOp.LT, 10), RangeTest(RangeOp.GT, 20)]},
        )
        assert ok.is_satisfiable
        assert not bad.is_satisfiable

    def test_describe_round_trips_through_parser(self, stock_schema):
        from repro.matching import parse_predicate

        predicate = Predicate(
            stock_schema,
            {"issue": EqualityTest("IBM"), "volume": [RangeTest(RangeOp.GT, 1000)]},
        )
        assert parse_predicate(stock_schema, predicate.describe()) == predicate

    def test_describe_empty(self, stock_schema):
        assert Predicate(stock_schema, {}).describe() == "*"

    def test_equality_and_hash(self, stock_schema):
        a = Predicate.from_values(stock_schema, issue="IBM")
        b = Predicate.from_values(stock_schema, issue="IBM")
        assert a == b and hash(a) == hash(b)


class TestSubscription:
    def test_ids_unique(self, stock_schema):
        predicate = Predicate.from_values(stock_schema, issue="IBM")
        a = Subscription(predicate, "alice")
        b = Subscription(predicate, "alice")
        assert a.subscription_id != b.subscription_id
        assert a != b

    def test_explicit_id(self, stock_schema):
        predicate = Predicate(stock_schema, {})
        sub = Subscription(predicate, "alice", subscription_id=77)
        assert sub.subscription_id == 77

    def test_matches_delegates(self, stock_schema, ibm_event):
        sub = Subscription(Predicate.from_values(stock_schema, issue="IBM"), "alice")
        assert sub.matches(ibm_event)

    def test_equality_by_id(self, stock_schema):
        predicate = Predicate(stock_schema, {})
        assert Subscription(predicate, "a", subscription_id=1) == Subscription(
            predicate, "b", subscription_id=1
        )
