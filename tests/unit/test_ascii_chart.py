"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentTable
from repro.experiments.ascii_chart import (
    Series,
    chart1_series,
    chart2_series,
    chart3_series,
    render_chart,
)


class TestRender:
    def test_basic_render_contains_axes_and_legend(self):
        text = render_chart(
            "Demo",
            [Series("up", [(0, 0), (10, 10)]), Series("down", [(0, 10), (10, 0)])],
            width=20,
            height=8,
        )
        assert "Demo" in text
        assert "legend: * up   o down" in text
        assert "+" + "-" * 20 in text

    def test_glyphs_plotted(self):
        text = render_chart("T", [Series("s", [(0, 0), (5, 5)])], width=12, height=6)
        assert "*" in text

    def test_empty_series(self):
        assert "(no data)" in render_chart("T", [Series("s", [])])

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError):
            render_chart("T", [Series("s", [(0, 0), (1, 10)])], y_log=True)

    def test_log_scale_ticks(self):
        text = render_chart(
            "T", [Series("s", [(1, 10), (2, 10000)])], y_log=True, height=6
        )
        assert "1e+04" in text or "10000" in text

    def test_single_point(self):
        text = render_chart("T", [Series("s", [(3, 7)])], width=10, height=4)
        assert "*" in text

    def test_x_label_rendered(self):
        text = render_chart(
            "T", [Series("s", [(0, 1), (9, 2)])], x_label="subscriptions"
        )
        assert "subscriptions" in text


class TestSeriesBuilders:
    def test_chart1_series(self):
        table = ExperimentTable("c1", ["subscriptions", "protocol", "rate", "probes"])
        table.add_row(100, "flooding", 5000.0, 8)
        table.add_row(100, "link-matching", 20000.0, 9)
        table.add_row(200, "flooding", 5100.0, 8)
        series = chart1_series(table)
        names = [s.name for s in series]
        assert names == ["flooding", "link-matching"]
        assert series[0].points == [(100.0, 5000.0), (200.0, 5100.0)]

    def test_chart2_series_skips_blanks(self):
        table = ExperimentTable("c2", ["subscriptions", "lm_1_hop", "centralized"])
        table.add_row(100, "", 12.0)
        table.add_row(200, 5.0, 14.0)
        series = {s.name: s for s in chart2_series(table)}
        assert series["lm_1_hop"].points == [(200.0, 5.0)]
        assert len(series["centralized"].points) == 2

    def test_chart3_series(self):
        table = ExperimentTable(
            "c3",
            ["subscriptions", "avg_match_ms", "avg_matches", "avg_steps", "growth_vs_prev"],
        )
        table.add_row(100, 0.5, 1.0, 10, 1.0)
        (series,) = chart3_series(table)
        assert series.points == [(100.0, 0.5)]
