"""Unit tests for canonical shortest paths and routing tables."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.network import (
    RoutingTable,
    ShortestPaths,
    Topology,
    all_routing_tables,
    linear_chain,
)


class TestShortestPaths:
    def test_distances_on_chain(self):
        topology = linear_chain(3, subscribers_per_broker=0, latency_ms=10.0)
        paths = ShortestPaths(topology, "B0")
        assert paths.distance_ms["B0"] == 0.0
        assert paths.distance_ms["B1"] == 10.0
        assert paths.distance_ms["B2"] == 20.0

    def test_path_to(self):
        topology = linear_chain(4, subscribers_per_broker=0)
        paths = ShortestPaths(topology, "B0")
        assert paths.path_to("B3") == ["B0", "B1", "B2", "B3"]

    def test_path_to_source(self):
        topology = linear_chain(2, subscribers_per_broker=0)
        paths = ShortestPaths(topology, "B0")
        assert paths.path_to("B0") == ["B0"]
        assert paths.hop_count("B0") == 0

    def test_unreachable(self):
        topology = Topology()
        topology.add_broker("B0")
        topology.add_broker("B1")
        paths = ShortestPaths(topology, "B0")
        with pytest.raises(RoutingError):
            paths.path_to("B1")

    def test_shorter_metric_wins_over_fewer_hops(self):
        topology = Topology()
        for name in ("A", "B", "C"):
            topology.add_broker(name)
        topology.add_link("A", "C", latency_ms=100.0)
        topology.add_link("A", "B", latency_ms=10.0)
        topology.add_link("B", "C", latency_ms=10.0)
        paths = ShortestPaths(topology, "A")
        assert paths.path_to("C") == ["A", "B", "C"]

    def test_canonical_tie_break_is_lexicographic(self):
        # Two equal-cost paths A-B-D and A-C-D: the canonical one goes via B.
        topology = Topology()
        for name in ("A", "B", "C", "D"):
            topology.add_broker(name)
        topology.add_link("A", "B", latency_ms=10.0)
        topology.add_link("A", "C", latency_ms=10.0)
        topology.add_link("B", "D", latency_ms=10.0)
        topology.add_link("C", "D", latency_ms=10.0)
        paths = ShortestPaths(topology, "A")
        assert paths.path_to("D") == ["A", "B", "D"]

    def test_suffix_property(self, diamond_topology):
        # Any suffix of a canonical path is itself canonical — the property
        # that makes routing tables and spanning trees agree.
        for source in diamond_topology.brokers():
            source_paths = ShortestPaths(diamond_topology, source)
            for destination in diamond_topology.brokers():
                path = source_paths.path_to(destination)
                for i in range(1, len(path)):
                    inner = ShortestPaths(diamond_topology, path[i])
                    assert inner.path_to(destination) == path[i:]


class TestRoutingTable:
    def test_next_hop(self):
        topology = linear_chain(3, subscribers_per_broker=1)
        table = RoutingTable(topology, "B0")
        assert table.next_hop("B2") == "B1"
        assert table.next_hop("S.B2.00") == "B1"
        assert table.next_hop("S.B0.00") == "S.B0.00"

    def test_destinations_via(self):
        topology = linear_chain(3, subscribers_per_broker=1)
        table = RoutingTable(topology, "B0")
        via_b1 = table.destinations_via("B1")
        assert "B2" in via_b1 and "S.B2.00" in via_b1
        assert "S.B0.00" not in via_b1

    def test_distance(self):
        topology = linear_chain(3, subscribers_per_broker=0, latency_ms=10.0)
        table = RoutingTable(topology, "B0")
        assert table.distance_ms("B2") == 20.0

    def test_unknown_destination(self):
        topology = linear_chain(2, subscribers_per_broker=0)
        table = RoutingTable(topology, "B0")
        with pytest.raises(RoutingError):
            table.next_hop("nope")
        with pytest.raises(RoutingError):
            table.distance_ms("nope")

    def test_client_cannot_own_routing_table(self):
        topology = linear_chain(2, subscribers_per_broker=1)
        with pytest.raises(RoutingError):
            RoutingTable(topology, "S.B0.00")

    def test_all_routing_tables(self, diamond_topology):
        tables = all_routing_tables(diamond_topology)
        assert set(tables) == set(diamond_topology.brokers())
        # Tables agree pairwise thanks to canonical paths: B0's route to any
        # destination via X continues exactly as X's route.
        for broker, table in tables.items():
            for destination in diamond_topology.clients():
                hop = table.next_hop(destination)
                if hop == destination:
                    continue
                remaining = tables[hop].next_hop(destination)
                assert remaining != broker  # never bounce back
