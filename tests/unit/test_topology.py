"""Unit tests for the topology model."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.network import Link, NodeKind, Topology


class TestNodesAndLinks:
    def test_add_broker(self):
        topology = Topology()
        node = topology.add_broker("B0")
        assert node.kind is NodeKind.BROKER
        assert "B0" in topology

    def test_duplicate_node_rejected(self):
        topology = Topology()
        topology.add_broker("B0")
        with pytest.raises(TopologyError):
            topology.add_broker("B0")

    def test_add_client_requires_broker(self):
        topology = Topology()
        with pytest.raises(TopologyError):
            topology.add_client("c", "nope")

    def test_client_kind_must_be_client(self):
        topology = Topology()
        topology.add_broker("B0")
        with pytest.raises(TopologyError):
            topology.add_client("c", "B0", kind=NodeKind.BROKER)

    def test_self_link_rejected(self):
        topology = Topology()
        topology.add_broker("B0")
        with pytest.raises(TopologyError):
            topology.add_link("B0", "B0", latency_ms=1)

    def test_duplicate_link_rejected_either_direction(self):
        topology = Topology()
        topology.add_broker("B0")
        topology.add_broker("B1")
        topology.add_link("B0", "B1", latency_ms=1)
        with pytest.raises(TopologyError):
            topology.add_link("B1", "B0", latency_ms=1)

    def test_link_to_unknown_node(self):
        topology = Topology()
        topology.add_broker("B0")
        with pytest.raises(TopologyError):
            topology.add_link("B0", "B9", latency_ms=1)

    def test_negative_latency_rejected(self):
        with pytest.raises(TopologyError):
            Link("a", "b", -1.0)

    def test_client_client_link_rejected(self):
        topology = Topology()
        topology.add_broker("B0")
        topology.add_client("c0", "B0")
        topology.add_client("c1", "B0")
        with pytest.raises(TopologyError):
            topology.add_link("c0", "c1", latency_ms=1)

    def test_link_other(self):
        link = Link("a", "b", 1.0)
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(TopologyError):
            link.other("c")

    def test_link_key_canonical(self):
        assert Link("b", "a", 1.0).key() == ("a", "b")


class TestQueries:
    def test_roles(self, two_broker_topology):
        assert two_broker_topology.brokers() == ["B0", "B1"]
        assert two_broker_topology.subscribers() == ["c0", "c1"]
        assert two_broker_topology.publishers() == ["P1"]
        assert sorted(two_broker_topology.clients()) == ["P1", "c0", "c1"]

    def test_neighbors_sorted(self, diamond_topology):
        assert diamond_topology.neighbors("B0") == ["B1", "B2", "P1", "c.B0"]

    def test_link_index_is_dense_and_stable(self, diamond_topology):
        index = diamond_topology.link_index("B0")
        assert sorted(index.values()) == list(range(len(index)))
        assert index == diamond_topology.link_index("B0")

    def test_degree(self, diamond_topology):
        assert diamond_topology.degree("B3") == 4  # B1, B2, c.B3, P2

    def test_broker_of(self, two_broker_topology):
        assert two_broker_topology.broker_of("c1") == "B1"

    def test_broker_of_rejects_broker(self, two_broker_topology):
        with pytest.raises(TopologyError):
            two_broker_topology.broker_of("B0")

    def test_clients_of(self, two_broker_topology):
        assert two_broker_topology.clients_of("B0") == ["P1", "c0"]

    def test_broker_neighbors(self, diamond_topology):
        assert diamond_topology.broker_neighbors("B0") == ["B1", "B2"]

    def test_link_between(self, two_broker_topology):
        link = two_broker_topology.link_between("B0", "B1")
        assert link.latency_ms == 10.0
        with pytest.raises(TopologyError):
            two_broker_topology.link_between("B0", "c1")

    def test_unknown_node_queries(self, two_broker_topology):
        with pytest.raises(TopologyError):
            two_broker_topology.node("zzz")
        with pytest.raises(TopologyError):
            two_broker_topology.neighbors("zzz")


class TestValidation:
    def test_connected(self, diamond_topology):
        assert diamond_topology.is_connected()
        diamond_topology.validate()

    def test_disconnected_detected(self):
        topology = Topology()
        topology.add_broker("B0")
        topology.add_broker("B1")
        assert not topology.is_connected()
        with pytest.raises(TopologyError):
            topology.validate()

    def test_empty_topology_has_no_brokers(self):
        with pytest.raises(TopologyError):
            Topology().validate()

    def test_node_kind_is_client(self):
        assert NodeKind.SUBSCRIBER.is_client
        assert NodeKind.PUBLISHER.is_client
        assert not NodeKind.BROKER.is_client
