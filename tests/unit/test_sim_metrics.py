"""Unit tests for broker stats, delivery records and overload detection."""

from __future__ import annotations

from repro.sim import BrokerStats, DeliveryRecord, SimulationResult, TICK_US


def stats_with_queue_profile(profile, busy_fraction=1.0, elapsed=10_000):
    stats = BrokerStats("B0")
    stats.busy_ticks = int(elapsed * busy_fraction)
    for i, length in enumerate(profile):
        stats.record_queue(i * (elapsed // max(1, len(profile))), length)
    return stats


class TestBrokerStats:
    def test_utilization(self):
        stats = BrokerStats("B0")
        stats.busy_ticks = 500
        assert stats.utilization(1000) == 0.5
        assert stats.utilization(0) == 0.0

    def test_max_queue_tracked(self):
        stats = BrokerStats("B0")
        stats.record_queue(0, 3)
        stats.record_queue(1, 10)
        stats.record_queue(2, 2)
        assert stats.max_queue == 10

    def test_idle_broker_not_overloaded(self):
        stats = stats_with_queue_profile([0] * 30, busy_fraction=0.2)
        assert not stats.is_overloaded(10_000)

    def test_busy_but_stable_not_overloaded(self):
        # Saturated CPU with a small steady queue is "keeping up".
        stats = stats_with_queue_profile([3] * 30, busy_fraction=1.0)
        assert not stats.is_overloaded(10_000)

    def test_growing_queue_overloaded(self):
        profile = [i * 5 for i in range(30)]  # linear growth to 145
        stats = stats_with_queue_profile(profile, busy_fraction=1.0)
        assert stats.is_overloaded(10_000)

    def test_growth_without_saturation_not_overloaded(self):
        profile = [i * 5 for i in range(30)]
        stats = stats_with_queue_profile(profile, busy_fraction=0.5)
        assert not stats.is_overloaded(10_000)

    def test_drained_spike_not_overloaded(self):
        # A transient burst that drains by the end of the run.
        profile = [0] * 10 + [50] * 5 + [0] * 15
        stats = stats_with_queue_profile(profile, busy_fraction=1.0)
        assert not stats.is_overloaded(10_000)


class TestDeliveryRecord:
    def test_latency(self):
        record = DeliveryRecord("c0", 1, 100, 350, True, 2)
        assert record.latency_ticks == 250
        assert abs(record.latency_ms - 250 * TICK_US / 1000.0) < 1e-9


def make_result(**kwargs):
    defaults = dict(
        elapsed_ticks=10_000,
        broker_stats={},
        link_messages={},
        deliveries=[],
        published_events=0,
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_aborted_flag_forces_overload(self):
        result = make_result(aborted_overloaded=True)
        assert result.is_overloaded

    def test_matched_and_wasted_deliveries(self):
        deliveries = [
            DeliveryRecord("c0", 1, 0, 10, True, 1),
            DeliveryRecord("c1", 1, 0, 10, False, 1),
            DeliveryRecord("c2", 1, 0, 30, True, 1),
        ]
        result = make_result(deliveries=deliveries)
        assert len(result.matched_deliveries) == 2
        assert result.wasted_deliveries == 1

    def test_mean_latency(self):
        deliveries = [
            DeliveryRecord("c0", 1, 0, 100, True, 1),
            DeliveryRecord("c1", 1, 0, 300, True, 1),
        ]
        result = make_result(deliveries=deliveries)
        assert abs(result.mean_latency_ms() - 200 * TICK_US / 1000.0) < 1e-9

    def test_mean_latency_empty_is_none(self):
        assert make_result().mean_latency_ms() is None

    def test_totals(self):
        stats = BrokerStats("B0")
        stats.processed = 7
        result = make_result(
            broker_stats={"B0": stats}, link_messages={("a", "b"): 3, ("b", "c"): 4}
        )
        assert result.total_broker_messages == 7
        assert result.total_link_messages == 7
