"""Unit tests for match-once forwarding: digests, projection, epochs."""

from __future__ import annotations

import pytest

from repro.core.router import RouteDecision
from repro.core.trits import TritVector
from repro.errors import CodecError, RoutingError
from repro.matching import Event, uniform_schema
from repro.matching.digest import (
    DENSE_HEADER_BYTES,
    ID_BYTES,
    MatchDigest,
    mix_subscription_id,
)
from repro.matching.engines import create_engine
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.protocols import LinkMatchingProtocol, ProtocolContext, SimMessage
from tests.conftest import make_subscription

SCHEMA2 = uniform_schema(2)


class TestMatchDigestEncoding:
    def test_sparse_roundtrip(self):
        digest = MatchDigest(7, 0xDEADBEEF, (3, 90, 4096))
        assert not digest.dense
        assert MatchDigest.from_bytes(digest.to_bytes()) == digest

    def test_empty_and_singleton_are_sparse(self):
        assert not MatchDigest(1, 2, ()).dense
        assert not MatchDigest(1, 2, (12345,)).dense

    def test_dense_crossover_is_exact(self):
        # span such that bitmap beats the id list by exactly one byte.
        ids = tuple(range(100, 100 + 3))
        span = ids[-1] - ids[0] + 1
        assert DENSE_HEADER_BYTES + (span + 7) // 8 < ID_BYTES * len(ids)
        digest = MatchDigest(1, 2, ids)
        assert digest.dense
        assert MatchDigest.from_bytes(digest.to_bytes()) == digest

    def test_wide_span_stays_sparse(self):
        digest = MatchDigest(1, 2, (0, 10**6))
        assert not digest.dense
        assert MatchDigest.from_bytes(digest.to_bytes()) == digest

    def test_encoded_size_matches_wire_bytes(self):
        for ids in [(), (5,), tuple(range(50)), (1, 2**40)]:
            digest = MatchDigest(3, 4, ids)
            assert digest.encoded_size_bytes == len(digest.to_bytes())

    def test_unknown_kind_byte_rejected(self):
        payload = bytes((99,)) + bytes(16)
        with pytest.raises(CodecError):
            MatchDigest.from_bytes(payload)

    def test_truncation_rejected(self):
        data = MatchDigest(1, 2, (3, 4)).to_bytes()
        with pytest.raises(CodecError):
            MatchDigest.from_bytes(data[:-1])

    def test_mixed_ids_do_not_collide_like_raw_xor(self):
        # Raw XOR of consecutive ids collides (1 ^ 2 ^ 3 == 0); the mixed
        # form must not.
        assert 1 ^ 2 ^ 3 == 0
        assert (
            mix_subscription_id(1) ^ mix_subscription_id(2) ^ mix_subscription_id(3)
        ) != 0


class TestProjectLinks:
    def _engine(self, name="compiled", **kwargs):
        engine = create_engine(name, SCHEMA2, domains=None, **kwargs)
        subs = [
            make_subscription(SCHEMA2, "a1=1", "alice"),
            make_subscription(SCHEMA2, "a1=2", "bob"),
            make_subscription(SCHEMA2, "a2=5", "alice"),
        ]
        for sub in subs:
            engine.insert(sub)
        links = {"alice": 0, "bob": 1}
        engine.bind_links(2, lambda s: links[s.subscriber])
        return engine, subs

    @pytest.mark.parametrize("name", ["tree", "compiled"])
    def test_projection_matches_refinement(self, name):
        engine, subs = self._engine(name)
        event = Event.from_tuple(SCHEMA2, (1, 5))
        matched = [s for s in engine.match(event).subscriptions]
        ids = sorted(s.subscription_id for s in matched)
        # All links start Maybe: refined Yes = links of matched subs.
        maybe = (1 << 2) - 1
        final_yes, steps = engine.project_links(ids, 0, maybe)
        expected_bits = 0
        links = {"alice": 0, "bob": 1}
        for s in matched:
            expected_bits |= 1 << links[s.subscriber]
        assert final_yes == expected_bits
        assert steps >= 1

    @pytest.mark.parametrize("name", ["tree", "compiled"])
    def test_yes_bits_pass_through(self, name):
        engine, _subs = self._engine(name)
        final_yes, _steps = engine.project_links([], 0b10, 0b01)
        assert final_yes == 0b10  # already-Yes links survive an empty match

    @pytest.mark.parametrize("name", ["tree", "compiled"])
    def test_unknown_id_raises(self, name):
        engine, _subs = self._engine(name)
        with pytest.raises(RoutingError):
            engine.project_links([999_999_999], 0, 0b11)

    def test_unbound_engine_raises(self):
        engine = create_engine("compiled", SCHEMA2, domains=None)
        engine.insert(make_subscription(SCHEMA2, "a1=1", "alice"))
        with pytest.raises(RoutingError):
            engine.project_links([1], 0, 1)

    def test_insert_invalidates_projection(self):
        engine, _subs = self._engine("tree")
        engine.project_links([], 0, 0)  # builds the table
        new = make_subscription(SCHEMA2, "a2=7", "bob")
        engine.insert(new)
        final_yes, _steps = engine.project_links([new.subscription_id], 0, 0b11)
        assert final_yes == 0b10  # bob's link — the table was rebuilt


def _context(topology):
    subs = [
        make_subscription(SCHEMA2, "a1=1", "c.B0"),
        make_subscription(SCHEMA2, "a1=1", "c.B3"),
    ]
    return ProtocolContext(topology, SCHEMA2, subs)


class TestEpochs:
    def test_add_and_remove_bump_epoch_and_restore_checksum(self, diamond_topology):
        protocol = LinkMatchingProtocol(_context(diamond_topology))
        router = protocol.routers["B0"]
        epoch = router.subscription_epoch
        checksum = router._subscription_checksum
        extra = make_subscription(SCHEMA2, "a2=3", "c.B0")
        router.add_subscription(extra)
        assert router.subscription_epoch == epoch + 1
        assert router._subscription_checksum != checksum
        router.remove_subscription(extra.subscription_id)
        assert router.subscription_epoch == epoch + 2
        assert router._subscription_checksum == checksum  # XOR round trip

    def test_sync_epoch_is_monotonic(self, diamond_topology):
        protocol = LinkMatchingProtocol(_context(diamond_topology))
        router = protocol.routers["B0"]
        epoch = router.subscription_epoch
        router.sync_epoch(epoch - 1)  # never rolls back
        assert router.subscription_epoch == epoch
        router.sync_epoch(epoch + 5)
        assert router.subscription_epoch == epoch + 5

    def test_protocol_keeps_routers_in_lockstep(self, diamond_topology):
        protocol = LinkMatchingProtocol(_context(diamond_topology))
        epochs = {r.subscription_epoch for r in protocol.routers.values()}
        assert len(epochs) == 1
        protocol.add_subscription(make_subscription(SCHEMA2, "a2=3", "c.B1"))
        epochs = {r.subscription_epoch for r in protocol.routers.values()}
        assert len(epochs) == 1
        checksums = {r._subscription_checksum for r in protocol.routers.values()}
        assert len(checksums) == 1

    def test_route_decision_stamped_and_guarded(self, diamond_topology):
        protocol = LinkMatchingProtocol(_context(diamond_topology))
        router = protocol.routers["B0"]
        event = Event.from_tuple(SCHEMA2, (1, 0))
        decision = router.route(event, "B0")
        assert decision.epoch == router.subscription_epoch
        decision.assert_current(router.subscription_epoch)  # no raise
        router.add_subscription(make_subscription(SCHEMA2, "a2=9", "c.B0"))
        with pytest.raises(RoutingError):
            decision.assert_current(router.subscription_epoch)

    def test_assert_current_message(self):
        decision = RouteDecision("B0", [], [], 0, TritVector("Y"), epoch=3)
        with pytest.raises(RoutingError, match="epoch 3"):
            decision.assert_current(7)


class TestProtocolDigestPath:
    def _with_registry(self):
        return set_registry(MetricsRegistry(enabled=True))

    def test_counters_mint_consume_fallback(self, diamond_topology):
        previous = self._with_registry()
        try:
            protocol = LinkMatchingProtocol(_context(diamond_topology))
            event = Event.from_tuple(SCHEMA2, (1, 0))
            message = protocol.make_message(event, "B0")
            decision = protocol.handle("B0", message)
            assert protocol._obs_digests_minted.value == 1
            forwards = [m for _n, m in decision.sends]
            assert forwards and all(m.digest is not None for m in forwards)
            next_broker, next_message = decision.sends[0]
            protocol.handle(next_broker, next_message)
            assert protocol._obs_digest_hits.value == 1
            assert protocol._obs_digest_fallbacks.value == 0
            # Invalidate and replay the same digest: fallback.
            protocol.add_subscription(make_subscription(SCHEMA2, "a2=3", "c.B1"))
            fallback = protocol.handle(next_broker, next_message.forwarded())
            assert protocol._obs_digest_fallbacks.value == 1
            for _n, m in fallback.sends:
                assert m.digest is None
        finally:
            set_registry(previous)

    def test_use_digests_off_never_mints(self, diamond_topology):
        protocol = LinkMatchingProtocol(_context(diamond_topology), use_digests=False)
        event = Event.from_tuple(SCHEMA2, (1, 0))
        decision = protocol.handle("B0", protocol.make_message(event, "B0"))
        for _n, message in decision.sends:
            assert message.digest is None

    def test_batched_stale_flood_counts_per_message(self, diamond_topology):
        previous = self._with_registry()
        try:
            protocol = LinkMatchingProtocol(_context(diamond_topology))
            protocol.set_stale("B1", True)
            event = Event.from_tuple(SCHEMA2, (1, 0))
            messages = [SimMessage(event, "B0") for _ in range(3)]
            decisions = protocol.handle_batch("B1", messages)
            assert len(decisions) == 3
            assert protocol._obs_flood_fallbacks.value == 3
            assert protocol._obs_handled.value == 3
        finally:
            set_registry(previous)

    def test_wire_size_charges_digest(self, diamond_topology):
        protocol = LinkMatchingProtocol(_context(diamond_topology))
        event = Event.from_tuple(SCHEMA2, (1, 0))
        decision = protocol.handle("B0", protocol.make_message(event, "B0"))
        _neighbor, forwarded = decision.sends[0]
        bare = SimMessage(event, "B0")
        assert forwarded.digest is not None
        assert (
            forwarded.wire_size_bytes
            == bare.wire_size_bytes + forwarded.digest.encoded_size_bytes
        )
