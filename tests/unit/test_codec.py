"""Unit tests for the binary event codec and byte primitives."""

from __future__ import annotations

import pytest

from repro.broker import ByteReader, ByteWriter, decode_event, encode_event
from repro.errors import CodecError
from repro.matching import Event, EventSchema


class TestBytePrimitives:
    def test_integer_roundtrips(self):
        writer = ByteWriter().u8(255).u16(65535).u32(4_000_000_000).u64(2**63)
        writer.i64(-42)
        reader = ByteReader(writer.getvalue())
        assert reader.u8() == 255
        assert reader.u16() == 65535
        assert reader.u32() == 4_000_000_000
        assert reader.u64() == 2**63
        assert reader.i64() == -42
        assert reader.exhausted

    def test_float_roundtrip(self):
        data = ByteWriter().f64(119.25).getvalue()
        assert ByteReader(data).f64() == 119.25

    def test_boolean_roundtrip(self):
        data = ByteWriter().boolean(True).boolean(False).getvalue()
        reader = ByteReader(data)
        assert reader.boolean() is True
        assert reader.boolean() is False

    def test_string_roundtrip(self):
        data = ByteWriter().string("héllo wörld").getvalue()
        assert ByteReader(data).string() == "héllo wörld"

    def test_empty_string(self):
        data = ByteWriter().string("").getvalue()
        assert ByteReader(data).string() == ""

    def test_oversized_string_rejected(self):
        with pytest.raises(CodecError):
            ByteWriter().string("x" * 70_000)

    def test_truncated_read(self):
        reader = ByteReader(b"\x00")
        with pytest.raises(CodecError):
            reader.u32()

    def test_truncated_string(self):
        data = ByteWriter().u16(10).getvalue() + b"abc"
        with pytest.raises(CodecError):
            ByteReader(data).string()

    def test_invalid_utf8(self):
        data = ByteWriter().u16(2).getvalue() + b"\xff\xfe"
        with pytest.raises(CodecError):
            ByteReader(data).string()

    def test_expect_exhausted(self):
        reader = ByteReader(b"\x01\x02")
        reader.u8()
        with pytest.raises(CodecError):
            reader.expect_exhausted()


class TestEventCodec:
    def test_stock_event_roundtrip(self, stock_schema, ibm_event):
        data = encode_event(ibm_event)
        decoded = decode_event(stock_schema, data)
        assert decoded == ibm_event

    def test_publisher_passthrough(self, stock_schema, ibm_event):
        decoded = decode_event(stock_schema, encode_event(ibm_event), publisher="P1")
        assert decoded.publisher == "P1"

    def test_all_types_roundtrip(self):
        schema = EventSchema(
            [("s", "string"), ("i", "integer"), ("f", "float"), ("d", "dollar"), ("b", "boolean")]
        )
        event = Event(schema, {"s": "x", "i": -7, "f": 2.5, "d": 0.01, "b": True})
        assert decode_event(schema, encode_event(event)) == event

    def test_integer_event_roundtrip(self, schema5):
        event = Event.from_tuple(schema5, (0, 1, 2, 3, 4))
        assert decode_event(schema5, encode_event(event)) == event

    def test_negative_and_large_integers(self, schema5):
        event = Event.from_tuple(schema5, (-(2**62), 2**62, 0, -1, 1))
        assert decode_event(schema5, encode_event(event)).as_tuple() == event.as_tuple()

    def test_wrong_schema_rejected(self, stock_schema, schema5):
        event = Event.from_tuple(schema5, (1, 2, 3, 4, 5))
        data = encode_event(event)
        with pytest.raises(CodecError):
            decode_event(stock_schema, data)

    def test_trailing_bytes_rejected(self, schema5):
        event = Event.from_tuple(schema5, (1, 2, 3, 4, 5))
        with pytest.raises(CodecError):
            decode_event(schema5, encode_event(event) + b"\x00")

    def test_truncated_event_rejected(self, schema5):
        event = Event.from_tuple(schema5, (1, 2, 3, 4, 5))
        with pytest.raises(CodecError):
            decode_event(schema5, encode_event(event)[:-1])

    def test_encoding_is_deterministic(self, ibm_event):
        assert encode_event(ibm_event) == encode_event(ibm_event)
