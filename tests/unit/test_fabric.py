"""Unit tests for the content-routed network fabric and delivery traces."""

from __future__ import annotations

import pytest

from repro.core import ContentRoutedNetwork
from repro.errors import RoutingError, TopologyError
from repro.matching import Predicate, uniform_schema
from repro.network import Topology, linear_chain

SCHEMA = uniform_schema(2)


@pytest.fixture
def network():
    return ContentRoutedNetwork(linear_chain(3, subscribers_per_broker=1), SCHEMA)


class TestConstruction:
    def test_requires_publishers(self):
        topology = Topology()
        topology.add_broker("B0")
        topology.add_client("c0", "B0")
        with pytest.raises(TopologyError):
            ContentRoutedNetwork(topology, SCHEMA)

    def test_one_router_per_broker(self, network):
        assert set(network.routers) == {"B0", "B1", "B2"}

    def test_spanning_trees_for_publisher_brokers_only(self, network):
        assert set(network.spanning_trees) == {"B0"}


class TestSubscribeApi:
    def test_subscribe_by_expression(self, network):
        subscription = network.subscribe("S.B1.00", "a1=1")
        assert subscription.subscriber == "S.B1.00"
        assert len(network.subscriptions) == 1

    def test_subscribe_by_predicate(self, network):
        predicate = Predicate.from_values(SCHEMA, a1=1)
        network.subscribe("S.B1.00", predicate)
        assert len(network.subscriptions) == 1

    def test_brokers_cannot_subscribe(self, network):
        with pytest.raises(RoutingError):
            network.subscribe("B1", "a1=1")

    def test_replicated_to_every_router(self, network):
        network.subscribe("S.B1.00", "a1=1")
        assert all(
            router.subscription_count == 1 for router in network.routers.values()
        )

    def test_unsubscribe_unknown(self, network):
        with pytest.raises(RoutingError):
            network.unsubscribe(123456789)

    def test_unsubscribe_removes_everywhere(self, network):
        subscription = network.subscribe("S.B1.00", "a1=1")
        network.unsubscribe(subscription.subscription_id)
        assert all(
            router.subscription_count == 0 for router in network.routers.values()
        )


class TestPublishApi:
    def test_publish_accepts_mapping(self, network):
        network.subscribe("S.B2.00", "a1=1")
        trace = network.publish("P1", {"a1": 1, "a2": 0})
        assert trace.delivered_clients == {"S.B2.00"}

    def test_only_publishers_publish(self, network):
        with pytest.raises(RoutingError):
            network.publish("S.B0.00", {"a1": 1, "a2": 0})

    def test_expected_recipients(self, network):
        network.subscribe("S.B0.00", "a1=1")
        network.subscribe("S.B2.00", "a2=1")
        assert network.expected_recipients({"a1": 1, "a2": 1}) == {
            "S.B0.00",
            "S.B2.00",
        }
        assert network.expected_recipients({"a1": 0, "a2": 0}) == set()

    def test_centralized_match(self, network):
        network.subscribe("S.B2.00", "a1=1")
        result = network.centralized_match("P1", {"a1": 1, "a2": 0})
        assert {s.subscriber for s in result.subscriptions} == {"S.B2.00"}
        assert result.steps >= 1


class TestDeliveryTrace:
    def test_hop_counting(self, network):
        network.subscribe("S.B0.00", "*")
        network.subscribe("S.B2.00", "*")
        trace = network.publish("P1", {"a1": 0, "a2": 0})
        assert trace.deliveries == {"S.B0.00": 1, "S.B2.00": 3}

    def test_total_steps_sums_brokers(self, network):
        network.subscribe("S.B2.00", "*")
        trace = network.publish("P1", {"a1": 0, "a2": 0})
        assert trace.total_steps == sum(trace.broker_steps.values())

    def test_cumulative_steps_for_unknown_client(self, network):
        trace = network.publish("P1", {"a1": 0, "a2": 0})
        with pytest.raises(RoutingError):
            trace.cumulative_steps_to("S.B2.00")

    def test_cumulative_steps_along_path(self, network):
        network.subscribe("S.B2.00", "*")
        trace = network.publish("P1", {"a1": 0, "a2": 0})
        expected = (
            trace.broker_steps["B0"]
            + trace.broker_steps["B1"]
            + trace.broker_steps["B2"]
        )
        assert trace.cumulative_steps_to("S.B2.00") == expected

    def test_decisions_recorded_per_broker(self, network):
        network.subscribe("S.B2.00", "*")
        trace = network.publish("P1", {"a1": 0, "a2": 0})
        assert set(trace.decisions) == {"B0", "B1", "B2"}
        assert trace.decisions["B2"].deliver_to == ["S.B2.00"]
