"""Unit tests for factoring and delayed branching (Section 2.1)."""

from __future__ import annotations

import random

import pytest

from repro.errors import SubscriptionError
from repro.matching import Event, FactoredMatcher, ParallelSearchTree, SearchDag, build_pst
from tests.conftest import make_subscription

DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 6)}


def random_workload(schema, num_subscriptions, num_events, seed=0):
    rng = random.Random(seed)
    subscriptions = []
    for i in range(num_subscriptions):
        tests = [f"a{j}={rng.randrange(3)}" for j in range(1, 6) if rng.random() < 0.5]
        subscriptions.append(
            make_subscription(schema, " & ".join(tests) if tests else "*", f"s{i}")
        )
    events = [
        Event.from_tuple(schema, tuple(rng.randrange(3) for _ in range(5)))
        for _ in range(num_events)
    ]
    return subscriptions, events


class TestFactoredMatcher:
    def test_requires_index_attributes(self, schema5):
        with pytest.raises(SubscriptionError):
            FactoredMatcher(schema5, [], DOMAINS)

    def test_requires_domains_for_index(self, schema5):
        with pytest.raises(SubscriptionError):
            FactoredMatcher(schema5, ["a1"], {"a2": [1, 2]})

    def test_cannot_factor_everything(self, schema5):
        with pytest.raises(SubscriptionError):
            FactoredMatcher(schema5, ["a1", "a2", "a3", "a4", "a5"], DOMAINS)

    def test_equality_subscription_goes_to_one_tree(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        matcher.insert(make_subscription(schema5, "a1=1 & a3=2", "alice"))
        assert len(dict(matcher.trees())) == 1

    def test_star_subscription_replicated_across_domain(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        matcher.insert(make_subscription(schema5, "a3=2", "alice"))
        # One tree per a1 domain value, plus the out-of-domain bucket.
        assert len(dict(matcher.trees())) == 4

    def test_two_index_attributes_cross_product(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1", "a2"], DOMAINS)
        matcher.insert(make_subscription(schema5, "a3=2", "alice"))
        assert len(dict(matcher.trees())) == 16  # (3 values + out-of-domain)^2

    def test_out_of_domain_equality_lives_in_overflow_bucket(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        matcher.insert(make_subscription(schema5, "a1=99", "alice"))
        assert len(matcher) == 1
        assert len(dict(matcher.trees())) == 1  # the out-of-domain bucket
        in_domain = Event.from_tuple(schema5, (1, 0, 0, 0, 0))
        assert matcher.match(in_domain).subscriptions == []
        out_miss = Event.from_tuple(schema5, (7, 0, 0, 0, 0))
        assert matcher.match(out_miss).subscriptions == []
        out_hit = Event.from_tuple(schema5, (99, 0, 0, 0, 0))
        assert matcher.match(out_hit).subscribers == {"alice"}

    def test_match_equals_brute_force(self, schema5):
        subscriptions, events = random_workload(schema5, 80, 150, seed=2)
        matcher = FactoredMatcher(schema5, ["a1", "a2"], DOMAINS)
        for subscription in subscriptions:
            matcher.insert(subscription)
        for event in events:
            expected = {s.subscription_id for s in matcher.match_brute_force(event)}
            actual = {s.subscription_id for s in matcher.match(event).subscriptions}
            assert actual == expected

    def test_match_equals_plain_tree(self, schema5):
        subscriptions, events = random_workload(schema5, 60, 100, seed=3)
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        tree = ParallelSearchTree(schema5)
        for subscription in subscriptions:
            matcher.insert(subscription)
            tree.insert(subscription)
        for event in events:
            assert {s.subscription_id for s in matcher.match(event).subscriptions} == {
                s.subscription_id for s in tree.match(event).subscriptions
            }

    def test_factoring_reduces_steps(self, schema5):
        subscriptions, events = random_workload(schema5, 150, 100, seed=4)
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        tree = ParallelSearchTree(schema5)
        for subscription in subscriptions:
            matcher.insert(subscription)
            tree.insert(subscription)
        factored_steps = sum(matcher.match(e).steps for e in events)
        plain_steps = sum(tree.match(e).steps for e in events)
        assert factored_steps < plain_steps

    def test_remove(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        sub = make_subscription(schema5, "a3=2", "alice")
        matcher.insert(sub)
        removed = matcher.remove(sub.subscription_id)
        assert removed.subscription_id == sub.subscription_id
        assert len(matcher) == 0
        assert len(dict(matcher.trees())) == 0

    def test_remove_unknown(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        with pytest.raises(SubscriptionError):
            matcher.remove(424242)

    def test_duplicate_insert_rejected(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        sub = make_subscription(schema5, "a3=2", "alice")
        matcher.insert(sub)
        with pytest.raises(SubscriptionError):
            matcher.insert(sub)

    def test_lookup_counts_one_step(self, schema5):
        matcher = FactoredMatcher(schema5, ["a1"], DOMAINS)
        event = Event.from_tuple(schema5, (0, 0, 0, 0, 0))
        assert matcher.match(event).steps == 1  # empty matcher: lookup only


class TestSearchDag:
    def test_rejects_range_branches(self, stock_schema):
        tree = build_pst(
            stock_schema, [make_subscription(stock_schema, "price<10", "a")]
        )
        with pytest.raises(SubscriptionError):
            SearchDag(tree)

    def test_match_equals_tree(self, schema5):
        subscriptions, events = random_workload(schema5, 100, 200, seed=5)
        tree = build_pst(schema5, subscriptions)
        dag = SearchDag(tree)
        for event in events:
            tree_ids = {s.subscription_id for s in tree.match(event).subscriptions}
            dag_ids = {s.subscription_id for s in dag.match(event).subscriptions}
            assert dag_ids == tree_ids

    def test_steps_bounded_by_levels(self, schema5):
        subscriptions, events = random_workload(schema5, 100, 50, seed=6)
        dag = SearchDag(build_pst(schema5, subscriptions))
        for event in events:
            assert dag.match(event).steps <= len(schema5) + 1

    def test_dag_never_more_steps_than_tree(self, schema5):
        subscriptions, events = random_workload(schema5, 100, 100, seed=7)
        tree = build_pst(schema5, subscriptions)
        dag = SearchDag(tree)
        for event in events:
            assert dag.match(event).steps <= tree.match(event).steps

    def test_nodes_are_shared(self, schema5):
        # Heavy star-overlap forces sharing: the DAG memoizes merged frontiers.
        subscriptions = [
            make_subscription(schema5, f"a1={v}", f"s{v}") for v in range(3)
        ] + [make_subscription(schema5, "a5=1", "tail")]
        tree = build_pst(schema5, subscriptions)
        dag = SearchDag(tree)
        event = Event.from_tuple(schema5, (0, 0, 0, 0, 1))
        assert dag.match(event).subscribers == {"s0", "tail"}
        # All three a1 branches merge with the same *-subtree: the DAG must
        # be smaller than three independent copies of it.
        assert dag.node_count() < 3 * tree.node_count()

    def test_empty_tree(self, schema5):
        dag = SearchDag(ParallelSearchTree(schema5))
        result = dag.match(Event.from_tuple(schema5, (0, 0, 0, 0, 0)))
        assert result.subscriptions == []

    def test_works_on_optimized_tree(self, schema5):
        subscriptions, events = random_workload(schema5, 60, 80, seed=8)
        tree = build_pst(schema5, subscriptions)
        tree.eliminate_trivial_tests()
        dag = SearchDag(tree)
        for event in events:
            assert {s.subscription_id for s in dag.match(event).subscriptions} == {
                s.subscription_id for s in tree.match(event).subscriptions
            }

    def test_brute_force_passthrough(self, schema5):
        subscriptions, _ = random_workload(schema5, 10, 0, seed=9)
        tree = build_pst(schema5, subscriptions)
        dag = SearchDag(tree)
        event = Event.from_tuple(schema5, (1, 1, 1, 1, 1))
        assert {s.subscription_id for s in dag.match_brute_force(event)} == {
            s.subscription_id for s in tree.match_brute_force(event)
        }
