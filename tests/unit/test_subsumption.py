"""Unit tests for predicate subsumption (covering)."""

from __future__ import annotations

import pytest

from repro.errors import PredicateError
from repro.matching import (
    DONT_CARE,
    EqualityTest,
    IntervalTest,
    Predicate,
    RangeOp,
    RangeTest,
    Subscription,
    parse_predicate,
    uniform_schema,
)
from repro.matching.subsumption import (
    covers,
    predicate_subsumes,
    redundant_subscriptions,
)

SCHEMA = uniform_schema(3)


def predicate(expression: str) -> Predicate:
    return parse_predicate(SCHEMA, expression)


class TestCovers:
    def test_dont_care_covers_everything(self):
        assert covers(DONT_CARE, EqualityTest(5))
        assert covers(DONT_CARE, RangeTest(RangeOp.LT, 10))
        assert covers(DONT_CARE, DONT_CARE)

    def test_nothing_else_covers_dont_care(self):
        assert not covers(EqualityTest(5), DONT_CARE)
        assert not covers(RangeTest(RangeOp.GT, -(10**18)), DONT_CARE)

    def test_equality_covers_itself_only(self):
        assert covers(EqualityTest(5), EqualityTest(5))
        assert not covers(EqualityTest(5), EqualityTest(6))

    def test_range_covers_equality_inside(self):
        assert covers(RangeTest(RangeOp.LT, 10), EqualityTest(5))
        assert not covers(RangeTest(RangeOp.LT, 10), EqualityTest(10))

    def test_range_covers_tighter_range(self):
        assert covers(RangeTest(RangeOp.LT, 10), RangeTest(RangeOp.LT, 5))
        assert not covers(RangeTest(RangeOp.LT, 5), RangeTest(RangeOp.LT, 10))
        assert covers(RangeTest(RangeOp.LE, 10), RangeTest(RangeOp.LT, 10))
        assert not covers(RangeTest(RangeOp.LT, 10), RangeTest(RangeOp.LE, 10))

    def test_opposite_directions_do_not_cover(self):
        assert not covers(RangeTest(RangeOp.LT, 10), RangeTest(RangeOp.GT, 0))

    def test_interval_containment(self):
        outer = IntervalTest(low=0, high=10)
        inner = IntervalTest(low=2, high=8)
        assert covers(outer, inner)
        assert not covers(inner, outer)

    def test_exclusions_block_containment(self):
        outer = IntervalTest(low=0, high=10, excluded=(5,))
        inner = IntervalTest(low=2, high=8)
        assert not covers(outer, inner)  # inner accepts 5, outer not
        assert covers(outer, IntervalTest(low=6, high=8))

    def test_unsatisfiable_specific_always_covered(self):
        empty = IntervalTest(low=5, high=3)
        assert covers(EqualityTest(0), empty)

    def test_equality_covers_pinned_interval(self):
        point = IntervalTest(low=5, high=5)
        assert covers(EqualityTest(5), point)
        assert not covers(EqualityTest(6), point)


class TestPredicateSubsumption:
    @pytest.mark.parametrize(
        "general,specific,expected",
        [
            ("*", "a1=1", True),
            ("a1=1", "*", False),
            ("a1=1", "a1=1 & a2=2", True),
            ("a1=1 & a2=2", "a1=1", False),
            ("a1<10", "a1<5 & a2=1", True),
            ("a1<5", "a1<10", False),
            ("a1=1 & a3>0", "a1=1 & a3>5", True),
            ("a1=1", "a1=1", True),
        ],
    )
    def test_examples(self, general, specific, expected):
        assert predicate_subsumes(predicate(general), predicate(specific)) is expected

    def test_sound_against_exhaustive_check(self):
        import itertools
        import random

        rng = random.Random(5)
        operators = ["=", "<", "<=", ">", ">=", "!="]

        def random_predicate():
            clauses = [
                f"a{k}{rng.choice(operators)}{rng.randrange(4)}"
                for k in (1, 2, 3)
                if rng.random() < 0.6
            ]
            return predicate(" & ".join(clauses) if clauses else "*")

        from repro.matching import Event

        space = [
            Event.from_tuple(SCHEMA, values)
            for values in itertools.product(range(-1, 5), repeat=3)
        ]
        for _ in range(300):
            p, q = random_predicate(), random_predicate()
            claimed = predicate_subsumes(p, q)
            truth = all(p.matches(e) for e in space if q.matches(e))
            if claimed:
                assert truth, (p.describe(), q.describe())
            # (not claimed) may still be true: the check is allowed to be
            # conservative, never unsound.

    def test_cross_schema_rejected(self):
        other = uniform_schema(2)
        with pytest.raises(PredicateError):
            predicate_subsumes(predicate("*"), parse_predicate(other, "a1=1"))


class TestRedundancy:
    def test_covered_subscription_flagged(self):
        broad = Subscription(predicate("a1=1"), "alice")
        narrow = Subscription(predicate("a1=1 & a2=2"), "alice")
        pairs = redundant_subscriptions([broad, narrow])
        assert [(r.subscription_id, c.subscription_id) for r, c in pairs] == [
            (narrow.subscription_id, broad.subscription_id)
        ]

    def test_different_subscribers_never_redundant(self):
        broad = Subscription(predicate("a1=1"), "alice")
        narrow = Subscription(predicate("a1=1 & a2=2"), "bob")
        assert redundant_subscriptions([broad, narrow]) == []

    def test_identical_predicates_keep_the_older(self):
        first = Subscription(predicate("a1=1"), "alice")
        second = Subscription(predicate("a1=1"), "alice")
        pairs = redundant_subscriptions([second, first])
        assert len(pairs) == 1
        assert pairs[0][0] is second

    def test_removal_preserves_deliveries(self):
        """The semantic guarantee: dropping redundant subscriptions changes
        no delivery decision."""
        import random

        from repro.core import ContentRoutedNetwork
        from repro.network import linear_chain

        rng = random.Random(9)
        topology = linear_chain(3, subscribers_per_broker=2)
        network = ContentRoutedNetwork(topology, SCHEMA)
        live = []
        for client in topology.subscribers():
            for _ in range(4):
                clauses = [
                    f"a{k}={rng.randrange(3)}" for k in (1, 2, 3) if rng.random() < 0.5
                ]
                live.append(
                    network.subscribe(client, " & ".join(clauses) if clauses else "*")
                )
        events = [
            {f"a{k}": rng.randrange(3) for k in (1, 2, 3)} for _ in range(40)
        ]
        before = [network.publish("P1", event).delivered_clients for event in events]
        for redundant, _cover in redundant_subscriptions(live):
            network.unsubscribe(redundant.subscription_id)
        after = [network.publish("P1", event).delivered_clients for event in events]
        assert before == after
