"""Unit tests for the wire-message codec."""

from __future__ import annotations

import pytest

from repro.broker import decode_message, encode_message
from repro.broker import messages as wire
from repro.errors import CodecError

ROUNDTRIP_CASES = [
    wire.Connect("alice", 0),
    wire.Connect("bob", 2**40),
    wire.ConnAck("B0", 17),
    wire.Subscribe(1, "issue='IBM' & price<120"),
    wire.SubAck(1, 1_000_001),
    wire.Unsubscribe(2, 1_000_001),
    wire.UnsubAck(2, 1_000_001),
    wire.Publish(b"\x00\x01payload"),
    wire.EventDelivery(99, b"event-bytes"),
    wire.Ack(99),
    wire.Disconnect(),
    wire.BrokerHello("T0.M1"),
    wire.BrokerEvent("T0.L00", "P1", b"\xffdata"),
    wire.SubPropagate(5, "S.T0.L00.01", "a1=1 & a2=*", "T0.L00"),
    wire.UnsubPropagate(5, "T0.L00"),
    wire.ErrorReply(3, "unknown attribute 'nope'"),
]


class TestRoundtrip:
    @pytest.mark.parametrize("message", ROUNDTRIP_CASES, ids=lambda m: type(m).__name__)
    def test_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_empty_payload_blob(self):
        assert decode_message(encode_message(wire.Publish(b""))) == wire.Publish(b"")

    def test_unicode_expression(self):
        message = wire.Subscribe(1, "issue='Müller'")
        assert decode_message(encode_message(message)) == message


class TestErrors:
    def test_unknown_type_byte(self):
        with pytest.raises(CodecError):
            decode_message(b"\xf0")

    def test_truncated_payload(self):
        data = encode_message(wire.Connect("alice", 3))
        with pytest.raises(CodecError):
            decode_message(data[:-2])

    def test_trailing_bytes(self):
        data = encode_message(wire.Ack(1))
        with pytest.raises(CodecError):
            decode_message(data + b"\x00")

    def test_non_message_rejected(self):
        with pytest.raises(CodecError):
            encode_message("not a message")  # type: ignore[arg-type]

    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode_message(b"")


class TestFraming:
    def test_type_byte_is_first(self):
        data = encode_message(wire.Ack(1))
        assert data[0] == int(wire.MessageType.ACK)

    def test_distinct_types_have_distinct_bytes(self):
        seen = set()
        for message in ROUNDTRIP_CASES:
            byte = encode_message(message)[0]
            seen.add((type(message), byte))
        type_bytes = [b for _t, b in seen]
        assert len(type_bytes) == len(set(type_bytes))
