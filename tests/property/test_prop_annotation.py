"""Property-based tests of annotation soundness and incrementality.

Two deep invariants:

1. **Soundness** — for every node reachable by some event's search, a Yes at
   link *l* implies every event reaching that node matches a subscriber on
   *l*, and a No implies none does (checked at the root, which every search
   reaches).
2. **Incrementality** — updating annotations along a changed subscription's
   path (``update_path``) yields exactly the same vectors as recomputing
   from scratch, across arbitrary insert/remove interleavings.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import M, N, TreeAnnotation, Y
from repro.matching import (
    EqualityTest,
    Event,
    ParallelSearchTree,
    Predicate,
    Subscription,
    uniform_schema,
)

SCHEMA = uniform_schema(3)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}
NUM_LINKS = 3

predicate_specs = st.tuples(
    *(st.one_of(st.none(), st.sampled_from(DOMAIN)) for _ in range(3))
)
link_choices = st.integers(min_value=0, max_value=NUM_LINKS - 1)
subscription_data = st.lists(
    st.tuples(predicate_specs, link_choices), min_size=0, max_size=15
)

#: Subscribers are named after their link so link_of is trivial.
def link_of(subscription: Subscription) -> int:
    return int(subscription.subscriber)


def build(specs_with_links):
    tree = ParallelSearchTree(SCHEMA, domains=DOMAINS)
    subscriptions = []
    for specs, link in specs_with_links:
        tests = {
            name: EqualityTest(value)
            for name, value in zip(SCHEMA.names, specs)
            if value is not None
        }
        subscription = Subscription(Predicate(SCHEMA, tests), str(link))
        tree.insert(subscription)
        subscriptions.append(subscription)
    return tree, subscriptions


def all_events():
    return [
        Event.from_tuple(SCHEMA, (a, b, c))
        for a in DOMAIN
        for b in DOMAIN
        for c in DOMAIN
    ]


class TestSoundness:
    @given(data=subscription_data)
    @settings(max_examples=150)
    def test_root_annotation_vs_exhaustive_truth(self, data):
        tree, subscriptions = build(data)
        annotation = TreeAnnotation(NUM_LINKS, link_of)
        root_vector = annotation.annotate(tree)
        for link in range(NUM_LINKS):
            on_link = [s for s in subscriptions if link_of(s) == link]
            outcomes = [
                any(s.predicate.matches(event) for s in on_link)
                for event in all_events()
            ]
            if root_vector[link] is Y:
                assert all(outcomes), "Yes must mean every event matches"
            elif root_vector[link] is N:
                assert not any(outcomes), "No must mean no event matches"
            # Maybe is always sound.

    @given(data=subscription_data)
    @settings(max_examples=100)
    def test_domain_knowledge_only_sharpens(self, data):
        """With domains declared, Y/N may replace M but never flip Y<->N."""
        tree_plain, _ = build(data)
        tree_plain.domains.clear()
        annotation_plain = TreeAnnotation(NUM_LINKS, link_of)
        open_root = annotation_plain.annotate(tree_plain)
        tree_domained, _ = build(data)
        annotation_domained = TreeAnnotation(NUM_LINKS, link_of)
        domain_root = annotation_domained.annotate(tree_domained)
        for open_trit, domain_trit in zip(open_root, domain_root):
            if open_trit is not M:
                assert domain_trit is open_trit


class AnnotationMachine(RuleBasedStateMachine):
    """Insert/remove subscriptions, patching annotations incrementally; a
    from-scratch annotation of the same tree must agree on every node."""

    def __init__(self):
        super().__init__()
        self.tree = ParallelSearchTree(SCHEMA, domains=DOMAINS)
        self.annotation = TreeAnnotation(NUM_LINKS, link_of)
        self.annotation.annotate(self.tree)
        self.live = []

    @rule(specs=predicate_specs, link=link_choices)
    def insert(self, specs, link):
        tests = {
            name: EqualityTest(value)
            for name, value in zip(SCHEMA.names, specs)
            if value is not None
        }
        subscription = Subscription(Predicate(SCHEMA, tests), str(link))
        self.tree.insert(subscription)
        self.live.append(subscription)
        self.annotation.update_path(self.tree, subscription.predicate)

    @rule(data=st.data())
    def remove(self, data):
        if not self.live:
            return
        victim = data.draw(st.sampled_from(self.live))
        self.live.remove(victim)
        self.tree.remove(victim.subscription_id)
        self.annotation.update_path(self.tree, victim.predicate)

    @invariant()
    def incremental_equals_full(self):
        fresh = TreeAnnotation(NUM_LINKS, link_of)
        fresh.annotate(self.tree)
        for node in self.tree.nodes():
            assert self.annotation.vector_for(node) == fresh.vector_for(node), (
                f"incremental annotation diverged at node #{node.node_id}"
            )


TestAnnotationMachine = AnnotationMachine.TestCase
