"""Property-based tests of end-to-end link-matching delivery.

Hypothesis builds random tree-plus-chords broker topologies, random client
placements, random subscription sets and random events, then checks the
delivery-equivalence invariant (exact match set, one copy per link, no
broker visited twice).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import ContentRoutedNetwork
from repro.matching import EqualityTest, Event, Predicate, uniform_schema
from repro.network import NodeKind, Topology

SCHEMA = uniform_schema(3)
DOMAIN = [0, 1]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}


@st.composite
def topologies(draw):
    """A connected broker graph: random tree + up to 2 extra chord links."""
    num_brokers = draw(st.integers(min_value=1, max_value=6))
    topology = Topology()
    names = [f"B{i}" for i in range(num_brokers)]
    for i, name in enumerate(names):
        topology.add_broker(name)
        if i > 0:
            parent = names[draw(st.integers(min_value=0, max_value=i - 1))]
            latency = draw(st.sampled_from([5.0, 10.0, 25.0]))
            topology.add_link(parent, name, latency_ms=latency)
    # Chords make the graph cyclic, exercising virtual links.
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        if a != b:
            try:
                topology.add_link(a, b, latency_ms=draw(st.sampled_from([5.0, 40.0])))
            except Exception:
                pass  # duplicate link; skip
    num_subscribers = draw(st.integers(min_value=1, max_value=5))
    for i in range(num_subscribers):
        home = draw(st.sampled_from(names))
        topology.add_client(f"c{i}", home)
    num_publishers = draw(st.integers(min_value=1, max_value=2))
    for i in range(num_publishers):
        home = draw(st.sampled_from(names))
        topology.add_client(f"P{i}", home, kind=NodeKind.PUBLISHER)
    return topology


predicate_specs = st.tuples(
    *(st.one_of(st.none(), st.sampled_from(DOMAIN)) for _ in range(3))
)
events = st.tuples(*(st.sampled_from(DOMAIN) for _ in range(3)))


def add_subscriptions(network, specs_by_client):
    for client, specs in specs_by_client:
        tests = {
            name: EqualityTest(value)
            for name, value in zip(SCHEMA.names, specs)
            if value is not None
        }
        network.subscribe(client, Predicate(SCHEMA, tests))


class TestRandomNetworks:
    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=0, max_size=10),
        event_values=events,
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_delivery_equivalence(self, topology, subscription_data, event_values, data):
        network = ContentRoutedNetwork(topology, SCHEMA, domains=DOMAINS)
        subscribers = topology.subscribers()
        specs_by_client = [
            (data.draw(st.sampled_from(subscribers)), specs)
            for specs in subscription_data
        ]
        add_subscriptions(network, specs_by_client)
        event = Event.from_tuple(SCHEMA, event_values)
        expected = network.expected_recipients(event)
        for publisher in topology.publishers():
            trace = network.publish(publisher, event)
            assert trace.delivered_clients == expected
            assert len(trace.links_used) == len(set(trace.links_used))
            targets = [target for _source, target in trace.links_used]
            assert len(targets) == len(set(targets))  # nobody reached twice

    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=0, max_size=8),
        event_values=events,
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_factored_routing_agrees_with_plain(
        self, topology, subscription_data, event_values, data
    ):
        plain = ContentRoutedNetwork(topology, SCHEMA, domains=DOMAINS)
        factored = ContentRoutedNetwork(
            topology, SCHEMA, domains=DOMAINS, factoring_attributes=["a1"]
        )
        subscribers = topology.subscribers()
        specs_by_client = [
            (data.draw(st.sampled_from(subscribers)), specs)
            for specs in subscription_data
        ]
        add_subscriptions(plain, specs_by_client)
        add_subscriptions(factored, specs_by_client)
        event = Event.from_tuple(SCHEMA, event_values)
        for publisher in topology.publishers():
            assert (
                plain.publish(publisher, event).delivered_clients
                == factored.publish(publisher, event).delivered_clients
            )
