"""Property: incremental topology repair ≡ rebuild-from-scratch.

After any single element failure (or its recovery), the repaired spanning
tree, routing tables, virtual-link tables / initialization masks, and the
routing decisions driven by per-link trit annotations must be *identical*
to structures built fresh on the mutated topology.  This is the contract
the fault coordinator leans on: it never rebuilds, it only repairs.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.masks import VirtualLinkTable
from repro.core.router import ContentRouter
from repro.matching import Event, Subscription, parse_predicate, uniform_schema
from repro.errors import RoutingError
from repro.network.paths import RoutingTable
from repro.network.spanning import SpanningTree
from repro.network.topology import NodeKind, Topology

SCHEMA = uniform_schema(3)
DOMAINS = {f"a{i}": [0, 1, 2] for i in range(1, 4)}
ALL_EVENTS = [
    Event.from_tuple(SCHEMA, (a, b, c))
    for a in range(3)
    for b in range(3)
    for c in range(3)
]


def chain_with_lateral() -> Topology:
    topology = Topology()
    for i in range(5):
        topology.add_broker(f"B{i}")
    for i in range(4):
        topology.add_link(f"B{i}", f"B{i + 1}", latency_ms=10.0)
    topology.add_link("B1", "B3", latency_ms=25.0)
    topology.add_client("P1", "B0", kind=NodeKind.PUBLISHER)
    for i in range(5):
        topology.add_client(f"S.B{i}.0", f"B{i}")
    return topology


def diamond() -> Topology:
    topology = Topology()
    for name in ("B0", "B1", "B2", "B3"):
        topology.add_broker(name)
    topology.add_link("B0", "B1", latency_ms=10.0)
    topology.add_link("B0", "B2", latency_ms=15.0)
    topology.add_link("B1", "B3", latency_ms=10.0)
    topology.add_link("B2", "B3", latency_ms=15.0)
    topology.add_client("P1", "B0", kind=NodeKind.PUBLISHER)
    for name in ("B1", "B2", "B3"):
        topology.add_client(f"S.{name}", name)
    return topology


BUILDERS = {"chain": chain_with_lateral, "diamond": diamond}
ROOT = "B0"


def broker_links(topology: Topology):
    return sorted(
        link.key()
        for link in topology.links()
        if not topology.node(link.a).kind.is_client
        and not topology.node(link.b).kind.is_client
    )


def fail_element(topology: Topology, element):
    """Mutate like the fault coordinator: cut a link, or every broker-broker
    link of a broker (clients stay attached).  Returns the cut links."""
    if isinstance(element, tuple):
        return [topology.remove_link(*element)]
    return [
        topology.remove_link(element, neighbor)
        for neighbor in list(topology.broker_neighbors(element))
    ]


def restore(topology: Topology, removed) -> None:
    for link in removed:
        topology.add_link(link.a, link.b, latency_ms=link.latency_ms)


def subscriptions_for(topology: Topology):
    rng = random.Random(4)
    subscriptions = []
    for client in sorted(topology.subscribers()):
        tests = [f"a{j}={rng.randrange(3)}" for j in range(1, 4) if rng.random() < 0.6]
        expression = " & ".join(tests) if tests else "*"
        subscriptions.append(
            Subscription(parse_predicate(SCHEMA, expression), client)
        )
    return subscriptions


def assert_structures_equal(topology, tree, tables, link_tables) -> None:
    """Repaired structures vs fresh builds on the mutated topology."""
    fresh_tree = SpanningTree(topology, ROOT, partial=True)
    assert tree.parent == fresh_tree.parent
    assert {n: sorted(c) for n, c in tree.children.items()} == {
        n: sorted(c) for n, c in fresh_tree.children.items()
    }
    assert all(
        tree.descendants(node) == fresh_tree.descendants(node)
        for node in tree.parent
    )
    fresh_trees = {ROOT: fresh_tree}
    for broker, table in tables.items():
        fresh_table = RoutingTable(topology, broker)
        for destination in sorted(topology.clients()) + sorted(topology.brokers()):
            assert table.reaches(destination) == fresh_table.reaches(destination)
            if table.reaches(destination) and destination != broker:
                assert table.next_hop(destination) == fresh_table.next_hop(destination)
        fresh_links = VirtualLinkTable(topology, broker, fresh_table, fresh_trees)
        assert link_tables[broker].layout() == fresh_links.layout()


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_repair_equals_rebuild(data):
    name = data.draw(st.sampled_from(sorted(BUILDERS)), label="topology")
    topology = BUILDERS[name]()
    elements = list(broker_links(topology)) + [
        broker for broker in sorted(topology.brokers()) if broker != ROOT
    ]
    element = data.draw(st.sampled_from(elements), label="failed element")
    recover = data.draw(st.booleans(), label="recover")

    tree = SpanningTree(topology, ROOT)
    tables = {broker: RoutingTable(topology, broker) for broker in topology.brokers()}
    link_tables = {
        broker: VirtualLinkTable(topology, broker, tables[broker], {ROOT: tree})
        for broker in topology.brokers()
    }

    removed = fail_element(topology, element)
    tree.repair()
    for broker, table in tables.items():
        table.repair()
        link_tables[broker].rebuild(table, {ROOT: tree})
    assert_structures_equal(topology, tree, tables, link_tables)

    if recover:
        restore(topology, removed)
        tree.repair()
        for broker, table in tables.items():
            table.repair()
            link_tables[broker].rebuild(table, {ROOT: tree})
        assert_structures_equal(topology, tree, tables, link_tables)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_repaired_router_decisions_equal_fresh(data):
    """Per-link trit annotations, functionally: a repaired router (rebuilt
    virtual links, rebound engine) routes every event in the domain exactly
    like a router built from scratch on the mutated topology."""
    topology = chain_with_lateral()
    elements = [
        key for key in broker_links(topology) if key != ("B0", "B1")
    ] + ["B2", "B3", "B4"]
    element = data.draw(st.sampled_from(elements), label="failed element")
    engine = data.draw(st.sampled_from(["compiled", "sharded", "tree"]), label="engine")
    subscriptions = subscriptions_for(topology)

    def build_router(table, trees):
        router = ContentRouter(
            topology,
            "B1",
            table,
            trees,
            SCHEMA,
            domains=DOMAINS,
            engine=engine,
            shards=2 if engine == "sharded" else None,
        )
        for subscription in subscriptions:
            try:
                router.add_subscription(subscription)
            except RoutingError:
                # Subscriber currently cut off — the protocol defers these
                # (see LinkMatchingProtocol._build_router); a repaired router
                # keeps them indexed with no link to light, which must route
                # identically.
                pass
        return router

    tree = SpanningTree(topology, ROOT)
    table = RoutingTable(topology, "B1")
    router = build_router(table, {ROOT: tree})
    for event in ALL_EVENTS[:3]:  # warm caches pre-failure
        router.route(event, ROOT)

    fail_element(topology, element)
    tree.repair()
    table.repair()
    router.rebuild_links(table, {ROOT: tree})

    fresh_tree = SpanningTree(topology, ROOT, partial=True)
    fresh_table = RoutingTable(topology, "B1")
    fresh_router = build_router(fresh_table, {ROOT: fresh_tree})

    for event in ALL_EVENTS:
        repaired = router.route(event, ROOT)
        fresh = fresh_router.route(event, ROOT)
        assert repaired.forward_to == fresh.forward_to, event
        assert repaired.deliver_to == fresh.deliver_to, event
        assert str(repaired.mask) == str(fresh.mask), event
