"""Property-based tests of the trit algebra (hypothesis)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core import (
    M,
    N,
    TritVector,
    Y,
    alternative_combine,
    alternative_combine_all,
    parallel_combine,
    parallel_combine_all,
)

trits = st.sampled_from([Y, M, N])
vectors = st.integers(min_value=0, max_value=8).flatmap(
    lambda n: st.lists(trits, min_size=n, max_size=n).map(TritVector)
)
paired_vectors = st.integers(min_value=0, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(trits, min_size=n, max_size=n).map(TritVector),
        st.lists(trits, min_size=n, max_size=n).map(TritVector),
    )
)
tripled_vectors = st.integers(min_value=0, max_value=6).flatmap(
    lambda n: st.tuples(
        *(st.lists(trits, min_size=n, max_size=n).map(TritVector) for _ in range(3))
    )
)


class TestScalarLaws:
    @given(a=trits, b=trits)
    def test_commutativity(self, a, b):
        assert alternative_combine(a, b) is alternative_combine(b, a)
        assert parallel_combine(a, b) is parallel_combine(b, a)

    @given(a=trits, b=trits, c=trits)
    def test_associativity(self, a, b, c):
        assert alternative_combine(alternative_combine(a, b), c) is alternative_combine(
            a, alternative_combine(b, c)
        )
        assert parallel_combine(parallel_combine(a, b), c) is parallel_combine(
            a, parallel_combine(b, c)
        )

    @given(a=trits)
    def test_idempotence(self, a):
        assert alternative_combine(a, a) is a
        assert parallel_combine(a, a) is a

    @given(a=trits, b=trits, s=trits)
    def test_parallel_distributes_over_alternative(self, a, b, s):
        left = parallel_combine(alternative_combine(a, b), s)
        right = alternative_combine(parallel_combine(a, s), parallel_combine(b, s))
        assert left is right

    @given(a=trits, b=trits)
    def test_alternative_never_invents_certainty(self, a, b):
        # If the inputs disagree, the result must be Maybe.
        if a is not b:
            assert alternative_combine(a, b) is M

    @given(a=trits, b=trits)
    def test_parallel_is_join(self, a, b):
        rank = {N: 0, M: 1, Y: 2}
        assert rank[parallel_combine(a, b)] == max(rank[a], rank[b])


class TestVectorLaws:
    @given(pair=paired_vectors)
    def test_vector_ops_elementwise(self, pair):
        a, b = pair
        assert list(a.alternative(b)) == [
            alternative_combine(x, y) for x, y in zip(a, b)
        ]
        assert list(a.parallel(b)) == [parallel_combine(x, y) for x, y in zip(a, b)]

    @given(pair=paired_vectors)
    def test_refinement_only_touches_maybes(self, pair):
        mask, annotation = pair
        refined = mask.refine_with(annotation)
        for original, new, slot in zip(mask, refined, annotation):
            if original is M:
                assert new is slot
            else:
                assert new is original

    @given(pair=paired_vectors)
    def test_import_yes_is_monotonic(self, pair):
        mask, returned = pair
        merged = mask.import_yes(returned)
        for original, new in zip(mask, merged):
            if original is not M:
                assert new is original  # decided trits never change
            else:
                assert new in (M, Y)  # maybes may only be promoted

    @given(vector=vectors)
    def test_close_maybes_leaves_no_maybe(self, vector):
        closed = vector.close_maybes()
        assert not closed.has_maybe
        for original, new in zip(vector, closed):
            assert new is (N if original is M else original)

    @given(vector=vectors)
    def test_string_roundtrip(self, vector):
        assert TritVector(str(vector)) == vector

    @given(triple=tripled_vectors)
    def test_fold_order_irrelevant(self, triple):
        a, b, c = triple
        n = len(a)
        assert alternative_combine_all([a, b, c], n) == alternative_combine_all(
            [c, a, b], n
        )
        assert parallel_combine_all([a, b, c], n) == parallel_combine_all([b, c, a], n)

    @given(vector=vectors)
    def test_parallel_identity(self, vector):
        assert vector.parallel(TritVector.all_no(len(vector))) == vector
