"""Property-based tests of the binary codecs (events and wire messages)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.broker import decode_event, decode_message, encode_event, encode_message
from repro.broker import messages as wire
from repro.errors import CodecError
from repro.matching import Event, EventSchema
from repro.matching.digest import MatchDigest

import pytest

SCHEMA = EventSchema(
    [("s", "string"), ("i", "integer"), ("f", "float"), ("d", "dollar"), ("b", "boolean")]
)

safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200
)
i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
u64 = st.integers(min_value=0, max_value=2**64 - 1)
u32 = st.integers(min_value=0, max_value=2**32 - 1)
finite_floats = st.floats(allow_nan=False, allow_infinity=False)


event_values = st.fixed_dictionaries(
    {
        "s": safe_text,
        "i": i64,
        "f": finite_floats,
        "d": finite_floats,
        "b": st.booleans(),
    }
)


class TestEventCodec:
    @given(values=event_values)
    @settings(max_examples=200)
    def test_roundtrip(self, values):
        event = Event(SCHEMA, values)
        assert decode_event(SCHEMA, encode_event(event)) == event

    @given(values=event_values)
    @settings(max_examples=50)
    def test_truncation_always_detected(self, values):
        data = encode_event(Event(SCHEMA, values))
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_event(SCHEMA, data[:cut])

    @given(values=event_values, trailing=st.binary(min_size=1, max_size=4))
    @settings(max_examples=50)
    def test_trailing_bytes_detected(self, values, trailing):
        data = encode_event(Event(SCHEMA, values))
        with pytest.raises(CodecError):
            decode_event(SCHEMA, data + trailing)


# Sorted unique id sets spanning both wire encodings: wide spans stay an id
# list, tight clusters cross over to the packed bitmap.
_id_sets = st.one_of(
    st.lists(st.integers(min_value=0, max_value=2**40), unique=True, max_size=12),
    st.lists(st.integers(min_value=1000, max_value=1100), unique=True, max_size=40),
).map(lambda ids: tuple(sorted(ids)))

digests = st.builds(MatchDigest, epoch=u64, checksum=u64, ids=_id_sets)


@st.composite
def broker_event_batches(draw):
    """Entries plus an index-aligned digest table (canonical form: the empty
    tuple whenever no entry carries a digest, matching the decoder)."""
    entries = tuple(
        draw(st.lists(st.tuples(safe_text, st.binary(max_size=200)), max_size=8))
    )
    aligned = tuple(
        draw(st.one_of(st.none(), digests)) for _ in entries
    )
    root = draw(safe_text)
    if any(digest is not None for digest in aligned):
        return wire.BrokerEventBatch(root, entries, aligned)
    return wire.BrokerEventBatch(root, entries)


messages = st.one_of(
    st.builds(wire.Connect, client_name=safe_text.filter(bool), last_seq=u64),
    st.builds(wire.ConnAck, broker_name=safe_text, backlog=u32),
    st.builds(wire.Subscribe, request_id=u32, expression=safe_text),
    st.builds(wire.SubAck, request_id=u32, subscription_id=u64),
    st.builds(wire.Unsubscribe, request_id=u32, subscription_id=u64),
    st.builds(wire.UnsubAck, request_id=u32, subscription_id=u64),
    st.builds(wire.Publish, event_data=st.binary(max_size=500)),
    st.builds(wire.EventDelivery, seq=u64, event_data=st.binary(max_size=500)),
    st.builds(wire.Ack, seq=u64),
    st.builds(wire.Disconnect),
    st.builds(wire.BrokerHello, broker_name=safe_text),
    st.builds(
        wire.BrokerEvent, root=safe_text, publisher=safe_text,
        event_data=st.binary(max_size=500),
        digest=st.one_of(st.none(), digests),
    ),
    broker_event_batches(),
    st.builds(
        wire.PublishBatch,
        events=st.lists(st.binary(max_size=200), max_size=8).map(tuple),
    ),
    st.builds(
        wire.SubPropagate,
        subscription_id=u64, subscriber=safe_text,
        expression=safe_text, origin=safe_text,
    ),
    st.builds(wire.UnsubPropagate, subscription_id=u64, origin=safe_text),
    st.builds(wire.ErrorReply, request_id=u32, reason=safe_text),
)


class TestMessageCodec:
    @given(message=messages)
    @settings(max_examples=300)
    def test_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    @given(message=messages)
    @settings(max_examples=60)
    def test_no_partial_decode(self, message):
        data = encode_message(message)
        for cut in range(len(data)):
            try:
                decoded = decode_message(data[:cut])
            except CodecError:
                continue
            # The only prefixes allowed to decode are (a) one that equals the
            # whole message (possible when trailing fields are empty strings)
            # and (b) the digest-stripped projection of a digest-bearing
            # broker event — the digest is an *optional trailing section*, so
            # a cut at the classic-field boundary decodes as a digest-less
            # message.  That is semantically safe (the digest is a pure
            # optimization; losing it means the next hop rematches), and the
            # transports length-frame every payload so such cuts never occur
            # on a real wire.
            if decoded == message:
                assert cut == len(data)
            else:
                assert decoded == _without_digests(message)

    @given(junk=st.binary(min_size=0, max_size=64))
    @settings(max_examples=200)
    def test_junk_never_crashes_decoder(self, junk):
        try:
            decode_message(junk)
        except CodecError:
            pass  # rejection is the expected path


def _without_digests(message):
    """The digest-stripped projection of a broker event message."""
    if isinstance(message, wire.BrokerEvent):
        return wire.BrokerEvent(message.root, message.publisher, message.event_data)
    if isinstance(message, wire.BrokerEventBatch):
        return wire.BrokerEventBatch(message.root, message.entries)
    return message


class TestMatchDigestCodec:
    @given(digest=digests)
    @settings(max_examples=300)
    def test_roundtrip(self, digest):
        assert MatchDigest.from_bytes(digest.to_bytes()) == digest

    @given(digest=digests)
    @settings(max_examples=60)
    def test_truncation_always_detected(self, digest):
        data = digest.to_bytes()
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                MatchDigest.from_bytes(data[:cut])

    @given(digest=digests)
    @settings(max_examples=100)
    def test_encoded_size_is_exact(self, digest):
        assert digest.encoded_size_bytes == len(digest.to_bytes())

    @given(digest=digests)
    @settings(max_examples=100)
    def test_dense_form_is_never_larger(self, digest):
        sparse_size = 17 + 4 + 8 * len(digest.ids)
        if digest.dense:
            assert len(digest.to_bytes()) < sparse_size
        else:
            assert len(digest.to_bytes()) == sparse_size
