"""Aggregation equivalence: compression must never change an answer.

:class:`~repro.matching.aggregation.AggregatingEngine` must be
indistinguishable from the engine it wraps running *without* aggregation,
for every subscription set, inner engine (compiled or sharded), kernel
backend, cache capacity, event, and initialization mask:

* the same match set (compared as sorted subscription ids),
* the same refined link mask, bit for bit, and
* identical answers from the single and batched entry points.

Step counts are deliberately **not** compared across aggregation on/off:
the aggregated engine attributes steps to the deduplicated leaves plus the
forest descent, which differs from the per-subscriber walk by design (the
whole point is to do less work).

The small schema/domain makes duplicate predicate bodies and covering
relations (a looser predicate subsuming a stricter one) arise constantly,
so the generated sets exercise dedup groups, multi-level forests, and
demotion at insert.  A seeded churn test drives inserts and removes —
including removing the last member of covering parents, which must promote
covered children back into the compiled program — with caches enabled, so
the descent cache's flush discipline and ``refresh_links`` repair are under
test the whole time.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import M, N, TritVector, Y
from repro.matching import Event, Predicate, RangeOp, Subscription, uniform_schema
from repro.matching.aggregation import AggregatingEngine
from repro.matching.engines import create_engine
from repro.matching.predicates import EqualityTest, RangeTest

SCHEMA = uniform_schema(4)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}
NUM_LINKS = 5

test_specs = st.one_of(
    st.none(),
    st.sampled_from(DOMAIN),
    st.tuples(
        st.sampled_from([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
        st.sampled_from(DOMAIN),
    ),
)
predicate_specs = st.tuples(*(test_specs for _ in range(4)))
subscription_lists = st.lists(predicate_specs, min_size=0, max_size=20)
events = st.tuples(*(st.sampled_from(DOMAIN) for _ in range(4)))
masks = st.lists(st.sampled_from([Y, M, N]), min_size=NUM_LINKS, max_size=NUM_LINKS).map(
    TritVector
)
inner_kinds = st.sampled_from(["compiled", "sharded"])
capacities = st.sampled_from([0, 64])


def make_subscriptions(specs):
    subscriptions = []
    for index, spec in enumerate(specs):
        tests = {}
        for name, part in zip(SCHEMA.names, spec):
            if part is None:
                continue
            if isinstance(part, tuple):
                tests[name] = RangeTest(part[0], part[1])
            else:
                tests[name] = EqualityTest(part)
        predicate = Predicate(SCHEMA, tests)
        if not predicate.is_satisfiable:
            continue  # both engines refuse these identically; nothing to compare
        subscriptions.append(Subscription(predicate, f"s{index % NUM_LINKS}"))
    return subscriptions


def link_of(subscription):
    return int(subscription.subscriber[1:])


def clone(subscription):
    return Subscription(
        subscription.predicate,
        subscription.subscriber,
        subscription_id=subscription.subscription_id,
    )


def build_pair(subscriptions, *, inner, capacity=0, backend=None, shards=2):
    """(unaggregated reference, aggregated) over the same subscription set."""
    kwargs = dict(
        domains=DOMAINS, match_cache_capacity=capacity, backend=backend
    )
    if inner == "sharded":
        kwargs["shards"] = shards
    plain = create_engine(inner, SCHEMA, **kwargs)
    aggregated = create_engine(inner, SCHEMA, aggregate=True, **kwargs)
    for subscription in subscriptions:
        plain.insert(subscription)
        aggregated.insert(clone(subscription))
    return plain, aggregated


def assert_same_matches(plain, aggregated, event):
    plain_ids = sorted(s.subscription_id for s in plain.match(event).subscriptions)
    aggregated_ids = sorted(
        s.subscription_id for s in aggregated.match(event).subscriptions
    )
    assert plain_ids == aggregated_ids


class TestAggregationEquivalence:
    @given(
        specs=subscription_lists,
        event_values=events,
        inner=inner_kinds,
        capacity=capacities,
    )
    @settings(max_examples=150)
    def test_match_sets_equal(self, specs, event_values, inner, capacity):
        plain, aggregated = build_pair(
            make_subscriptions(specs), inner=inner, capacity=capacity
        )
        event = Event.from_tuple(SCHEMA, event_values)
        for _ in range(2):  # second pass hits the descent + projection caches
            assert_same_matches(plain, aggregated, event)
        # The forest never *loses* anyone: members partition over groups.
        assert aggregated.subscription_count == plain.subscription_count
        assert aggregated.root_count <= max(1, aggregated.forest_nodes)

    @given(
        specs=subscription_lists,
        event_values=events,
        mask=masks,
        inner=inner_kinds,
        capacity=capacities,
    )
    @settings(max_examples=150)
    def test_link_masks_exact(self, specs, event_values, mask, inner, capacity):
        plain, aggregated = build_pair(
            make_subscriptions(specs), inner=inner, capacity=capacity
        )
        plain.bind_links(NUM_LINKS, link_of)
        aggregated.bind_links(NUM_LINKS, link_of)
        event = Event.from_tuple(SCHEMA, event_values)
        for _ in range(2):  # warm pass exercises the memoized link bits
            assert (
                aggregated.match_links(event, mask).mask
                == plain.match_links(event, mask).mask
            )

    @given(specs=subscription_lists, event_values=events, mask=masks)
    @settings(max_examples=60)
    def test_vector_backend_masks_exact(self, specs, event_values, mask):
        """The inner refinement runs over deduplicated leaves on every
        kernel backend; the vector kernels must agree with the reference."""
        plain, aggregated = build_pair(
            make_subscriptions(specs), inner="compiled", backend="vector"
        )
        plain.bind_links(NUM_LINKS, link_of)
        aggregated.bind_links(NUM_LINKS, link_of)
        event = Event.from_tuple(SCHEMA, event_values)
        assert_same_matches(plain, aggregated, event)
        assert (
            aggregated.match_links(event, mask).mask
            == plain.match_links(event, mask).mask
        )

    @given(specs=subscription_lists, event_values=events, mask=masks)
    @settings(max_examples=60)
    def test_batch_matches_single(self, specs, event_values, mask):
        plain, aggregated = build_pair(make_subscriptions(specs), inner="compiled")
        plain.bind_links(NUM_LINKS, link_of)
        aggregated.bind_links(NUM_LINKS, link_of)
        event = Event.from_tuple(SCHEMA, event_values)
        batch = aggregated.match_batch([event, event])
        single = aggregated.match(event)
        for result in batch:
            assert sorted(s.subscription_id for s in result.subscriptions) == sorted(
                s.subscription_id for s in single.subscriptions
            )
        link_batch = aggregated.match_links_batch([event, event], mask)
        link_single = aggregated.match_links(event, mask)
        for result in link_batch:
            assert result.mask == link_single.mask
        plain_batch = plain.match_links_batch([event, event], mask)
        for ours, theirs in zip(link_batch, plain_batch):
            assert ours.mask == theirs.mask

    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=60)
    def test_brute_force_agrees(self, specs, event_values):
        _, aggregated = build_pair(make_subscriptions(specs), inner="compiled")
        event = Event.from_tuple(SCHEMA, event_values)
        assert sorted(
            s.subscription_id for s in aggregated.match(event).subscriptions
        ) == sorted(
            s.subscription_id for s in aggregated.match_brute_force(event)
        )


class TestIngestOrderInvariance:
    @given(
        specs=subscription_lists,
        event_values=events,
        mask=masks,
        order_seed=st.integers(0, 2**16),
        use_index=st.booleans(),
    )
    @settings(max_examples=100)
    def test_any_ingest_order_gives_identical_answers(
        self, specs, event_values, mask, order_seed, use_index
    ):
        """Forest state is ingest-order invariant: whatever order the same
        subscription set arrives in — and whether the covering search runs
        through the attribute index or the linear sibling scans — the match
        sets and refined link masks are identical to the unaggregated
        reference over the original order."""
        subscriptions = make_subscriptions(specs)
        permuted = list(subscriptions)
        random.Random(order_seed).shuffle(permuted)
        plain = create_engine("compiled", SCHEMA, domains=DOMAINS)
        aggregated = AggregatingEngine(
            create_engine("compiled", SCHEMA, domains=DOMAINS),
            use_index=use_index,
        )
        for subscription in subscriptions:
            plain.insert(subscription)
        for subscription in permuted:
            aggregated.insert(clone(subscription))
        plain.bind_links(NUM_LINKS, link_of)
        aggregated.bind_links(NUM_LINKS, link_of)
        event = Event.from_tuple(SCHEMA, event_values)
        assert_same_matches(plain, aggregated, event)
        assert (
            aggregated.match_links(event, mask).mask
            == plain.match_links(event, mask).mask
        )
        assert aggregated.subscription_count == plain.subscription_count


class TestChurnEquivalence:
    def _run_churn(self, inner, *, rounds=150, seed=20260807):
        """Seeded insert/remove churn with caches enabled.  Removals target
        *all* live ids uniformly, so covering parents regularly lose their
        last member and must promote covered children back to compiled
        roots mid-stream; every answer is checked immediately after."""
        rng = random.Random(seed)
        kwargs = dict(domains=DOMAINS)
        if inner == "sharded":
            kwargs["shards"] = 3
        plain = create_engine(inner, SCHEMA, **kwargs)
        aggregated = create_engine(inner, SCHEMA, aggregate=True, **kwargs)
        plain.bind_links(NUM_LINKS, link_of)
        aggregated.bind_links(NUM_LINKS, link_of)
        live = {}

        def random_subscription():
            tests = {}
            for name in SCHEMA.names:
                roll = rng.random()
                if roll < 0.5:
                    continue  # frequent don't-cares breed covering parents
                if roll < 0.85:
                    tests[name] = EqualityTest(rng.choice(DOMAIN))
                else:
                    tests[name] = RangeTest(
                        rng.choice([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
                        rng.choice(DOMAIN),
                    )
            predicate = Predicate(SCHEMA, tests)
            if not predicate.is_satisfiable:
                return random_subscription()
            return Subscription(predicate, f"s{rng.randrange(NUM_LINKS)}")

        promotions_seen = 0
        for _ in range(rounds):
            if live and rng.random() < 0.45:
                subscription_id = rng.choice(sorted(live))
                del live[subscription_id]
                roots_before = aggregated.root_count
                plain.remove(subscription_id)
                aggregated.remove(subscription_id)
                if aggregated.root_count > roots_before:
                    promotions_seen += 1  # a covering parent dissolved
            else:
                subscription = random_subscription()
                live[subscription.subscription_id] = subscription
                plain.insert(subscription)
                aggregated.insert(clone(subscription))
            event = Event.from_tuple(
                SCHEMA, tuple(rng.choice(DOMAIN) for _ in SCHEMA.names)
            )
            assert_same_matches(plain, aggregated, event)
            mask = TritVector(rng.choice([Y, M, N]) for _ in range(NUM_LINKS))
            assert (
                aggregated.match_links(event, mask).mask
                == plain.match_links(event, mask).mask
            )
        assert aggregated.subscription_count == len(live)
        assert len(aggregated.subscriptions) == len(live)
        # The workload is built to dissolve covering parents; if this ever
        # stops happening the test has quietly lost its promotion coverage.
        assert promotions_seen > 0
        return aggregated

    def test_churn_compiled_inner(self):
        self._run_churn("compiled")

    def test_churn_sharded_inner(self):
        self._run_churn("sharded")

    def test_direct_wrapper_matches_create_engine(self):
        """Constructing the wrapper directly is the same engine the factory
        builds (the benchmark does this to reach ``cover_scan_limit``)."""
        subscriptions = make_subscriptions([(0, None, None, None), (0, 1, None, None)])
        via_factory = create_engine(
            "compiled", SCHEMA, domains=DOMAINS, aggregate=True
        )
        direct = AggregatingEngine(
            create_engine("compiled", SCHEMA, domains=DOMAINS)
        )
        for subscription in subscriptions:
            via_factory.insert(subscription)
            direct.insert(clone(subscription))
        event = Event.from_tuple(SCHEMA, (0, 1, 0, 0))
        assert_same_matches(via_factory, direct, event)
        assert via_factory.root_count == direct.root_count
