"""Property-based tests of the event log's reliability invariants.

Modeled as a random interleaving of appends, acks, collections and
reconnect reads; the invariant is that a client that acked up to ``k`` can
always read back exactly the events after ``k``, in order, regardless of
when garbage collection ran.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.broker import EventLog

operations = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.binary(max_size=8)),
        st.tuples(st.just("ack"), st.none()),
        st.tuples(st.just("collect"), st.none()),
    ),
    max_size=60,
)


class TestLogInvariants:
    @given(ops=operations)
    @settings(max_examples=200)
    def test_backlog_matches_reference_model(self, ops):
        log = EventLog("client")
        reference = []  # list of (seq, payload)
        acked = 0
        for op, payload in ops:
            if op == "append":
                seq = log.append(payload)
                reference.append((seq, payload))
                assert seq == len(reference)
            elif op == "ack" and reference:
                # Ack some prefix (here: everything sent so far).
                acked = reference[-1][0]
                log.ack(acked)
            elif op == "collect":
                log.collect()
            # Invariant: the unacked suffix is always fully readable.
            expected = [(s, p) for s, p in reference if s > acked]
            assert log.entries_after(acked) == expected

    @given(
        num_events=st.integers(min_value=0, max_value=40),
        ack_point=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=200)
    def test_reconnect_replay_exact(self, num_events, ack_point):
        log = EventLog("client")
        payloads = [bytes([i % 256]) for i in range(num_events)]
        for payload in payloads:
            log.append(payload)
        ack_point = min(ack_point, num_events)
        if ack_point:
            log.ack(ack_point)
        log.collect()
        replay = log.entries_after(ack_point)
        assert [p for _s, p in replay] == payloads[ack_point:]
        assert [s for s, _p in replay] == list(range(ack_point + 1, num_events + 1))


class LogMachine(RuleBasedStateMachine):
    """Stateful fuzz of append/ack/collect with a reference model."""

    def __init__(self):
        super().__init__()
        self.log = EventLog("client")
        self.sent = []  # payloads in order
        self.acked = 0

    @rule(payload=st.binary(max_size=6))
    def append(self, payload):
        seq = self.log.append(payload)
        self.sent.append(payload)
        assert seq == len(self.sent)

    @rule(data=st.data())
    def ack_prefix(self, data):
        if not self.sent:
            return
        upto = data.draw(st.integers(min_value=0, max_value=len(self.sent)))
        self.log.ack(upto)
        self.acked = max(self.acked, upto)

    @rule()
    def collect(self):
        self.log.collect()

    @invariant()
    def unacked_suffix_intact(self):
        expected = [
            (i + 1, payload)
            for i, payload in enumerate(self.sent)
            if i + 1 > self.acked
        ]
        assert self.log.entries_after(self.acked) == expected

    @invariant()
    def ack_watermark_consistent(self):
        assert self.log.acked == self.acked


TestLogMachine = LogMachine.TestCase
