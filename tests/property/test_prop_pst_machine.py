"""Stateful fuzzing of the Parallel Search Tree against a reference model.

Random interleavings of insert / remove / eliminate-trivial-tests / match;
the model is a plain list of subscriptions evaluated brute force.  Catches
structural corruption that single-shot property tests can miss (e.g. a
splice interacting with a later removal).
"""

from __future__ import annotations

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.matching import (
    EqualityTest,
    Event,
    ParallelSearchTree,
    Predicate,
    Subscription,
    uniform_schema,
)

SCHEMA = uniform_schema(3)
DOMAIN = [0, 1, 2]

predicate_specs = st.tuples(
    *(st.one_of(st.none(), st.sampled_from(DOMAIN)) for _ in range(3))
)
event_values = st.tuples(*(st.sampled_from(DOMAIN) for _ in range(3)))


class PstMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = ParallelSearchTree(SCHEMA)
        self.model = {}  # subscription_id -> Subscription

    @rule(specs=predicate_specs)
    def insert(self, specs):
        tests = {
            name: EqualityTest(value)
            for name, value in zip(SCHEMA.names, specs)
            if value is not None
        }
        subscription = Subscription(Predicate(SCHEMA, tests), "s")
        self.tree.insert(subscription)
        self.model[subscription.subscription_id] = subscription

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        victim_id = data.draw(st.sampled_from(sorted(self.model)))
        removed = self.tree.remove(victim_id)
        assert removed.subscription_id == victim_id
        del self.model[victim_id]

    @rule()
    def optimize(self):
        self.tree.eliminate_trivial_tests()

    @rule(values=event_values)
    def match(self, values):
        event = Event.from_tuple(SCHEMA, values)
        expected = {
            sid for sid, s in self.model.items() if s.predicate.matches(event)
        }
        actual = {
            s.subscription_id for s in self.tree.match(event).subscriptions
        }
        assert actual == expected

    @invariant()
    def registry_size_consistent(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def empty_tree_is_single_root(self):
        if not self.model:
            # After everything is removed, pruning must have collapsed the
            # structure back to a bare root (no leaked nodes).
            assert self.tree.node_count() == 1


TestPstMachine = PstMachine.TestCase
