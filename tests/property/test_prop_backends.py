"""Backend equivalence: every execution backend answers like ``interp``.

The :class:`~repro.matching.backends.KernelBackend` contract is that a
backend is *observationally identical* to the reference interpreter:

* the same match **set** per event (compared as sorted subscription ids —
  match-list order is unspecified, exactly as it already is between the
  engines' batch and single paths),
* the same per-event **step counts** (with caches disabled — cache hits
  replay recorded steps, which the contract allows to differ), and
* the same refined **link masks** bit for bit.

Pinned here for the ``vector`` backend (numpy path and the forced
zero-dependency column fallback) against ``interp``, across fresh
programs, churn/recompile mid-stream, empty batches, duplicate-heavy
batches, and batches larger than the vector chunk width; and for the
``procpool`` execution mode of the sharded engine against a serial
sharded reference.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import M, N, TritVector, Y
from repro.matching import Event, Predicate, RangeOp, Subscription, uniform_schema
from repro.matching.backends.vector import VectorBackend
from repro.matching.engines import CompiledEngine, create_engine
from repro.matching.predicates import EqualityTest, RangeTest
from repro.matching.sharding import ShardedEngine

SCHEMA = uniform_schema(4)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}
NUM_LINKS = 5

test_specs = st.one_of(
    st.none(),
    st.sampled_from(DOMAIN),
    st.tuples(
        st.sampled_from([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
        st.sampled_from(DOMAIN),
    ),
)
predicate_specs = st.tuples(*(test_specs for _ in range(4)))
subscription_lists = st.lists(predicate_specs, min_size=0, max_size=20)
event_values = st.tuples(*(st.sampled_from(DOMAIN) for _ in range(4)))
event_batches = st.lists(event_values, min_size=0, max_size=12)
masks = st.lists(st.sampled_from([Y, M, N]), min_size=NUM_LINKS, max_size=NUM_LINKS).map(
    TritVector
)


def make_subscriptions(specs):
    subscriptions = []
    for index, spec in enumerate(specs):
        tests = {}
        for name, part in zip(SCHEMA.names, spec):
            if part is None:
                continue
            if isinstance(part, tuple):
                tests[name] = RangeTest(part[0], part[1])
            else:
                tests[name] = EqualityTest(part)
        subscriptions.append(
            Subscription(Predicate(SCHEMA, tests), f"s{index % NUM_LINKS}")
        )
    return subscriptions


def link_of(subscription):
    return int(subscription.subscriber[1:])


def clone(subscription):
    return Subscription(
        subscription.predicate,
        subscription.subscriber,
        subscription_id=subscription.subscription_id,
    )


def build_engines(subscriptions):
    """(interp, vector, vector-forced-fallback) engines, caches disabled."""
    engines = [
        CompiledEngine(SCHEMA, domains=DOMAINS, match_cache_capacity=0, backend="interp"),
        CompiledEngine(SCHEMA, domains=DOMAINS, match_cache_capacity=0, backend="vector"),
        CompiledEngine(
            SCHEMA,
            domains=DOMAINS,
            match_cache_capacity=0,
            backend=VectorBackend(force_fallback=True),
        ),
    ]
    for subscription in subscriptions:
        for engine in engines:
            engine.insert(clone(subscription))
    return engines


def id_set(result):
    return sorted(s.subscription_id for s in result.subscriptions)


class TestVectorEquivalence:
    @given(specs=subscription_lists, batch=event_batches)
    @settings(max_examples=120)
    def test_batch_sets_and_steps(self, specs, batch):
        interp, vector, fallback = build_engines(make_subscriptions(specs))
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        reference = interp.match_batch(events)
        for engine in (vector, fallback):
            results = engine.match_batch(events)
            assert len(results) == len(reference)
            for got, want in zip(results, reference):
                assert id_set(got) == id_set(want)
                assert got.steps == want.steps

    @given(specs=subscription_lists, values=event_values)
    @settings(max_examples=80)
    def test_single_matches_batch(self, specs, values):
        """A backend's single-event answer equals its own batch answer."""
        _, vector, fallback = build_engines(make_subscriptions(specs))
        event = Event.from_tuple(SCHEMA, values)
        for engine in (vector, fallback):
            single = engine.match(event)
            [batched] = engine.match_batch([event])
            assert id_set(single) == id_set(batched)
            assert single.steps == batched.steps

    @given(specs=subscription_lists, batch=event_batches, mask=masks)
    @settings(max_examples=80)
    def test_links_batch_masks_and_steps(self, specs, batch, mask):
        interp, vector, fallback = build_engines(make_subscriptions(specs))
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        for engine in (interp, vector, fallback):
            engine.bind_links(NUM_LINKS, link_of)
        reference = interp.match_links_batch(events, mask)
        for engine in (vector, fallback):
            results = engine.match_links_batch(events, mask)
            for got, want in zip(results, reference):
                assert got.mask == want.mask
                assert got.steps == want.steps

    def test_duplicate_heavy_batch(self):
        """Duplicates collapse identically (same shared entry per repeat)."""
        interp, vector, fallback = build_engines(
            make_subscriptions([(0, None, 1, None), (None, 2, None, None)])
        )
        event = Event.from_tuple(SCHEMA, (0, 2, 1, 0))
        other = Event.from_tuple(SCHEMA, (1, 1, 1, 1))
        batch = [event, other, event, event, other]
        reference = interp.match_batch(batch)
        for engine in (vector, fallback):
            results = engine.match_batch(batch)
            for got, want in zip(results, reference):
                assert id_set(got) == id_set(want)
                assert got.steps == want.steps

    def test_empty_batch(self):
        for engine in build_engines(make_subscriptions([(0, None, None, None)])):
            assert engine.match_batch([]) == []

    def test_batch_wider_than_chunk(self):
        """Batches beyond the 64-event mask width go through the chunk loop."""
        rng = random.Random(7)
        specs = [
            tuple(rng.choice([None, 0, 1, 2]) for _ in range(4)) for _ in range(30)
        ]
        interp, vector, fallback = build_engines(make_subscriptions(specs))
        events = [
            Event.from_tuple(SCHEMA, tuple(rng.choice(DOMAIN) for _ in range(4)))
            for _ in range(150)
        ]
        reference = interp.match_batch(events)
        for engine in (vector, fallback):
            results = engine.match_batch(events)
            for got, want in zip(results, reference):
                assert id_set(got) == id_set(want)
                assert got.steps == want.steps

    def test_churn_and_recompile_mid_stream(self):
        """Patches and recompiles bump the generation; the vector backend
        must rebuild its columnar index rather than answer from a stale one."""
        rng = random.Random(20260807)
        interp, vector, fallback = build_engines([])
        engines = (interp, vector, fallback)
        for engine in engines:
            engine.bind_links(NUM_LINKS, link_of)
        live = {}
        for round_index in range(120):
            if live and rng.random() < 0.45:
                subscription_id = rng.choice(sorted(live))
                del live[subscription_id]
                for engine in engines:
                    engine.remove(subscription_id)
            else:
                tests = {
                    name: EqualityTest(rng.choice(DOMAIN))
                    for name in SCHEMA.names
                    if rng.random() < 0.6
                }
                subscription = Subscription(
                    Predicate(SCHEMA, tests), f"s{rng.randrange(NUM_LINKS)}"
                )
                live[subscription.subscription_id] = subscription
                for engine in engines:
                    engine.insert(clone(subscription))
            if round_index % 29 == 28:
                for engine in engines:
                    engine.invalidate()
            events = [
                Event.from_tuple(
                    SCHEMA, tuple(rng.choice(DOMAIN) for _ in SCHEMA.names)
                )
                for _ in range(rng.randrange(1, 5))
            ]
            reference = interp.match_batch(events)
            mask = TritVector(rng.choice([Y, M, N]) for _ in range(NUM_LINKS))
            reference_links = interp.match_links_batch(events, mask)
            for engine in (vector, fallback):
                for got, want in zip(engine.match_batch(events), reference):
                    assert id_set(got) == id_set(want)
                    assert got.steps == want.steps
                for got, want in zip(
                    engine.match_links_batch(events, mask), reference_links
                ):
                    assert got.mask == want.mask
                    assert got.steps == want.steps


@pytest.fixture(scope="class")
def procpool_pair():
    """(serial sharded reference, procpool sharded) over one live set.

    Class-scoped: worker processes fork once and serve every test; churn
    inside a test exercises generation-tagged republish on the same pool.
    ``early_exit=False`` on the reference makes link step counts
    shard-order independent, matching procpool's every-shard semantics.
    """
    reference = ShardedEngine(
        SCHEMA,
        domains=DOMAINS,
        num_shards=3,
        policy="hash",
        match_cache_capacity=0,
        early_exit=False,
    )
    procpool = ShardedEngine(
        SCHEMA,
        domains=DOMAINS,
        num_shards=3,
        policy="hash",
        match_cache_capacity=0,
        early_exit=False,
        backend="procpool",
        workers=2,
    )
    reference.bind_links(NUM_LINKS, link_of)
    procpool.bind_links(NUM_LINKS, link_of)
    try:
        yield reference, procpool
    finally:
        procpool.close()


class TestProcPoolEquivalence:
    def test_seeded_stream_with_churn(self, procpool_pair):
        reference, procpool = procpool_pair
        rng = random.Random(99)
        live = {}
        for round_index in range(40):
            if live and rng.random() < 0.35:
                subscription_id = rng.choice(sorted(live))
                del live[subscription_id]
                reference.remove(subscription_id)
                procpool.remove(subscription_id)
            else:
                tests = {
                    name: EqualityTest(rng.choice(DOMAIN))
                    for name in SCHEMA.names
                    if rng.random() < 0.6
                }
                subscription = Subscription(
                    Predicate(SCHEMA, tests), f"s{rng.randrange(NUM_LINKS)}"
                )
                live[subscription.subscription_id] = subscription
                reference.insert(subscription)
                procpool.insert(clone(subscription))
            events = [
                Event.from_tuple(
                    SCHEMA, tuple(rng.choice(DOMAIN) for _ in SCHEMA.names)
                )
                for _ in range(rng.randrange(1, 6))
            ]
            # Duplicate an event within the batch now and then.
            if len(events) > 1 and rng.random() < 0.5:
                events.append(events[0])
            want_batch = reference.match_batch(events)
            got_batch = procpool.match_batch(events)
            for got, want in zip(got_batch, want_batch):
                assert id_set(got) == id_set(want)
                assert got.steps == want.steps
            mask = TritVector(rng.choice([Y, M, N]) for _ in range(NUM_LINKS))
            want_links = reference.match_links_batch(events, mask)
            got_links = procpool.match_links_batch(events, mask)
            for got, want in zip(got_links, want_links):
                assert got.mask == want.mask
                assert got.steps == want.steps

    def test_empty_batch(self, procpool_pair):
        _reference, procpool = procpool_pair
        assert procpool.match_batch([]) == []
        assert procpool.match_links_batch([], TritVector([M] * NUM_LINKS)) == []

    def test_republish_after_rebind(self, procpool_pair):
        """Re-annotation (bind_links) bumps generations and republishes."""
        reference, procpool = procpool_pair
        event = Event.from_tuple(SCHEMA, (0, 1, 2, 0))
        mask = TritVector([M] * NUM_LINKS)
        for engine in (reference, procpool):
            engine.bind_links(NUM_LINKS, link_of)
        [want] = reference.match_links_batch([event], mask)
        [got] = procpool.match_links_batch([event], mask)
        assert got.mask == want.mask and got.steps == want.steps


def test_create_engine_procpool_roundtrip():
    """create_engine wires backend= through to a working procpool engine."""
    engine = create_engine(
        "sharded", SCHEMA, domains=DOMAINS, shards=2, backend="procpool"
    )
    try:
        for subscription in make_subscriptions([(0, None, 1, None), (None,) * 4]):
            engine.insert(subscription)
        reference = CompiledEngine(SCHEMA, domains=DOMAINS)
        for subscription in engine.subscriptions:
            reference.insert(clone(subscription))
        events = [Event.from_tuple(SCHEMA, (0, 0, 1, 2))] * 3
        for got, want in zip(
            engine.match_batch(events), reference.match_batch(events)
        ):
            assert id_set(got) == id_set(want)
    finally:
        engine.close()
