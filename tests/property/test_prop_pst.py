"""Property-based tests of the matching engines.

The master invariant: every matcher (plain PST, optimized PST, factored,
search DAG) returns exactly the subscriptions whose predicates evaluate true
under direct brute-force evaluation — for arbitrary subscription sets and
events.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.matching import (
    EqualityTest,
    Event,
    FactoredMatcher,
    Predicate,
    SearchDag,
    Subscription,
    build_pst,
    uniform_schema,
)

SCHEMA = uniform_schema(4)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}

#: A predicate as a map of attribute -> equality value (None = don't care).
predicate_specs = st.tuples(
    *(st.one_of(st.none(), st.sampled_from(DOMAIN)) for _ in range(4))
)
subscription_lists = st.lists(predicate_specs, min_size=0, max_size=25)
events = st.tuples(*(st.sampled_from(DOMAIN + [7]) for _ in range(4)))  # 7 = out of domain


def make_subscriptions(specs):
    subscriptions = []
    for index, spec in enumerate(specs):
        tests = {
            name: EqualityTest(value)
            for name, value in zip(SCHEMA.names, spec)
            if value is not None
        }
        subscriptions.append(
            Subscription(Predicate(SCHEMA, tests), f"s{index}")
        )
    return subscriptions


def brute_force(subscriptions, event):
    return {s.subscription_id for s in subscriptions if s.predicate.matches(event)}


class TestMatchEquivalence:
    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=200)
    def test_pst_matches_brute_force(self, specs, event_values):
        subscriptions = make_subscriptions(specs)
        tree = build_pst(SCHEMA, subscriptions)
        event = Event.from_tuple(SCHEMA, event_values)
        assert {
            s.subscription_id for s in tree.match(event).subscriptions
        } == brute_force(subscriptions, event)

    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=150)
    def test_optimized_pst_matches_brute_force(self, specs, event_values):
        subscriptions = make_subscriptions(specs)
        tree = build_pst(SCHEMA, subscriptions, domains=DOMAINS)
        tree.eliminate_trivial_tests()
        event = Event.from_tuple(SCHEMA, event_values)
        assert {
            s.subscription_id for s in tree.match(event).subscriptions
        } == brute_force(subscriptions, event)

    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=150)
    def test_factored_matches_brute_force(self, specs, event_values):
        subscriptions = make_subscriptions(specs)
        matcher = FactoredMatcher(SCHEMA, ["a1"], DOMAINS)
        for subscription in subscriptions:
            matcher.insert(subscription)
        event = Event.from_tuple(SCHEMA, event_values)
        assert {
            s.subscription_id for s in matcher.match(event).subscriptions
        } == brute_force(subscriptions, event)

    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=150)
    def test_dag_matches_brute_force(self, specs, event_values):
        subscriptions = make_subscriptions(specs)
        dag = SearchDag(build_pst(SCHEMA, subscriptions))
        event = Event.from_tuple(SCHEMA, event_values)
        assert {
            s.subscription_id for s in dag.match(event).subscriptions
        } == brute_force(subscriptions, event)


class TestInsertRemoveRoundtrip:
    @given(specs=subscription_lists, event_values=events, data=st.data())
    @settings(max_examples=100)
    def test_remove_restores_previous_matches(self, specs, event_values, data):
        subscriptions = make_subscriptions(specs)
        tree = build_pst(SCHEMA, subscriptions)
        event = Event.from_tuple(SCHEMA, event_values)
        if not subscriptions:
            return
        victim = data.draw(st.sampled_from(subscriptions))
        tree.remove(victim.subscription_id)
        remaining = [s for s in subscriptions if s is not victim]
        assert {
            s.subscription_id for s in tree.match(event).subscriptions
        } == brute_force(remaining, event)

    @given(specs=subscription_lists)
    @settings(max_examples=100)
    def test_remove_everything_empties_tree(self, specs):
        subscriptions = make_subscriptions(specs)
        tree = build_pst(SCHEMA, subscriptions)
        for subscription in subscriptions:
            tree.remove(subscription.subscription_id)
        assert len(tree) == 0
        assert tree.node_count() == 1

    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=100)
    def test_elimination_then_insert_consistent(self, specs, event_values):
        subscriptions = make_subscriptions(specs)
        if len(subscriptions) < 2:
            return
        half = len(subscriptions) // 2
        tree = build_pst(SCHEMA, subscriptions[:half])
        tree.eliminate_trivial_tests()
        for subscription in subscriptions[half:]:
            tree.insert(subscription)
        event = Event.from_tuple(SCHEMA, event_values)
        assert {
            s.subscription_id for s in tree.match(event).subscriptions
        } == brute_force(subscriptions, event)


class TestStepAccounting:
    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=100)
    def test_steps_bounded_by_node_count(self, specs, event_values):
        tree = build_pst(SCHEMA, make_subscriptions(specs))
        event = Event.from_tuple(SCHEMA, event_values)
        result = tree.match(event)
        assert 1 <= result.steps <= tree.node_count()

    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=100)
    def test_elimination_never_increases_steps(self, specs, event_values):
        subscriptions = make_subscriptions(specs)
        tree = build_pst(SCHEMA, subscriptions)
        event = Event.from_tuple(SCHEMA, event_values)
        before = tree.match(event).steps
        tree.eliminate_trivial_tests()
        assert tree.match(event).steps <= before
