"""Batched matching is indistinguishable from per-event matching.

For every engine (object-graph tree, compiled arrays, factored matcher) and
every batch of events, ``match_batch(events)[i]`` must equal
``match(events[i])`` — same match set, same step count.  Likewise
``match_links_batch`` against per-event ``match_links``.  Batches with
repeated events exercise the compiled kernel's projection dedup and the
projection cache without being allowed to change any result.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import M, N, TritVector, Y
from repro.matching import Event, Predicate, RangeOp, Subscription, uniform_schema
from repro.matching.engines import CompiledEngine, TreeEngine
from repro.matching.optimizations import FactoredMatcher
from repro.matching.predicates import EqualityTest, RangeTest

SCHEMA = uniform_schema(4)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}
NUM_LINKS = 5

test_specs = st.one_of(
    st.none(),
    st.sampled_from(DOMAIN),
    st.tuples(
        st.sampled_from([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
        st.sampled_from(DOMAIN),
    ),
)
predicate_specs = st.tuples(*(test_specs for _ in range(4)))
subscription_lists = st.lists(predicate_specs, min_size=0, max_size=15)
event_tuples = st.tuples(*(st.sampled_from(DOMAIN) for _ in range(4)))
#: Batches drawn from a small value pool so repeats (dedup + cache hits) are
#: common, including batches with every event identical.
event_batches = st.lists(event_tuples, min_size=0, max_size=12)
masks = st.lists(st.sampled_from([Y, M, N]), min_size=NUM_LINKS, max_size=NUM_LINKS).map(
    TritVector
)


def make_subscriptions(specs):
    subscriptions = []
    for index, spec in enumerate(specs):
        tests = {}
        for name, part in zip(SCHEMA.names, spec):
            if part is None:
                continue
            if isinstance(part, tuple):
                tests[name] = RangeTest(part[0], part[1])
            else:
                tests[name] = EqualityTest(part)
        subscriptions.append(Subscription(Predicate(SCHEMA, tests), f"s{index % NUM_LINKS}"))
    return subscriptions


def link_of(subscription):
    return int(subscription.subscriber[1:])


def assert_batch_equivalent(matcher, events):
    batch = matcher.match_batch(events)
    assert len(batch) == len(events)
    for event, batched in zip(events, batch):
        single = matcher.match(event)
        assert sorted(s.subscription_id for s in batched.subscriptions) == sorted(
            s.subscription_id for s in single.subscriptions
        )
        assert batched.steps == single.steps


class TestMatchBatchEquivalence:
    @given(specs=subscription_lists, batch=event_batches)
    @settings(max_examples=150)
    def test_compiled(self, specs, batch):
        engine = CompiledEngine(SCHEMA, domains=DOMAINS)
        for subscription in make_subscriptions(specs):
            engine.insert(subscription)
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        assert_batch_equivalent(engine, events)

    @given(specs=subscription_lists, batch=event_batches)
    @settings(max_examples=75)
    def test_compiled_without_cache(self, specs, batch):
        engine = CompiledEngine(SCHEMA, domains=DOMAINS, match_cache_capacity=0)
        for subscription in make_subscriptions(specs):
            engine.insert(subscription)
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        assert_batch_equivalent(engine, events)

    @given(specs=subscription_lists, batch=event_batches)
    @settings(max_examples=75)
    def test_tree_fallback(self, specs, batch):
        engine = TreeEngine(SCHEMA, domains=DOMAINS)
        for subscription in make_subscriptions(specs):
            engine.insert(subscription)
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        assert_batch_equivalent(engine, events)

    @given(specs=subscription_lists, batch=event_batches)
    @settings(max_examples=50)
    def test_factored_fallback(self, specs, batch):
        matcher = FactoredMatcher(SCHEMA, [SCHEMA.names[0]], DOMAINS)
        for subscription in make_subscriptions(specs):
            matcher.insert(subscription)
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        assert_batch_equivalent(matcher, events)

    @given(specs=subscription_lists, event_values=event_tuples)
    @settings(max_examples=50)
    def test_identical_events_share_one_result(self, specs, event_values):
        """A batch of copies of one event: every slot gets the same answer."""
        engine = CompiledEngine(SCHEMA, domains=DOMAINS)
        for subscription in make_subscriptions(specs):
            engine.insert(subscription)
        events = [Event.from_tuple(SCHEMA, event_values) for _ in range(6)]
        results = engine.match_batch(events)
        single = engine.match(events[0])
        for result in results:
            assert sorted(s.subscription_id for s in result.subscriptions) == sorted(
                s.subscription_id for s in single.subscriptions
            )
            assert result.steps == single.steps


class TestMatchLinksBatchEquivalence:
    @given(specs=subscription_lists, batch=event_batches, mask=masks)
    @settings(max_examples=100)
    def test_compiled(self, specs, batch, mask):
        engine = CompiledEngine(SCHEMA, domains=DOMAINS)
        for subscription in make_subscriptions(specs):
            engine.insert(subscription)
        engine.bind_links(NUM_LINKS, link_of)
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        batched = engine.match_links_batch(events, mask)
        assert len(batched) == len(events)
        for event, batch_result in zip(events, batched):
            single = engine.match_links(event, mask)
            assert batch_result.mask == single.mask
            assert batch_result.steps == single.steps

    @given(specs=subscription_lists, batch=event_batches, mask=masks)
    @settings(max_examples=50)
    def test_tree_fallback(self, specs, batch, mask):
        engine = TreeEngine(SCHEMA, domains=DOMAINS)
        for subscription in make_subscriptions(specs):
            engine.insert(subscription)
        engine.bind_links(NUM_LINKS, link_of)
        events = [Event.from_tuple(SCHEMA, values) for values in batch]
        batched = engine.match_links_batch(events, mask)
        for event, batch_result in zip(events, batched):
            single = engine.match_links(event, mask)
            assert batch_result.mask == single.mask
            assert batch_result.steps == single.steps
