"""Engine equivalence: TreeEngine and CompiledEngine are indistinguishable.

The compiled matcher is only allowed to be *faster*: for every subscription
set, every event, and every initialization mask, both engines must produce

* the same match set (order is unspecified — the tree searches depth-first,
  the compiled kernel breadth-first, so sets are compared),
* the same step count (the paper's Chart 2/3 metric), and
* the same refined link mask with the same step count from link matching.

A churn test drives inserts and removes through both engines to exercise the
compiled program's incremental patching (and its recompile fallback).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import M, N, TritVector, Y
from repro.matching import Event, Predicate, RangeOp, Subscription, uniform_schema
from repro.matching.engines import CompiledEngine, TreeEngine
from repro.matching.predicates import EqualityTest, RangeTest

SCHEMA = uniform_schema(4)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}
NUM_LINKS = 5

#: Per attribute: None = don't care, int = equality, (op, bound) = range.
test_specs = st.one_of(
    st.none(),
    st.sampled_from(DOMAIN),
    st.tuples(
        st.sampled_from([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
        st.sampled_from(DOMAIN),
    ),
)
predicate_specs = st.tuples(*(test_specs for _ in range(4)))
subscription_lists = st.lists(predicate_specs, min_size=0, max_size=20)
events = st.tuples(*(st.sampled_from(DOMAIN + [9]) for _ in range(4)))  # 9 = out of domain
masks = st.lists(st.sampled_from([Y, M, N]), min_size=NUM_LINKS, max_size=NUM_LINKS).map(
    TritVector
)


def make_subscriptions(specs):
    subscriptions = []
    for index, spec in enumerate(specs):
        tests = {}
        for name, part in zip(SCHEMA.names, spec):
            if part is None:
                continue
            if isinstance(part, tuple):
                tests[name] = RangeTest(part[0], part[1])
            else:
                tests[name] = EqualityTest(part)
        subscriptions.append(Subscription(Predicate(SCHEMA, tests), f"s{index % NUM_LINKS}"))
    return subscriptions


def link_of(subscription):
    return int(subscription.subscriber[1:])


def build_engines(subscriptions, *, domains=None):
    tree = TreeEngine(SCHEMA, domains=domains)
    compiled = CompiledEngine(SCHEMA, domains=domains)
    for subscription in subscriptions:
        tree.insert(subscription)
        compiled.insert(
            Subscription(
                subscription.predicate,
                subscription.subscriber,
                subscription_id=subscription.subscription_id,
            )
        )
    return tree, compiled


def assert_match_equivalent(tree, compiled, event):
    tree_result = tree.match(event)
    compiled_result = compiled.match(event)
    assert sorted(s.subscription_id for s in tree_result.subscriptions) == sorted(
        s.subscription_id for s in compiled_result.subscriptions
    )
    assert tree_result.steps == compiled_result.steps


class TestMatchEquivalence:
    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=200)
    def test_same_matches_and_steps(self, specs, event_values):
        tree, compiled = build_engines(make_subscriptions(specs))
        assert_match_equivalent(tree, compiled, Event.from_tuple(SCHEMA, event_values))

    @given(specs=subscription_lists, event_values=events)
    @settings(max_examples=100)
    def test_same_matches_and_steps_with_domains(self, specs, event_values):
        tree, compiled = build_engines(make_subscriptions(specs), domains=DOMAINS)
        assert_match_equivalent(tree, compiled, Event.from_tuple(SCHEMA, event_values))


class TestLinkMatchEquivalence:
    @given(specs=subscription_lists, event_values=events, mask=masks)
    @settings(max_examples=200)
    def test_same_refined_mask_and_steps(self, specs, event_values, mask):
        # Link matching needs declared domains (annotation treats them as the
        # exhaustive value universe), so events stay in-domain here.
        event_values = tuple(v if v in DOMAIN else DOMAIN[0] for v in event_values)
        tree, compiled = build_engines(make_subscriptions(specs), domains=DOMAINS)
        tree.bind_links(NUM_LINKS, link_of)
        compiled.bind_links(NUM_LINKS, link_of)
        event = Event.from_tuple(SCHEMA, event_values)
        tree_result = tree.match_links(event, mask)
        compiled_result = compiled.match_links(event, mask)
        assert compiled_result.mask == tree_result.mask
        assert compiled_result.steps == tree_result.steps


class TestChurnEquivalence:
    def test_incremental_patching_stays_equivalent(self):
        """Seeded insert/remove churn: the compiled program is patched in
        place (recompiling only when patching bails out) and must stay
        equivalent to the tree after every mutation."""
        rng = random.Random(20260806)
        tree, compiled = build_engines([], domains=DOMAINS)
        tree.bind_links(NUM_LINKS, link_of)
        compiled.bind_links(NUM_LINKS, link_of)
        live = {}

        def random_subscription():
            tests = {}
            for name in SCHEMA.names:
                roll = rng.random()
                if roll < 0.4:
                    continue
                if roll < 0.8:
                    tests[name] = EqualityTest(rng.choice(DOMAIN))
                else:
                    tests[name] = RangeTest(
                        rng.choice([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
                        rng.choice(DOMAIN),
                    )
            return Subscription(Predicate(SCHEMA, tests), f"s{rng.randrange(NUM_LINKS)}")

        for round_index in range(200):
            if live and rng.random() < 0.4:
                subscription_id = rng.choice(sorted(live))
                del live[subscription_id]
                tree.remove(subscription_id)
                compiled.remove(subscription_id)
            else:
                subscription = random_subscription()
                live[subscription.subscription_id] = subscription
                tree.insert(subscription)
                compiled.insert(
                    Subscription(
                        subscription.predicate,
                        subscription.subscriber,
                        subscription_id=subscription.subscription_id,
                    )
                )
            event = Event.from_tuple(
                SCHEMA, tuple(rng.choice(DOMAIN) for _ in SCHEMA.names)
            )
            assert_match_equivalent(tree, compiled, event)
            mask = TritVector(rng.choice([Y, M, N]) for _ in range(NUM_LINKS))
            tree_links = tree.match_links(event, mask)
            compiled_links = compiled.match_links(event, mask)
            assert compiled_links.mask == tree_links.mask
            assert compiled_links.steps == tree_links.steps
        assert len(tree.subscriptions) == len(live)
        assert len(compiled.subscriptions) == len(live)
