"""Property-based tests of match-once forwarding (match digests).

The invariant under test is *bit-identity*: routing a random event through
random topologies with digests enabled produces exactly the same forward
edges, delivery sets and link masks as per-hop rematching — across matching
engines, execution backends, sharding and aggregation, and through every
fallback of the digest matrix (epoch-mismatch churn, diverged subscription
sets, stale flood windows, fault replays).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.matching import EqualityTest, Event, Predicate, Subscription, uniform_schema
from repro.network import NodeKind, Topology
from repro.protocols import LinkMatchingProtocol, ProtocolContext, SimMessage

SCHEMA = uniform_schema(3)
DOMAIN = [0, 1]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}

#: The engine matrix the bit-identity property runs over: both engines, the
#: vector execution backend, sharding, and subscription aggregation.
CONFIGS = [
    {"engine": "tree"},
    {"engine": "compiled"},
    {"engine": "compiled", "backend": "vector"},
    {"engine": "sharded", "shards": 2},
    {"engine": "compiled", "aggregate": True},
    {"engine": "sharded", "shards": 2, "aggregate": True},
]

CONFIG_IDS = [
    "-".join(f"{k}={v}" for k, v in config.items()) for config in CONFIGS
]


@st.composite
def topologies(draw):
    """A connected broker graph: random tree + up to 2 extra chord links."""
    num_brokers = draw(st.integers(min_value=1, max_value=5))
    topology = Topology()
    names = [f"B{i}" for i in range(num_brokers)]
    for i, name in enumerate(names):
        topology.add_broker(name)
        if i > 0:
            parent = names[draw(st.integers(min_value=0, max_value=i - 1))]
            topology.add_link(parent, name, latency_ms=10.0)
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        if a != b:
            try:
                topology.add_link(a, b, latency_ms=5.0)
            except Exception:
                pass  # duplicate link; skip
    num_subscribers = draw(st.integers(min_value=1, max_value=4))
    for i in range(num_subscribers):
        topology.add_client(f"c{i}", draw(st.sampled_from(names)))
    topology.add_client("P0", draw(st.sampled_from(names)), kind=NodeKind.PUBLISHER)
    return topology


predicate_specs = st.tuples(
    *(st.one_of(st.none(), st.sampled_from(DOMAIN)) for _ in range(3))
)
events = st.tuples(*(st.sampled_from(DOMAIN) for _ in range(3))).map(
    lambda values: Event.from_tuple(SCHEMA, values)
)


def make_subscriptions(specs_by_client):
    subscriptions = []
    for client, specs in specs_by_client:
        tests = {
            name: EqualityTest(value)
            for name, value in zip(SCHEMA.names, specs)
            if value is not None
        }
        subscriptions.append(Subscription(Predicate(SCHEMA, tests), client))
    return subscriptions


def build_protocol(topology, subscriptions, config, *, use_digests):
    context = ProtocolContext(
        topology, SCHEMA, subscriptions, domains=DOMAINS, **config
    )
    return LinkMatchingProtocol(context, use_digests=use_digests)


def drive(protocol, root, event, *, mutate_after_first=None):
    """Run an event hop by hop; returns ``broker -> Decision``.

    ``mutate_after_first`` is called once, right after the publishing
    broker's decision — the churn injection point for the epoch-mismatch
    properties (the minted digest is already in flight on the forwards).
    """
    decisions = {}
    frontier = [(root, protocol.make_message(event, root))]
    while frontier:
        broker, incoming = frontier.pop()
        assert broker not in decisions, "a broker saw the event twice"
        decision = protocol.handle(broker, incoming)
        decisions[broker] = decision
        frontier.extend(decision.sends)
        if mutate_after_first is not None:
            mutate_after_first()
            mutate_after_first = None
    return decisions


def summarize(decisions):
    """The observable routing outcome: forward edges + per-broker deliveries."""
    forwards = {
        (broker, neighbor)
        for broker, decision in decisions.items()
        for neighbor, _message in decision.sends
    }
    deliveries = {
        broker: sorted(decision.deliveries)
        for broker, decision in decisions.items()
        if decision.deliveries
    }
    return forwards, deliveries


def draw_placements(data, topology, subscription_data):
    subscribers = topology.subscribers()
    return [
        (data.draw(st.sampled_from(subscribers)), specs)
        for specs in subscription_data
    ]


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
class TestDigestBitIdentity:
    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=0, max_size=8),
        event=events,
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_digest_routing_equals_rematching(
        self, config, topology, subscription_data, event, data
    ):
        subscriptions = make_subscriptions(
            draw_placements(data, topology, subscription_data)
        )
        digest_on = build_protocol(topology, subscriptions, config, use_digests=True)
        digest_off = build_protocol(topology, subscriptions, config, use_digests=False)
        root = topology.broker_of(topology.publishers()[0])
        on = drive(digest_on, root, event)
        off = drive(digest_off, root, event)
        assert summarize(on) == summarize(off)
        # Every forward leaving the origin carries the minted digest, and it
        # survives to every downstream hop (no silent fallbacks here).
        for decision in on.values():
            for _neighbor, message in decision.sends:
                assert message.digest is not None

    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=0, max_size=6),
        event=events,
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_router_masks_bit_identical(
        self, config, topology, subscription_data, event, data
    ):
        """route_with_digest's mask equals route's, bit for bit, at every
        broker — and consumes zero matching steps beyond the projection ORs
        (strictly no more than a full rematch)."""
        subscriptions = make_subscriptions(
            draw_placements(data, topology, subscription_data)
        )
        protocol = build_protocol(topology, subscriptions, config, use_digests=True)
        root = topology.broker_of(topology.publishers()[0])
        _decision, digest = protocol.routers[root].route_digest(event, root)
        assert digest is not None
        for broker, router in protocol.routers.items():
            rematch = router.route(event, root)
            converted = router.route_with_digest(event, root, digest)
            assert converted.mask == rematch.mask
            assert converted.forward_to == rematch.forward_to
            assert converted.deliver_to == rematch.deliver_to
            assert converted.steps <= max(rematch.steps, len(digest.ids))

    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=0, max_size=6),
        churn_spec=predicate_specs,
        event=events,
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_churn_forces_epoch_fallback_without_changing_deliveries(
        self, config, topology, subscription_data, churn_spec, event, data
    ):
        """A subscription added while the event is in flight invalidates the
        minted digest (epoch moved on) — downstream brokers fall back to a
        full rematch against the *new* set, exactly like digest-off routing
        after the same churn."""
        subscribers = topology.subscribers()
        placements = draw_placements(data, topology, subscription_data)
        churn_client = data.draw(st.sampled_from(subscribers))
        subscriptions = make_subscriptions(placements)
        digest_on = build_protocol(topology, subscriptions, config, use_digests=True)
        digest_off = build_protocol(
            topology, make_subscriptions(placements), config, use_digests=False
        )
        root = topology.broker_of(topology.publishers()[0])

        def churn(protocol):
            def apply():
                [subscription] = make_subscriptions([(churn_client, churn_spec)])
                protocol.add_subscription(subscription)

            return apply

        on = drive(digest_on, root, event, mutate_after_first=churn(digest_on))
        off = drive(digest_off, root, event, mutate_after_first=churn(digest_off))
        assert summarize(on) == summarize(off)
        # The churn happened after the origin decided, so any forward it
        # emitted carries a digest stamped with the pre-churn epoch.  Every
        # downstream consumer must have rejected that stale digest — its own
        # forwards either carry none (the fallback strips it) or carry a
        # *fresh* re-minted one stamped with the post-churn epoch.
        stale_epochs = {
            message.digest.epoch
            for _neighbor, message in on[root].sends
            if message.digest is not None
        }
        for broker, decision in on.items():
            if broker == root:
                continue
            for _neighbor, message in decision.sends:
                if message.digest is not None:
                    assert message.digest.epoch not in stale_epochs

    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=1, max_size=6),
        event=events,
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_diverged_broker_falls_back_to_its_own_set(
        self, config, topology, subscription_data, event, data
    ):
        """A broker whose replicated set silently diverged (here: one
        subscription removed behind the protocol's back) rejects the digest
        on the checksum even though the epoch counter still matches, and
        routes with its own set."""
        subscriptions = make_subscriptions(
            draw_placements(data, topology, subscription_data)
        )
        protocol = build_protocol(topology, subscriptions, config, use_digests=True)
        brokers = sorted(protocol.routers)
        if len(brokers) < 2:
            return
        root = topology.broker_of(topology.publishers()[0])
        diverged = data.draw(st.sampled_from([b for b in brokers if b != root]))
        router = protocol.routers[diverged]
        victim = data.draw(st.sampled_from(subscriptions))
        router.remove_subscription(victim.subscription_id)
        # The hidden removal bumped only the diverged router's counter;
        # re-align every other router up to it so *only the checksum* can
        # catch the divergence — the counters agree, the sets do not.
        for other in protocol.routers.values():
            other.sync_epoch(router.subscription_epoch)
        _decision, digest = protocol.routers[root].route_digest(event, root)
        assert digest is not None
        with pytest.raises(RoutingError):
            router.route_with_digest(event, root, digest)
        consumed = protocol.handle(
            diverged, SimMessage(event, root, digest=digest)
        )
        rematch = protocol.routers[diverged].route(event, root)
        assert sorted(consumed.deliveries) == sorted(rematch.deliver_to)
        assert {n for n, _m in consumed.sends} == set(rematch.forward_to)
        for _neighbor, message in consumed.sends:
            assert message.digest is None  # fallback strips the digest

    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=0, max_size=6),
        event=events,
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_stale_flood_window_keeps_digest_riding(
        self, config, topology, subscription_data, event, data
    ):
        """A stale broker floods (no matching beyond local delivery) but the
        in-flight digest rides along, so post-window brokers still consume
        it; deliveries match digest-off routing through the same window."""
        placements = draw_placements(data, topology, subscription_data)
        subscriptions = make_subscriptions(placements)
        digest_on = build_protocol(topology, subscriptions, config, use_digests=True)
        digest_off = build_protocol(
            topology, make_subscriptions(placements), config, use_digests=False
        )
        root = topology.broker_of(topology.publishers()[0])
        stale = data.draw(st.sampled_from(sorted(digest_on.routers)))
        digest_on.set_stale(stale, True)
        digest_off.set_stale(stale, True)
        on = drive(digest_on, root, event)
        off = drive(digest_off, root, event)
        delivered_on = {c for d in on.values() for c in d.deliveries}
        delivered_off = {c for d in off.values() for c in d.deliveries}
        assert delivered_on == delivered_off
        flood = on.get(stale)
        if flood is not None and root != stale:
            for _neighbor, message in flood.sends:
                assert message.digest is not None  # rides through the flood

    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=1, max_size=6),
        event=events,
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_replay_messages_always_rematch(
        self, config, topology, subscription_data, event, data
    ):
        """A fault replay routes against its restricted mask and never
        trusts (or propagates) a digest."""
        subscriptions = make_subscriptions(
            draw_placements(data, topology, subscription_data)
        )
        protocol = build_protocol(topology, subscriptions, config, use_digests=True)
        root = topology.broker_of(topology.publishers()[0])
        _decision, digest = protocol.routers[root].route_digest(event, root)
        restriction = frozenset(s.subscriber for s in subscriptions)
        message = SimMessage(event, root, replay_for=restriction, digest=digest)
        replayed = protocol.handle(root, message)
        restricted = protocol.routers[root].route(event, root, restrict_to=restriction)
        assert sorted(replayed.deliveries) == sorted(restricted.deliver_to)
        for _neighbor, forward in replayed.sends:
            assert forward.digest is None
            assert forward.replay_for == restriction


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
class TestHandleBatchEquivalence:
    @given(
        topology=topologies(),
        subscription_data=st.lists(predicate_specs, min_size=0, max_size=6),
        batch=st.lists(events, min_size=1, max_size=6),
        stale=st.booleans(),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_handle_batch_equals_per_message_handle(
        self, config, topology, subscription_data, batch, stale, data
    ):
        """``handle_batch`` decision ``i`` equals ``handle(messages[i])`` —
        including the grouped stale-broker flood path and mixed
        digest-bearing / digest-less / replay batches."""
        subscriptions = make_subscriptions(
            draw_placements(data, topology, subscription_data)
        )
        batched = build_protocol(topology, subscriptions, config, use_digests=True)
        single = build_protocol(topology, subscriptions, config, use_digests=True)
        root = topology.broker_of(topology.publishers()[0])
        broker = data.draw(st.sampled_from(sorted(batched.routers)))
        if stale:
            batched.set_stale(broker, True)
            single.set_stale(broker, True)
        messages = []
        for event in batch:
            kind = data.draw(st.sampled_from(["plain", "digest", "replay"]))
            if kind == "digest":
                _d, digest = batched.routers[root].route_digest(event, root)
                messages.append(SimMessage(event, root, digest=digest))
            elif kind == "replay":
                replay = frozenset(s.subscriber for s in subscriptions[:1])
                messages.append(SimMessage(event, root, replay_for=replay or None))
            else:
                messages.append(SimMessage(event, root))
        from_batch = batched.handle_batch(broker, messages)
        one_by_one = [single.handle(broker, message) for message in messages]
        assert len(from_batch) == len(one_by_one)
        for got, want in zip(from_batch, one_by_one):
            assert sorted(got.deliveries) == sorted(want.deliveries)
            assert {n for n, _m in got.sends} == {n for n, _m in want.sends}
            assert got.matching_steps == want.matching_steps
            got_digests = {n: m.digest for n, m in got.sends}
            want_digests = {n: m.digest for n, m in want.sends}
            assert got_digests == want_digests
