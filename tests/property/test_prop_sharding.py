"""Sharding equivalence: any partition, one answer.

:class:`~repro.matching.sharding.ShardedEngine` must be indistinguishable
from the monolithic :class:`~repro.matching.engines.CompiledEngine` for
every subscription set, partition policy, shard count, event, and
initialization mask:

* the same match set (compared as sets — shards interleave),
* the same refined link mask, and
* a step count equal to the **sum** over per-shard reference compiled
  engines (each shard walks its own root, so the sum differs from the
  monolithic count by design; the sum itself must be exact).

Step equivalence is pinned with caching disabled (``match_cache_capacity=0``)
and ``early_exit=False``: cached hits replay recorded step counts and early
exit skips shards, so both are knobs the result contract allows to change
*steps* but never results or masks.  A seeded churn test drives inserts,
removes, and forced rebalances through both engines with caches *enabled*
to exercise the surgical cache repair.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import M, N, TritVector, Y
from repro.matching import Event, Predicate, RangeOp, Subscription, uniform_schema
from repro.matching.engines import CompiledEngine, create_engine
from repro.matching.predicates import EqualityTest, RangeTest
from repro.matching.sharding import SHARD_POLICIES, ShardedEngine

SCHEMA = uniform_schema(4)
DOMAIN = [0, 1, 2]
DOMAINS = {name: DOMAIN for name in SCHEMA.names}
NUM_LINKS = 5

test_specs = st.one_of(
    st.none(),
    st.sampled_from(DOMAIN),
    st.tuples(
        st.sampled_from([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
        st.sampled_from(DOMAIN),
    ),
)
predicate_specs = st.tuples(*(test_specs for _ in range(4)))
subscription_lists = st.lists(predicate_specs, min_size=0, max_size=20)
events = st.tuples(*(st.sampled_from(DOMAIN) for _ in range(4)))
masks = st.lists(st.sampled_from([Y, M, N]), min_size=NUM_LINKS, max_size=NUM_LINKS).map(
    TritVector
)
policies = st.sampled_from(SHARD_POLICIES)
shard_counts = st.integers(min_value=1, max_value=4)


def make_subscriptions(specs):
    subscriptions = []
    for index, spec in enumerate(specs):
        tests = {}
        for name, part in zip(SCHEMA.names, spec):
            if part is None:
                continue
            if isinstance(part, tuple):
                tests[name] = RangeTest(part[0], part[1])
            else:
                tests[name] = EqualityTest(part)
        subscriptions.append(
            Subscription(Predicate(SCHEMA, tests), f"s{index % NUM_LINKS}")
        )
    return subscriptions


def link_of(subscription):
    return int(subscription.subscriber[1:])


def clone(subscription):
    return Subscription(
        subscription.predicate,
        subscription.subscriber,
        subscription_id=subscription.subscription_id,
    )


def build_pair(subscriptions, *, num_shards, policy, capacity=0, early_exit=False):
    """(monolithic reference, sharded) over the same subscription set."""
    mono = CompiledEngine(SCHEMA, domains=DOMAINS, match_cache_capacity=capacity)
    sharded = ShardedEngine(
        SCHEMA,
        domains=DOMAINS,
        num_shards=num_shards,
        policy=policy,
        match_cache_capacity=capacity,
        early_exit=early_exit,
    )
    for subscription in subscriptions:
        mono.insert(subscription)
        sharded.insert(clone(subscription))
    return mono, sharded


def shard_references(sharded, *, capacity=0):
    """A dedicated compiled engine per shard, for the step-sum contract."""
    references = []
    for shard in sharded.shards:
        reference = CompiledEngine(
            SCHEMA, domains=DOMAINS, match_cache_capacity=capacity
        )
        for subscription in shard.subscriptions:
            reference.insert(clone(subscription))
        references.append(reference)
    return references


def assert_same_matches(mono, sharded, event):
    mono_ids = {s.subscription_id for s in mono.match(event).subscriptions}
    sharded_ids = {s.subscription_id for s in sharded.match(event).subscriptions}
    assert mono_ids == sharded_ids


class TestPartitionEquivalence:
    @given(
        specs=subscription_lists,
        event_values=events,
        num_shards=shard_counts,
        policy=policies,
    )
    @settings(max_examples=150)
    def test_match_set_and_step_sum(self, specs, event_values, num_shards, policy):
        mono, sharded = build_pair(
            make_subscriptions(specs), num_shards=num_shards, policy=policy
        )
        event = Event.from_tuple(SCHEMA, event_values)
        assert_same_matches(mono, sharded, event)
        references = shard_references(sharded)
        assert sharded.match(event).steps == sum(
            reference.match(event).steps for reference in references
        )

    @given(
        specs=subscription_lists,
        event_values=events,
        mask=masks,
        num_shards=shard_counts,
        policy=policies,
    )
    @settings(max_examples=150)
    def test_link_mask_and_step_sum(
        self, specs, event_values, mask, num_shards, policy
    ):
        mono, sharded = build_pair(
            make_subscriptions(specs), num_shards=num_shards, policy=policy
        )
        mono.bind_links(NUM_LINKS, link_of)
        sharded.bind_links(NUM_LINKS, link_of)
        event = Event.from_tuple(SCHEMA, event_values)
        assert sharded.match_links(event, mask).mask == mono.match_links(event, mask).mask
        references = shard_references(sharded)
        for reference in references:
            reference.bind_links(NUM_LINKS, link_of)
        assert sharded.match_links(event, mask).steps == sum(
            reference.match_links(event, mask).steps for reference in references
        )

    @given(
        specs=subscription_lists,
        event_values=events,
        mask=masks,
        num_shards=shard_counts,
        policy=policies,
    )
    @settings(max_examples=100)
    def test_early_exit_and_caches_never_change_results(
        self, specs, event_values, mask, num_shards, policy
    ):
        """Early exit and the shard-local caches may only change steps."""
        mono, sharded = build_pair(
            make_subscriptions(specs),
            num_shards=num_shards,
            policy=policy,
            capacity=64,
            early_exit=True,
        )
        mono.bind_links(NUM_LINKS, link_of)
        sharded.bind_links(NUM_LINKS, link_of)
        event = Event.from_tuple(SCHEMA, event_values)
        for _ in range(2):  # second pass hits the shard-local caches
            assert_same_matches(mono, sharded, event)
            assert (
                sharded.match_links(event, mask).mask
                == mono.match_links(event, mask).mask
            )

    @given(specs=subscription_lists, event_values=events, num_shards=shard_counts)
    @settings(max_examples=60)
    def test_batch_matches_single(self, specs, event_values, num_shards):
        _, sharded = build_pair(
            make_subscriptions(specs), num_shards=num_shards, policy="hash"
        )
        event = Event.from_tuple(SCHEMA, event_values)
        batch = sharded.match_batch([event, event])
        single = sharded.match(event)
        for result in batch:
            assert {s.subscription_id for s in result.subscriptions} == {
                s.subscription_id for s in single.subscriptions
            }


class TestChurnEquivalence:
    def test_churn_and_rebalance_stay_equivalent(self):
        """Seeded insert/remove churn with caches enabled: surgical cache
        repair and per-shard patching must keep every answer exact, before
        and after forced rebalance passes."""
        rng = random.Random(20260807)
        mono = CompiledEngine(SCHEMA, domains=DOMAINS)
        sharded = create_engine(
            "sharded", SCHEMA, domains=DOMAINS, shards=3, shard_policy="hash"
        )
        mono.bind_links(NUM_LINKS, link_of)
        sharded.bind_links(NUM_LINKS, link_of)
        live = {}

        def random_subscription():
            tests = {}
            for name in SCHEMA.names:
                roll = rng.random()
                if roll < 0.4:
                    continue
                if roll < 0.8:
                    tests[name] = EqualityTest(rng.choice(DOMAIN))
                else:
                    tests[name] = RangeTest(
                        rng.choice([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]),
                        rng.choice(DOMAIN),
                    )
            return Subscription(Predicate(SCHEMA, tests), f"s{rng.randrange(NUM_LINKS)}")

        for round_index in range(150):
            if live and rng.random() < 0.4:
                subscription_id = rng.choice(sorted(live))
                del live[subscription_id]
                mono.remove(subscription_id)
                sharded.remove(subscription_id)
            else:
                subscription = random_subscription()
                live[subscription.subscription_id] = subscription
                mono.insert(subscription)
                sharded.insert(clone(subscription))
            if round_index % 37 == 36:
                sharded.rebalance(force=True)
            event = Event.from_tuple(
                SCHEMA, tuple(rng.choice(DOMAIN) for _ in SCHEMA.names)
            )
            assert_same_matches(mono, sharded, event)
            mask = TritVector(rng.choice([Y, M, N]) for _ in range(NUM_LINKS))
            assert (
                sharded.match_links(event, mask).mask
                == mono.match_links(event, mask).mask
            )
        assert sharded.subscription_count == len(live)
        assert len(sharded.subscriptions) == len(live)
