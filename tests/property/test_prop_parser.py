"""Property-based tests of the subscription expression parser."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.matching import (
    EqualityTest,
    Event,
    Predicate,
    RangeOp,
    RangeTest,
    parse_predicate,
    uniform_schema,
)
from repro.matching.schema import EventSchema


SCHEMA = EventSchema([("name", "string"), ("price", "float"), ("qty", "integer")])

safe_strings = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30
)
numbers = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


@st.composite
def predicates(draw):
    """A random predicate over SCHEMA built from test objects directly."""
    tests = {}
    if draw(st.booleans()):
        tests["name"] = EqualityTest(draw(safe_strings))
    if draw(st.booleans()):
        op = draw(st.sampled_from(list(RangeOp)))
        tests["price"] = RangeTest(op, draw(numbers))
    if draw(st.booleans()):
        tests["qty"] = EqualityTest(draw(st.integers(-1000, 1000)))
    return Predicate(SCHEMA, tests)


class TestDescribeParseRoundtrip:
    @given(predicate=predicates())
    @settings(max_examples=300)
    def test_roundtrip(self, predicate):
        assert parse_predicate(SCHEMA, predicate.describe()) == predicate

    @given(predicate=predicates(), data=st.data())
    @settings(max_examples=100)
    def test_roundtrip_preserves_semantics(self, predicate, data):
        reparsed = parse_predicate(SCHEMA, predicate.describe())
        event = Event(
            SCHEMA,
            {
                "name": data.draw(safe_strings),
                "price": data.draw(
                    st.floats(allow_nan=False, allow_infinity=False, width=32)
                ),
                "qty": data.draw(st.integers(-1000, 1000)),
            },
        )
        assert reparsed.matches(event) == predicate.matches(event)


class TestRobustness:
    @given(junk=st.text(max_size=40))
    @settings(max_examples=300)
    def test_parser_never_crashes(self, junk):
        """Arbitrary input either parses or raises ParseError — nothing else."""
        try:
            parse_predicate(SCHEMA, junk)
        except ParseError:
            pass

    @given(value=st.integers(min_value=0, max_value=10**12))
    def test_integer_literals_exact(self, value):
        predicate = parse_predicate(uniform_schema(1), f"a1={value}")
        test = predicate.test_for("a1")
        assert isinstance(test, EqualityTest) and test.value == value
