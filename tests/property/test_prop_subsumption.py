"""Property-based tests of predicate subsumption soundness.

``predicate_subsumes(p, q) == True`` must imply that p matches every event q
matches, over randomly built conjunctions of equalities, ranges and
intervals.  The converse (completeness) holds for everything except
exclusion-list corner cases, so it is asserted only for the
exclusion-free sublanguage.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.matching import (
    DONT_CARE,
    EqualityTest,
    Event,
    IntervalTest,
    Predicate,
    RangeOp,
    RangeTest,
    predicate_subsumes,
    uniform_schema,
)

SCHEMA = uniform_schema(2)
#: Value space deliberately wider than the bounds we generate, so open
#: intervals have values beyond every bound.
SPACE = [
    Event.from_tuple(SCHEMA, values)
    for values in itertools.product(range(-2, 7), repeat=2)
]

bounds = st.integers(min_value=0, max_value=4)

simple_tests = st.one_of(
    st.just(DONT_CARE),
    bounds.map(EqualityTest),
    st.tuples(st.sampled_from(list(RangeOp)), bounds).map(
        lambda pair: RangeTest(*pair)
    ),
    st.tuples(bounds, bounds, st.booleans(), st.booleans()).map(
        lambda t: IntervalTest(min(t[0], t[1]), max(t[0], t[1]), low_closed=t[2], high_closed=t[3])
    ),
)

exclusion_free_tests = st.one_of(
    st.just(DONT_CARE),
    bounds.map(EqualityTest),
    st.tuples(
        st.sampled_from([RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE]), bounds
    ).map(lambda pair: RangeTest(*pair)),
)


def build_predicate(tests):
    return Predicate(SCHEMA, dict(zip(SCHEMA.names, tests)))


class TestSoundness:
    @given(
        p_tests=st.tuples(simple_tests, simple_tests),
        q_tests=st.tuples(simple_tests, simple_tests),
    )
    @settings(max_examples=400)
    def test_claimed_subsumption_is_true(self, p_tests, q_tests):
        p = build_predicate(p_tests)
        q = build_predicate(q_tests)
        if predicate_subsumes(p, q):
            for event in SPACE:
                if q.matches(event):
                    assert p.matches(event), (p.describe(), q.describe(), event)

    @given(
        p_tests=st.tuples(exclusion_free_tests, exclusion_free_tests),
        q_tests=st.tuples(exclusion_free_tests, exclusion_free_tests),
    )
    @settings(max_examples=300)
    def test_complete_on_exclusion_free_sublanguage(self, p_tests, q_tests):
        """For don't-care/equality/one-sided ranges over an integer-sampled
        space, a factual containment must be detected — unless it hinges on
        values outside the sampled space (open bounds), which integer
        sampling below/above every generated bound rules out here."""
        p = build_predicate(p_tests)
        q = build_predicate(q_tests)
        truth = all(p.matches(e) for e in SPACE if q.matches(e))
        q_nonempty = any(q.matches(e) for e in SPACE)
        if truth and q_nonempty:
            assert predicate_subsumes(p, q), (p.describe(), q.describe())

    @given(tests=st.tuples(simple_tests, simple_tests))
    @settings(max_examples=200)
    def test_reflexive(self, tests):
        p = build_predicate(tests)
        assert predicate_subsumes(p, p)

    @given(
        p_tests=st.tuples(simple_tests, simple_tests),
        q_tests=st.tuples(simple_tests, simple_tests),
        r_tests=st.tuples(simple_tests, simple_tests),
    )
    @settings(max_examples=200)
    def test_transitive(self, p_tests, q_tests, r_tests):
        p, q, r = (build_predicate(t) for t in (p_tests, q_tests, r_tests))
        if predicate_subsumes(p, q) and predicate_subsumes(q, r):
            assert predicate_subsumes(p, r)
