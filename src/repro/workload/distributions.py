"""Random distributions used by the paper's workload generators.

Subscriptions and events draw attribute values from a Zipf distribution;
event arrivals are Poisson (handled by the simulator's publisher processes).
:class:`ZipfSampler` is a small, seedable, exact sampler over a finite value
set — no numpy dependency, so the core library stays pure-Python.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, TypeVar

from repro.errors import SimulationError

T = TypeVar("T")


class ZipfSampler:
    """Samples from ``values`` with Zipf weights ``1 / rank**exponent``.

    The first element of ``values`` is the most popular (rank 1).  Sampling
    is inverse-CDF over the precomputed cumulative weights: O(log n).
    """

    def __init__(self, values: Sequence[T], exponent: float = 1.0) -> None:
        if not values:
            raise SimulationError("cannot sample from an empty value set")
        if exponent < 0:
            raise SimulationError("zipf exponent must be >= 0")
        self.values: List[T] = list(values)
        self.exponent = exponent
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, len(self.values) + 1):
            total += 1.0 / rank**exponent
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def probability_of_rank(self, rank: int) -> float:
        """The probability of the value at 1-based ``rank``."""
        if not 1 <= rank <= len(self.values):
            raise SimulationError(f"rank {rank} out of range")
        return (1.0 / rank**self.exponent) / self._total

    @property
    def collision_probability(self) -> float:
        """Probability two independent draws agree — the per-attribute match
        probability when subscription and event values share a ranking."""
        return sum(
            self.probability_of_rank(r) ** 2 for r in range(1, len(self.values) + 1)
        )

    def sample(self, rng: random.Random) -> T:
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        if index >= len(self.values):  # guard against floating-point edge
            index = len(self.values) - 1
        return self.values[index]

    def __repr__(self) -> str:
        return f"ZipfSampler({len(self.values)} values, s={self.exponent})"


def rotated(values: Sequence[T], shift: int) -> List[T]:
    """Rotate a ranking — the locality mechanism: each region ranks the same
    values differently, so same-region subscribers share interests while
    cross-region interests diverge."""
    if not values:
        return []
    shift %= len(values)
    return list(values[shift:]) + list(values[:shift])
