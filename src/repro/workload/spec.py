"""Workload specification — the simulation control parameters of Section 4.1.

"The broker network simulates an information space with several control
parameters, such as the number of attributes in the event schema, the number
of values per attribute and the number of factoring levels. [...] one of the
control parameters is the probability that each attribute is a * [...].  For
non-* attributes, the values are generated according to a zipf distribution."

Both published simulation runs use a geometric non-``*`` schedule: the first
attribute is constrained with probability 0.98, decaying by a fixed factor
(0.85 for Chart 1, 0.82 for Chart 2) toward the last attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SimulationError
from repro.matching.schema import EventSchema, uniform_schema


@dataclass(frozen=True)
class WorkloadSpec:
    """Control parameters for subscription/event generation."""

    num_attributes: int = 10
    values_per_attribute: int = 5
    factoring_levels: int = 2
    first_non_star_probability: float = 0.98
    non_star_decay: float = 0.85
    zipf_exponent: float = 1.0
    #: Number of locality regions (Figure 6 has three intercontinental
    #: subtrees); 1 disables locality.
    locality_regions: int = 3
    #: Probability that a constrained attribute uses a range test
    #: (``<``/``<=``/``>``/``>=`` against a sampled bound) instead of an
    #: equality — the paper's "range tests are also possible" case.
    range_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.num_attributes < 1:
            raise SimulationError("num_attributes must be >= 1")
        if self.values_per_attribute < 1:
            raise SimulationError("values_per_attribute must be >= 1")
        if not 0 <= self.factoring_levels < self.num_attributes:
            raise SimulationError(
                "factoring_levels must be in [0, num_attributes)"
            )
        if not 0.0 <= self.first_non_star_probability <= 1.0:
            raise SimulationError("first_non_star_probability must be in [0, 1]")
        if not 0.0 < self.non_star_decay <= 1.0:
            raise SimulationError("non_star_decay must be in (0, 1]")
        if self.locality_regions < 1:
            raise SimulationError("locality_regions must be >= 1")
        if not 0.0 <= self.range_probability <= 1.0:
            raise SimulationError("range_probability must be in [0, 1]")

    def schema(self) -> EventSchema:
        """The synthetic ``a1..aN`` integer schema."""
        return uniform_schema(self.num_attributes)

    @property
    def attribute_names(self) -> List[str]:
        return [f"a{i + 1}" for i in range(self.num_attributes)]

    @property
    def values(self) -> List[int]:
        """The global value ranking, most popular first."""
        return list(range(self.values_per_attribute))

    def domains(self) -> dict:
        """Finite attribute domains, as the PST/annotations want them."""
        return {name: self.values for name in self.attribute_names}

    @property
    def factoring_attributes(self) -> List[str]:
        """The index attributes ("factoring levels") — the first ones, which
        the non-``*`` schedule makes the most selective."""
        return self.attribute_names[: self.factoring_levels]

    def non_star_probability(self, attribute_index: int) -> float:
        """Probability that attribute ``attribute_index`` (0-based) is
        constrained in a random subscription."""
        if not 0 <= attribute_index < self.num_attributes:
            raise SimulationError(f"attribute index {attribute_index} out of range")
        return self.first_non_star_probability * self.non_star_decay**attribute_index

    def expected_non_star_count(self) -> float:
        return sum(self.non_star_probability(i) for i in range(self.num_attributes))


#: Chart 1 parameters: "10 attributes (with 2 attributes used for factoring),
#: and each attribute has 5 values [...] first attribute is non-* with
#: probability 0.98, and this probability decreases at the rate of 85%".
CHART1_SPEC = WorkloadSpec(
    num_attributes=10,
    values_per_attribute=5,
    factoring_levels=2,
    first_non_star_probability=0.98,
    non_star_decay=0.85,
)

#: Chart 2 parameters: "10 attributes (with 3 attributes used for factoring),
#: and each attribute has 3 values [...] decreases at the rate of 82%".
CHART2_SPEC = WorkloadSpec(
    num_attributes=10,
    values_per_attribute=3,
    factoring_levels=3,
    first_non_star_probability=0.98,
    non_star_decay=0.82,
)
