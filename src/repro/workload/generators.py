"""Random subscription and event generators (Section 4.1).

*Subscriptions* constrain each attribute with the spec's geometric non-``*``
probability; constrained values are drawn from a Zipf distribution.
Locality of interest is modeled as in the paper: "subscribers within each
subtree of the broker topology have similar distributions of interested
values whereas subscriptions across from the other two subtrees have
different distributions" — each region uses a rotated copy of the global
value ranking, so region peers share hot values and regions disagree.

*Events* draw every attribute from a Zipf distribution; by default from the
publisher's regional ranking (events about locally hot values), with a knob
to use the global ranking instead.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.matching.events import Event
from repro.matching.predicates import EqualityTest, Predicate, Subscription
from repro.workload.distributions import ZipfSampler, rotated
from repro.workload.spec import WorkloadSpec

#: Maps a client name to its locality region index.
RegionOf = Callable[[str], int]


def figure6_region_of(client: str) -> int:
    """Region extractor for the Figure 6 naming scheme: the intercontinental
    subtree index (``S.T2.L01.03`` → region 2, ``P1`` on tree 0's broker → 0).

    Falls back to region 0 for names without a ``T<digit>`` component.
    """
    for part in client.split("."):
        if len(part) >= 2 and part[0] == "T" and part[1].isdigit():
            return int(part[1])
    return 0


class SubscriptionGenerator:
    """Generates random subscriptions per the workload spec."""

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        seed: int = 0,
        region_of: Optional[RegionOf] = None,
        duplicate_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= duplicate_rate < 1.0:
            raise SimulationError(
                f"duplicate_rate must be in [0, 1), got {duplicate_rate}"
            )
        self.spec = spec
        self.schema = spec.schema()
        self.rng = random.Random(seed)
        self._region_of = region_of if region_of is not None else (lambda _client: 0)
        self._samplers: Dict[int, ZipfSampler] = {}
        #: With probability ``duplicate_rate`` a predicate is re-drawn from
        #: the previously generated pool instead of sampled fresh — models
        #: many subscribers registering the *same* popular predicate body
        #: (the regime subscription aggregation compresses).
        self.duplicate_rate = duplicate_rate
        self._predicate_pool: List[Predicate] = []

    def _sampler_for_region(self, region: int) -> ZipfSampler:
        region %= max(1, self.spec.locality_regions)
        sampler = self._samplers.get(region)
        if sampler is None:
            shift = (region * self.spec.values_per_attribute) // max(
                1, self.spec.locality_regions
            )
            sampler = ZipfSampler(
                rotated(self.spec.values, shift), self.spec.zipf_exponent
            )
            self._samplers[region] = sampler
        return sampler

    def predicate_for(self, subscriber: str) -> Predicate:
        """One random predicate using the subscriber's regional ranking.

        Constrained attributes get equality tests, or — with the spec's
        ``range_probability`` — a one-sided range test against a sampled
        bound (half-open in a uniformly chosen direction).  With the
        generator's ``duplicate_rate``, a previously generated predicate is
        reused instead (Zipf-weighted toward early, popular bodies).
        """
        from repro.matching.predicates import RangeOp, RangeTest

        if self._predicate_pool and self.rng.random() < self.duplicate_rate:
            # Favor early pool entries ~1/rank: popular bodies accumulate
            # registrations the way hot content accumulates subscribers.
            pool_size = len(self._predicate_pool)
            rank = min(int(pool_size ** self.rng.random()), pool_size - 1)
            return self._predicate_pool[rank]
        sampler = self._sampler_for_region(self._region_of(subscriber))
        tests = {}
        for index, name in enumerate(self.spec.attribute_names):
            if self.rng.random() >= self.spec.non_star_probability(index):
                continue
            if self.rng.random() < self.spec.range_probability:
                op = self.rng.choice(
                    (RangeOp.LT, RangeOp.LE, RangeOp.GT, RangeOp.GE)
                )
                tests[name] = RangeTest(op, sampler.sample(self.rng))
            else:
                tests[name] = EqualityTest(sampler.sample(self.rng))
        predicate = Predicate(self.schema, tests)
        if self.duplicate_rate > 0.0:
            self._predicate_pool.append(predicate)
        return predicate

    def subscription_for(self, subscriber: str) -> Subscription:
        return Subscription(self.predicate_for(subscriber), subscriber)

    def subscriptions_for(
        self, subscribers: Sequence[str], total: int
    ) -> List[Subscription]:
        """``total`` subscriptions spread round-robin over ``subscribers``
        (the paper's clients hold "potentially multiple subscriptions")."""
        if not subscribers:
            raise SimulationError("no subscribers to generate subscriptions for")
        return [
            self.subscription_for(subscribers[i % len(subscribers)])
            for i in range(total)
        ]


class EventGenerator:
    """Generates random events per the workload spec."""

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        seed: int = 0,
        region_of: Optional[RegionOf] = None,
        regional_events: bool = True,
    ) -> None:
        self.spec = spec
        self.schema = spec.schema()
        self.rng = random.Random(seed)
        self._region_of = region_of if region_of is not None else (lambda _client: 0)
        self.regional_events = regional_events
        self._samplers: Dict[int, ZipfSampler] = {}

    def _sampler_for(self, publisher: Optional[str]) -> ZipfSampler:
        region = (
            self._region_of(publisher)
            if (self.regional_events and publisher is not None)
            else 0
        )
        region %= max(1, self.spec.locality_regions)
        sampler = self._samplers.get(region)
        if sampler is None:
            shift = (region * self.spec.values_per_attribute) // max(
                1, self.spec.locality_regions
            )
            sampler = ZipfSampler(
                rotated(self.spec.values, shift), self.spec.zipf_exponent
            )
            self._samplers[region] = sampler
        return sampler

    def event_for(
        self, publisher: Optional[str] = None, rng: Optional[random.Random] = None
    ) -> Event:
        """One random event; ``rng`` overrides the generator's stream (the
        simulator gives each publisher process its own)."""
        rng = rng if rng is not None else self.rng
        sampler = self._sampler_for(publisher)
        values = {
            name: sampler.sample(rng) for name in self.spec.attribute_names
        }
        return Event(self.schema, values, publisher=publisher)

    def factory_for(self, publisher: str) -> Callable[[random.Random], Event]:
        """An :data:`~repro.sim.clients.EventFactory` bound to ``publisher``."""
        return lambda rng: self.event_for(publisher, rng)


def measure_selectivity(
    subscriptions: Sequence[Subscription],
    events: Sequence[Event],
) -> float:
    """Average fraction of subscriptions matched per event (the paper quotes
    ~0.1% for Chart 1's parameters and ~1.3% for Chart 2's)."""
    if not subscriptions or not events:
        return 0.0
    matched = sum(
        1
        for event in events
        for subscription in subscriptions
        if subscription.predicate.matches(event)
    )
    return matched / (len(subscriptions) * len(events))
