"""Stress-scenario workload shapes layered on the Zipf machinery.

Two churn patterns that the failure suite exercises alongside topology
faults:

*Flash crowd* — a sudden burst of publications concentrated on a tiny hot
slice of the value space (breaking news: everyone publishes about the same
thing).  Modeled as an :class:`~repro.workload.generators.EventGenerator`
whose sampler uses a much steeper Zipf exponent, so nearly all probability
mass sits on the top-ranked values, paired with a start offset so the crowd
arrives mid-run on top of the background load.

*Thundering herd* — a wave of near-identical subscriptions arriving at once
(everyone subscribes to the hot topic after the news breaks).  Modeled as a
batch of subscriptions whose constrained attributes are drawn with a steep
exponent from one regional ranking, all scheduled for the same instant via
:meth:`NetworkSimulation.add_subscription_at`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.matching.events import Event
from repro.matching.predicates import Subscription
from repro.workload.generators import EventGenerator, RegionOf, SubscriptionGenerator
from repro.workload.spec import WorkloadSpec


def _steepened(spec: WorkloadSpec, exponent: float) -> WorkloadSpec:
    """The same control parameters with a hotter Zipf exponent."""
    if exponent <= spec.zipf_exponent:
        raise SimulationError(
            "a crowd/herd exponent must exceed the background exponent"
        )
    from dataclasses import replace

    return replace(spec, zipf_exponent=exponent)


@dataclass(frozen=True)
class FlashCrowd:
    """A burst of hot-topic publications arriving mid-run.

    ``start_after_s`` is where the crowd begins; feed it (with the factory
    and a rate) to :meth:`NetworkSimulation.add_poisson_publisher`'s
    ``start_after_s`` parameter.  ``rate_multiplier`` scales the background
    publication rate for the crowd's publisher process.
    """

    spec: WorkloadSpec
    start_after_s: float = 1.0
    rate_multiplier: float = 4.0
    num_events: int = 100
    #: Zipf exponent for the crowd's value draws; >= ~3 concentrates almost
    #: all mass on the top-ranked value of each attribute.
    hot_exponent: float = 3.0

    def __post_init__(self) -> None:
        if self.start_after_s < 0:
            raise SimulationError("start_after_s must be >= 0")
        if self.rate_multiplier <= 0:
            raise SimulationError("rate_multiplier must be > 0")
        if self.num_events < 1:
            raise SimulationError("num_events must be >= 1")

    def event_factory(
        self,
        publisher: str,
        *,
        seed: int = 0,
        region_of: Optional[RegionOf] = None,
    ) -> Callable[[random.Random], Event]:
        """An event factory whose draws concentrate on the hot values."""
        generator = EventGenerator(
            _steepened(self.spec, self.hot_exponent),
            seed=seed,
            region_of=region_of,
        )
        return generator.factory_for(publisher)

    def crowd_rate(self, background_rate_per_s: float) -> float:
        return background_rate_per_s * self.rate_multiplier


@dataclass(frozen=True)
class ThunderingHerd:
    """A wave of near-identical subscriptions landing at one instant."""

    spec: WorkloadSpec
    arrive_at_s: float = 1.0
    size: int = 50
    hot_exponent: float = 3.0
    #: All herd members draw from this locality region's ranking, so their
    #: interests pile onto the same hot values.
    region: int = 0

    def __post_init__(self) -> None:
        if self.arrive_at_s < 0:
            raise SimulationError("arrive_at_s must be >= 0")
        if self.size < 1:
            raise SimulationError("size must be >= 1")

    def subscriptions(
        self, subscribers: Sequence[str], *, seed: int = 0
    ) -> List[Subscription]:
        """``size`` hot subscriptions spread round-robin over the
        subscribers, every one drawn from the herd's regional ranking."""
        if not subscribers:
            raise SimulationError("no subscribers for the herd")
        generator = SubscriptionGenerator(
            _steepened(self.spec, self.hot_exponent),
            seed=seed,
            region_of=lambda _client: self.region,
        )
        return generator.subscriptions_for(subscribers, self.size)

    def arrivals(
        self, subscribers: Sequence[str], *, seed: int = 0
    ) -> List[Tuple[float, Subscription]]:
        """(at_s, subscription) pairs ready for
        :meth:`NetworkSimulation.add_subscription_at`."""
        return [
            (self.arrive_at_s, subscription)
            for subscription in self.subscriptions(subscribers, seed=seed)
        ]
