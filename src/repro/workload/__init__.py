"""Workload generation: the paper's simulation control parameters, Zipf
value distributions, locality of interest, and random subscription/event
generators."""

from repro.workload.distributions import ZipfSampler, rotated
from repro.workload.generators import (
    EventGenerator,
    RegionOf,
    SubscriptionGenerator,
    figure6_region_of,
    measure_selectivity,
)
from repro.workload.scenarios import FlashCrowd, ThunderingHerd
from repro.workload.spec import CHART1_SPEC, CHART2_SPEC, WorkloadSpec

__all__ = [
    "CHART1_SPEC",
    "CHART2_SPEC",
    "EventGenerator",
    "FlashCrowd",
    "RegionOf",
    "SubscriptionGenerator",
    "ThunderingHerd",
    "WorkloadSpec",
    "ZipfSampler",
    "figure6_region_of",
    "measure_selectivity",
    "rotated",
]
