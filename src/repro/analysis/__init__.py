"""Analytical models backing the paper's asymptotic claims (the companion
paper's sublinear matching cost), plus workload analyses built on them."""

from repro.analysis.model import MatchingCostModel, measure_workload_redundancy

__all__ = ["MatchingCostModel", "measure_workload_redundancy"]
