"""Analytical model of PST matching cost.

The paper's Section 2 closes with: "In the companion paper, we have
analytically shown that the cost of matching using the above algorithm
increases less than linearly as the number of subscriptions increase."
This module derives that result for this library's PST and the Section 4.1
workload model, so the claim can be *checked* against the implementation
(see ``tests/integration/test_analysis_model.py``).

Model
-----
Fix an event ``e``.  A depth-``j`` PST node corresponds to a *prefix
pattern*: for each of the first ``j`` attributes, either a ``*`` or an
equality test on some value.  The search visits the node iff the pattern is
*compatible* with ``e`` (every equality tests exactly ``e``'s value) and at
least one of the ``S`` independent random subscriptions carries that prefix.

For a pattern ``π`` constraining the subset ``C ⊆ {1..j}``::

    P(π) = Π_{k∈C} p_k · m_k  ·  Π_{k∉C} (1 − p_k)

where ``p_k`` is the workload's non-``*`` probability for attribute ``k``
and ``m_k`` the probability an independently drawn subscription value equals
the event's value (for two draws from the same distribution this is the
collision probability; exact for uniform values, a mean-field approximation
for Zipf).  Since subscriptions are independent, the expected number of
*distinct* compatible prefixes of length ``j`` is exactly::

    E[V_j] = Σ_{C⊆{1..j}} (1 − (1 − P(C))^S)

and the expected matching steps are ``1 + Σ_{j=1..N} E[V_j]`` (the root plus
one node per visited prefix; leaves are the ``j = N`` terms).  Every inner
term saturates at 1 as ``S`` grows — which *is* the sublinearity: the tree
keeps sharing prefixes, so doubling the subscriptions far less than doubles
the visited nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.workload.distributions import ZipfSampler
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class MatchingCostModel:
    """Closed-form expectations for PST matching under a workload spec.

    The model describes the *plain* (unoptimized, unfactored) PST; Section
    2.1 optimizations only reduce the measured numbers.
    """

    spec: WorkloadSpec
    num_subscriptions: int

    def __post_init__(self) -> None:
        if self.num_subscriptions < 0:
            raise SimulationError("num_subscriptions must be >= 0")

    # ------------------------------------------------------------------

    @property
    def match_probability_per_position(self) -> float:
        """P(an independently drawn subscription value equals the event's)
        — the collision probability of the value distribution."""
        sampler = ZipfSampler(self.spec.values, self.spec.zipf_exponent)
        return sampler.collision_probability

    def non_star_probabilities(self) -> List[float]:
        return [
            self.spec.non_star_probability(k)
            for k in range(self.spec.num_attributes)
        ]

    def pattern_probability(self, constrained: Sequence[bool]) -> float:
        """P that one random subscription's prefix matches the given
        constrained/unconstrained pattern *and* is compatible with a fixed
        event."""
        match = self.match_probability_per_position
        probability = 1.0
        for k, is_constrained in enumerate(constrained):
            p_k = self.spec.non_star_probability(k)
            probability *= p_k * match if is_constrained else (1.0 - p_k)
        return probability

    def expected_visited_prefixes(self, level: int) -> float:
        """E[distinct compatible prefixes of length ``level``] over the
        random subscription set (exact for independent subscriptions)."""
        if not 1 <= level <= self.spec.num_attributes:
            raise SimulationError(f"level must be in [1, {self.spec.num_attributes}]")
        total = 0.0
        for constrained in itertools.product((False, True), repeat=level):
            probability = self.pattern_probability(constrained)
            total += 1.0 - (1.0 - probability) ** self.num_subscriptions
        return total

    def expected_steps(self) -> float:
        """Expected matching steps per event: the root plus the visited
        nodes at every level."""
        return 1.0 + sum(
            self.expected_visited_prefixes(level)
            for level in range(1, self.spec.num_attributes + 1)
        )

    def expected_matches(self) -> float:
        """Expected number of subscriptions matched per event."""
        match = self.match_probability_per_position
        per_subscription = 1.0
        for p_k in self.non_star_probabilities():
            per_subscription *= 1.0 - p_k * (1.0 - match)
        return self.num_subscriptions * per_subscription

    def expected_selectivity(self) -> float:
        """Expected fraction of subscriptions matched per event (the paper
        quotes ~0.1% for Chart 1's parameters)."""
        if self.num_subscriptions == 0:
            return 0.0
        return self.expected_matches() / self.num_subscriptions

    # ------------------------------------------------------------------

    def sublinearity_ratio(self, factor: int = 2) -> float:
        """``steps(factor·S) / (factor · steps(S))`` — strictly below 1 is
        the companion paper's sublinearity claim."""
        if factor < 2:
            raise SimulationError("factor must be >= 2")
        bigger = MatchingCostModel(self.spec, self.num_subscriptions * factor)
        smaller_steps = self.expected_steps()
        if smaller_steps == 0:
            return 0.0
        return bigger.expected_steps() / (factor * smaller_steps)

    def steps_table(self, subscription_counts: Sequence[int]) -> List[Tuple[int, float]]:
        """Model predictions across a sweep, for comparison tables."""
        return [
            (count, MatchingCostModel(self.spec, count).expected_steps())
            for count in subscription_counts
        ]

    def __repr__(self) -> str:
        return (
            f"MatchingCostModel({self.num_subscriptions} subscriptions, "
            f"{self.spec.num_attributes} attributes x "
            f"{self.spec.values_per_attribute} values)"
        )


def measure_workload_redundancy(
    spec: WorkloadSpec, num_subscriptions: int, *, seed: int = 0, subscribers: int = 10
) -> float:
    """Fraction of randomly generated subscriptions that are routing-
    redundant (covered by another subscription of the same subscriber, per
    :mod:`repro.matching.subsumption`).

    High values mean SIENA-style covering optimizations would pay off on the
    workload; the paper's selective workloads produce almost no redundancy,
    one more reason full per-broker matching is the right design there.
    """
    from repro.matching.subsumption import redundant_subscriptions
    from repro.workload.generators import SubscriptionGenerator

    if num_subscriptions <= 0:
        return 0.0
    generator = SubscriptionGenerator(spec, seed=seed)
    names = [f"client{i:03d}" for i in range(max(1, subscribers))]
    subscriptions = generator.subscriptions_for(names, num_subscriptions)
    return len(redundant_subscriptions(subscriptions)) / num_subscriptions
