"""Subject-based pub/sub implemented over content-based routing.

Section 1 of the paper: "content-based pub/sub is more general in that it
can be used to implement subject-based pub/sub, while the reverse is not
true."  This module makes that claim executable: a subject (group/channel/
topic) becomes a distinguished ``subject`` attribute, a subject subscription
becomes the equality predicate ``subject='X'``, and the link-matching fabric
does the rest — a subject effectively *is* a multicast group, with the
group-per-subject table the paper credits to subject-based systems emerging
from factoring on the subject attribute.

Usage::

    schema = subject_schema([("price", "dollar"), ("volume", "integer")])
    network = ContentRoutedNetwork(topology, schema,
                                   domains={"subject": SUBJECTS},
                                   factoring_attributes=["subject"])
    subjects = SubjectAdapter(network)
    subjects.subscribe("alice", "nyse.ibm")
    subjects.publish("ticker", "nyse.ibm", price=119.0, volume=500)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from repro.core.fabric import ContentRoutedNetwork, DeliveryTrace
from repro.errors import SchemaError, SubscriptionError
from repro.matching.predicates import EqualityTest, Predicate, Subscription
from repro.matching.schema import Attribute, AttributeType, AttributeValue, EventSchema

#: The distinguished attribute carrying the subject name.
SUBJECT_ATTRIBUTE = "subject"


def subject_schema(
    payload: Iterable[Union[Attribute, Tuple[str, Union[AttributeType, str]]]]
) -> EventSchema:
    """An event schema with the ``subject`` attribute first.

    Putting the subject first makes it the natural factoring/index attribute
    — which is exactly how subject-based systems get their table-lookup
    dispatch.
    """
    attributes: List[Union[Attribute, Tuple[str, Union[AttributeType, str]]]] = [
        (SUBJECT_ATTRIBUTE, AttributeType.STRING)
    ]
    attributes.extend(payload)
    schema = EventSchema(attributes)
    if schema.position_of(SUBJECT_ATTRIBUTE) != 0:
        raise SchemaError("payload attributes must not shadow 'subject'")
    return schema


class SubjectAdapter:
    """Subject-based operations over a content-routed network.

    The wrapped network's schema must carry a string ``subject`` attribute
    (build it with :func:`subject_schema`).
    """

    def __init__(self, network: ContentRoutedNetwork) -> None:
        schema = network.schema
        if SUBJECT_ATTRIBUTE not in schema:
            raise SchemaError(
                f"the network's schema has no {SUBJECT_ATTRIBUTE!r} attribute; "
                "build it with subject_schema()"
            )
        if schema[SUBJECT_ATTRIBUTE].type is not AttributeType.STRING:
            raise SchemaError(f"{SUBJECT_ATTRIBUTE!r} must be a string attribute")
        self.network = network
        self._by_subject: Dict[Tuple[str, str], List[Subscription]] = {}

    # ------------------------------------------------------------------

    def subscribe(self, client: str, subject: str) -> Subscription:
        """Join a subject: exactly ``subject='<name>'``, nothing else —
        the subject-based model's whole expressive power."""
        predicate = Predicate(
            self.network.schema, {SUBJECT_ATTRIBUTE: EqualityTest(subject)}
        )
        subscription = self.network.subscribe(client, predicate)
        self._by_subject.setdefault((client, subject), []).append(subscription)
        return subscription

    def unsubscribe(self, client: str, subject: str) -> None:
        """Leave a subject (one registration; raises if none exists)."""
        registrations = self._by_subject.get((client, subject))
        if not registrations:
            raise SubscriptionError(
                f"{client!r} has no subscription to subject {subject!r}"
            )
        subscription = registrations.pop()
        if not registrations:
            del self._by_subject[(client, subject)]
        self.network.unsubscribe(subscription.subscription_id)

    def subjects_of(self, client: str) -> List[str]:
        """The subjects a client is currently joined to."""
        return sorted(
            subject
            for (holder, subject), registrations in self._by_subject.items()
            if holder == client and registrations
        )

    def members_of(self, subject: str) -> List[str]:
        """Current members of a subject — the "multicast group" view."""
        return sorted(
            {
                holder
                for (holder, held_subject), registrations in self._by_subject.items()
                if held_subject == subject and registrations
            }
        )

    # ------------------------------------------------------------------

    def publish(
        self,
        publisher: str,
        subject: str,
        **payload: AttributeValue,
    ) -> DeliveryTrace:
        """Publish an event labeled with ``subject`` (the subject-based
        requirement the paper notes: "publishers are required to label each
        event with a subject")."""
        values: Dict[str, AttributeValue] = {SUBJECT_ATTRIBUTE: subject}
        values.update(payload)
        return self.network.publish(publisher, values)

    def __repr__(self) -> str:
        live = sum(1 for registrations in self._by_subject.values() if registrations)
        return f"SubjectAdapter({live} subject memberships)"
