"""Command-line interface: regenerate any of the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro chart1 --subscriptions 100 300 900
    python -m repro chart2 --events 200
    python -m repro chart3 --subscriptions 1000 5000 25000
    python -m repro throughput
    python -m repro bursty --mean-rate 3000
    python -m repro ablations
    python -m repro demo

Each experiment prints its table (and, where it makes sense, an ASCII
rendering of the chart).  ``--paper-scale`` switches any experiment to the
paper's full parameters.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import (
    AblationConfig,
    BurstyConfig,
    Chart1Config,
    Chart2Config,
    Chart3Config,
    ThroughputConfig,
    run_bursty,
    run_chart1,
    run_chart2,
    run_chart3,
    run_delayed_branching_ablation,
    run_factoring_ablation,
    run_ordering_ablation,
    run_throughput,
    run_virtual_link_ablation,
)
from repro.obs import metrics_output

from repro.experiments.ascii_chart import (
    chart1_series,
    chart2_series,
    chart3_series,
    render_chart,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of the ICDCS'99 link-matching paper.",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run at the paper's full parameters (slow)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable the observability registry and write its JSON snapshot "
        "to PATH when the command finishes",
    )
    parser.add_argument(
        "--engine",
        choices=("tree", "compiled", "sharded"),
        default="compiled",
        help="matching engine: array kernels (compiled, default), the "
        "object-graph PST (tree), or partitioned compiled shards (sharded)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="number of shards for --engine sharded (default: engine's own)",
    )
    parser.add_argument(
        "--shard-policy",
        choices=("round-robin", "hash", "balanced"),
        default=None,
        help="partition policy for --engine sharded (default: hash)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        metavar="N",
        help="thread-pool width for --engine sharded (0 = serial, the "
        "default; threads only pay off on GIL-free builds)",
    )
    parser.add_argument(
        "--backend",
        choices=("interp", "vector", "procpool"),
        default=None,
        help="kernel execution backend: reference interpreter loops "
        "(interp, the default), columnar bulk-array kernels (vector), or "
        "shared-memory process workers for --engine sharded (procpool)",
    )
    parser.add_argument(
        "--aggregate",
        action="store_true",
        help="compress the subscription set with the online covering forest "
        "before compilation (dedupes identical predicate bodies and folds "
        "covered predicates under their covering parent)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    chart1 = commands.add_parser("chart1", help="saturation points (flooding vs link matching)")
    chart1.add_argument("--subscriptions", type=int, nargs="+", default=None)
    chart1.add_argument("--probe-duration", type=float, default=None, metavar="SECONDS")
    chart1.add_argument(
        "--match-first", action="store_true", help="include the match-first baseline"
    )

    chart2 = commands.add_parser("chart2", help="cumulative matching steps per hop count")
    chart2.add_argument("--subscriptions", type=int, nargs="+", default=None)
    chart2.add_argument("--events", type=int, default=None)

    chart3 = commands.add_parser("chart3", help="prototype matching time")
    chart3.add_argument("--subscriptions", type=int, nargs="+", default=None)
    chart3.add_argument("--events", type=int, default=None)

    commands.add_parser("throughput", help="prototype broker events/sec")

    bursty = commands.add_parser("bursty", help="bursty-load study (paper future work)")
    bursty.add_argument("--mean-rate", type=float, default=None)
    bursty.add_argument("--burstiness", type=float, nargs="+", default=None)

    commands.add_parser("ablations", help="factoring / ordering / DAG / virtual links")

    model = commands.add_parser(
        "model", help="analytical expected-cost model vs the measured PST"
    )
    model.add_argument("--subscriptions", type=int, nargs="+", default=None)
    model.add_argument("--events", type=int, default=200)

    commands.add_parser("demo", help="run the quickstart scenario inline")
    return parser


def _run_chart1(args: argparse.Namespace) -> None:
    config = Chart1Config(
        subscription_counts=tuple(args.subscriptions)
        if args.subscriptions
        else ((500, 1000, 2000, 4000) if args.paper_scale else Chart1Config().subscription_counts),
        subscribers_per_broker=10 if args.paper_scale else 3,
        probe_duration_s=args.probe_duration or (0.5 if args.paper_scale else 0.4),
        include_match_first=args.match_first,
        engine=args.engine,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_workers=args.shard_workers,
        backend=args.backend,
        aggregate=args.aggregate,
        metrics_out=args.metrics_out,
    )
    table = run_chart1(config)
    print(table.format())
    print()
    print(
        render_chart(
            "Chart 1: saturation publish rate (events/s, log) vs subscriptions",
            chart1_series(table),
            y_log=True,
            x_label="subscriptions",
        )
    )


def _run_chart2(args: argparse.Namespace) -> None:
    config = Chart2Config(
        subscription_counts=tuple(args.subscriptions)
        if args.subscriptions
        else (
            (2000, 4000, 6000, 8000, 10000)
            if args.paper_scale
            else Chart2Config().subscription_counts
        ),
        num_events=args.events or (1000 if args.paper_scale else 120),
        subscribers_per_broker=10 if args.paper_scale else 3,
        engine=args.engine,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_workers=args.shard_workers,
        backend=args.backend,
        aggregate=args.aggregate,
        metrics_out=args.metrics_out,
    )
    table = run_chart2(config)
    print(table.format())
    print()
    print(
        render_chart(
            "Chart 2: cumulative matching steps vs subscriptions",
            chart2_series(table),
            x_label="subscriptions",
        )
    )


def _run_chart3(args: argparse.Namespace) -> None:
    config = Chart3Config(
        subscription_counts=tuple(args.subscriptions)
        if args.subscriptions
        else (
            (1000, 5000, 10000, 25000)
            if args.paper_scale
            else Chart3Config().subscription_counts
        ),
        num_events=args.events or (300 if args.paper_scale else 150),
        engine=args.engine,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_workers=args.shard_workers,
        backend=args.backend,
        aggregate=args.aggregate,
        metrics_out=args.metrics_out,
    )
    table = run_chart3(config)
    print(table.format())
    print()
    print(
        render_chart(
            "Chart 3: average matching time (ms) vs subscriptions",
            chart3_series(table),
            x_label="subscriptions",
        )
    )


def _run_throughput(args: argparse.Namespace) -> None:
    config = ThroughputConfig(
        subscription_counts=(10, 100, 1000, 5000) if args.paper_scale else (10, 100, 1000),
        num_events=4000 if args.paper_scale else 1500,
        engine=args.engine,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_workers=args.shard_workers,
        backend=args.backend,
        aggregate=args.aggregate,
        metrics_out=args.metrics_out,
    )
    print(run_throughput(config).format())


def _run_bursty(args: argparse.Namespace) -> None:
    config = BurstyConfig(
        num_subscriptions=1000 if args.paper_scale else 200,
        subscribers_per_broker=10 if args.paper_scale else 3,
        mean_rate=args.mean_rate or (5000.0 if args.paper_scale else 3000.0),
        burstiness_factors=tuple(args.burstiness)
        if args.burstiness
        else (1.0, 2.0, 5.0, 10.0),
        duration_s=2.0 if args.paper_scale else 0.8,
        engine=args.engine,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_workers=args.shard_workers,
        backend=args.backend,
        aggregate=args.aggregate,
        metrics_out=args.metrics_out,
    )
    print(run_bursty(config).format())


def _run_ablations(args: argparse.Namespace) -> None:
    config = AblationConfig(
        num_subscriptions=5000 if args.paper_scale else 1500,
        num_events=500 if args.paper_scale else 200,
    )
    from repro.experiments import run_range_workload_ablation

    for table in (
        run_factoring_ablation(config),
        run_ordering_ablation(config),
        run_delayed_branching_ablation(),
        run_virtual_link_ablation(),
        run_range_workload_ablation(config),
    ):
        print(table.format())
        print()


def _run_model(args: argparse.Namespace) -> None:
    from repro.analysis import MatchingCostModel
    from repro.experiments import ExperimentTable
    from repro.matching import ParallelSearchTree
    from repro.workload import EventGenerator, SubscriptionGenerator, WorkloadSpec

    spec = WorkloadSpec(
        num_attributes=8,
        values_per_attribute=4,
        factoring_levels=0,
        zipf_exponent=0.0,  # uniform values: the model is exact here
        locality_regions=1,
    )
    counts = args.subscriptions or [500, 2000, 8000]
    table = ExperimentTable(
        "Analytical model vs measured PST (uniform values)",
        ["subscriptions", "model_steps", "measured_steps", "model_matches",
         "measured_matches", "sublinearity_ratio"],
    )
    for count in counts:
        model = MatchingCostModel(spec, count)
        generator = SubscriptionGenerator(spec, seed=count)
        tree = ParallelSearchTree(spec.schema())
        for subscription in generator.subscriptions_for(["c"], count):
            tree.insert(subscription)
        events = EventGenerator(spec, seed=count + 1)
        sample = [events.event_for() for _ in range(args.events)]
        measured_steps = sum(tree.match(e).steps for e in sample) / len(sample)
        measured_matches = sum(
            len(tree.match(e).subscriptions) for e in sample
        ) / len(sample)
        table.add_row(
            count,
            model.expected_steps(),
            measured_steps,
            model.expected_matches(),
            measured_matches,
            model.sublinearity_ratio(),
        )
    print(table.format())
    print()
    print("sublinearity_ratio = steps(2S) / (2 x steps(S)); < 1 certifies the")
    print("companion paper's claim that matching cost grows sublinearly in S.")


def _run_demo(args: argparse.Namespace) -> None:
    from repro import ContentRoutedNetwork, stock_trade_schema
    from repro.network import NodeKind, Topology

    topology = Topology()
    topology.add_broker("NY")
    topology.add_broker("TOKYO")
    topology.add_link("NY", "TOKYO", latency_ms=65.0)
    topology.add_client("alice", "NY")
    topology.add_client("bob", "TOKYO")
    topology.add_client("ticker", "NY", kind=NodeKind.PUBLISHER)
    network = ContentRoutedNetwork(
        topology,
        stock_trade_schema(),
        engine=args.engine,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_workers=args.shard_workers,
        backend=args.backend,
        aggregate=args.aggregate,
    )
    network.subscribe("alice", "issue='IBM' & price<120 & volume>1000")
    network.subscribe("bob", "volume>50000")
    for values in (
        {"issue": "IBM", "price": 119.5, "volume": 2500},
        {"issue": "IBM", "price": 99.0, "volume": 60000},
    ):
        trace = network.publish("ticker", values)
        print(f"{values} -> {sorted(trace.delivered_clients)} via {trace.links_used}")


_HANDLERS = {
    "chart1": _run_chart1,
    "chart2": _run_chart2,
    "chart3": _run_chart3,
    "throughput": _run_throughput,
    "bursty": _run_bursty,
    "ablations": _run_ablations,
    "model": _run_model,
    "demo": _run_demo,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    # The registry must be enabled before the handler builds its engines and
    # protocols (instruments fetched while disabled stay no-ops), so the
    # enable-write lifecycle wraps the whole handler.
    with metrics_output(args.metrics_out):
        _HANDLERS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
