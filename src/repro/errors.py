"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch all library failures with a single ``except``
clause while still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """An event schema was malformed or used inconsistently."""


class EventError(ReproError):
    """An event did not conform to its information space's schema."""


class PredicateError(ReproError):
    """A subscription predicate was malformed."""


class ParseError(PredicateError):
    """A subscription expression string could not be parsed.

    Carries the position in the source text where parsing failed, when known.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class SubscriptionError(ReproError):
    """A subscription could not be added, found, or removed."""


class TopologyError(ReproError):
    """The broker network topology was malformed (disconnected, unknown node,
    duplicate link, ...)."""


class RoutingError(ReproError):
    """Routing state (spanning trees, masks, routing tables) was inconsistent
    with the topology or the request."""


class SimulationError(ReproError):
    """The discrete-event simulator was misconfigured or driven incorrectly."""


class TransportError(ReproError):
    """A prototype-broker transport operation failed."""


class ConnectionClosedError(TransportError):
    """The peer connection is closed; the operation cannot proceed."""


class ProtocolError(ReproError):
    """A broker/client wire-protocol violation was detected."""


class CodecError(ProtocolError):
    """An event or message could not be marshalled or unmarshalled."""
