"""Fault injection, incremental repair and reliable replay.

The paper's Section 4.2 sketches how the multicast protocol survives
"transient failures of connections by maintaining an event log per client".
This module turns that sketch into a testable fault model for the simulator:

* :class:`FaultAction` / :class:`FaultPlan` — a script of link/broker
  failures, recoveries, joins and leaves, triggered either at simulated
  wall-clock times (``at_s``) or when the Nth event is published
  (``after_events``).  :meth:`FaultPlan.random` draws seeded random
  fail/recover pairs for chaos testing.
* :class:`FaultCoordinator` — applies the actions to the live topology,
  schedules **incremental repair** (``ProtocolContext.repair_topology`` →
  ``RoutingProtocol.on_topology_repaired``) ``repair_delay_ms`` later, and
  keeps the :class:`~repro.broker.event_log.EventLog` instances that make
  the failures survivable: per-link transmit logs, per-publisher logs, and
  per-client offline logs for subscribers cut off from the network.
* :func:`check_invariants` — verifies the two properties every run must
  preserve: **no event is lost to a live subscriber**, and **no link
  carries more than one copy** of an undisturbed event.

How a failure plays out
-----------------------

At the failure instant the topology is mutated (a broker failure removes
its broker-broker links; its clients become an unreachable island) and the
dead broker's input queue is swept into the pending-replay set.  Until the
repair fires, routing state is stale: messages forwarded toward the dead
element are *parked* at the failure boundary, each remembering the
downstream responsibility (the dead subtree, read from the tree as it was
when the routing decision was made).  The repair patches spanning trees,
routing tables and virtual-link masks incrementally, then:

* parked messages are re-injected at their holder with a ``replay_for``
  restriction, so the rerouted copies only traverse toward the failed
  element's responsibilities — subtrees already served are not traversed
  again (the ≤1-copy discipline for everyone else);
* responsibilities that are *still* unreachable (the dead broker's own
  clients) move to per-client offline logs, drained when a later repair
  re-covers the client — the paper's reconnect-replay;
* brokers whose mask layout changed can be held **stale** for
  ``annotation_lag_ms``: they degrade to tree flood-fallback (correct,
  wasteful) until their annotations catch up.

Events with a copy in flight across any mutation or repair are marked
*disturbed*: replay may legitimately duplicate deliveries and link copies
for them, so the ≤1-copy invariant is checked on undisturbed events only.
The no-loss invariant is checked on every event that entered the network.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.broker.event_log import EventLog
from repro.errors import SimulationError
from repro.matching.engines import create_engine
from repro.matching.predicates import Subscription
from repro.network.topology import Link, NodeKind
from repro.protocols.base import SimMessage
from repro.sim.engine import ms_to_ticks, seconds_to_ticks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.runner import NetworkSimulation


# ----------------------------------------------------------------------
# The plan


_KINDS = (
    "fail_link",
    "recover_link",
    "fail_broker",
    "recover_broker",
    "join_broker",
    "leave_broker",
)


class FaultAction:
    """One scripted fault event.

    Exactly one of ``at_s`` (simulated seconds) or ``after_events`` (fire
    when the Nth event is published, 1-based) must be set.  Use the
    classmethod constructors; the raw constructor validates but does not
    guess.
    """

    __slots__ = ("kind", "target", "at_s", "after_events", "attach_to", "latency_ms", "clients")

    def __init__(
        self,
        kind: str,
        target: object,
        *,
        at_s: Optional[float] = None,
        after_events: Optional[int] = None,
        attach_to: Optional[str] = None,
        latency_ms: float = 10.0,
        clients: Tuple[str, ...] = (),
    ) -> None:
        if kind not in _KINDS:
            raise SimulationError(f"unknown fault kind {kind!r}")
        if (at_s is None) == (after_events is None):
            raise SimulationError("set exactly one of at_s / after_events")
        if at_s is not None and at_s < 0:
            raise SimulationError("at_s must be >= 0")
        if after_events is not None and after_events < 1:
            raise SimulationError("after_events is 1-based")
        if kind == "join_broker" and not attach_to:
            raise SimulationError("join_broker needs attach_to")
        self.kind = kind
        self.target = target
        self.at_s = at_s
        self.after_events = after_events
        self.attach_to = attach_to
        self.latency_ms = latency_ms
        self.clients = tuple(clients)

    # -- constructors ---------------------------------------------------

    @classmethod
    def fail_link(cls, a: str, b: str, **when: object) -> "FaultAction":
        return cls("fail_link", (a, b), **when)  # type: ignore[arg-type]

    @classmethod
    def recover_link(cls, a: str, b: str, **when: object) -> "FaultAction":
        return cls("recover_link", (a, b), **when)  # type: ignore[arg-type]

    @classmethod
    def fail_broker(cls, broker: str, **when: object) -> "FaultAction":
        return cls("fail_broker", broker, **when)  # type: ignore[arg-type]

    @classmethod
    def recover_broker(cls, broker: str, **when: object) -> "FaultAction":
        return cls("recover_broker", broker, **when)  # type: ignore[arg-type]

    @classmethod
    def join_broker(
        cls,
        broker: str,
        *,
        attach_to: str,
        latency_ms: float = 10.0,
        clients: Sequence[str] = (),
        **when: object,
    ) -> "FaultAction":
        return cls(
            "join_broker",
            broker,
            attach_to=attach_to,
            latency_ms=latency_ms,
            clients=tuple(clients),
            **when,  # type: ignore[arg-type]
        )

    @classmethod
    def leave_broker(cls, broker: str, **when: object) -> "FaultAction":
        return cls("leave_broker", broker, **when)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        when = f"at_s={self.at_s}" if self.at_s is not None else f"after_events={self.after_events}"
        return f"FaultAction({self.kind}, {self.target!r}, {when})"


class FaultPlan:
    """An ordered script of :class:`FaultAction` (possibly empty).

    An empty plan still arms the coordinator's bookkeeping — benchmarks use
    it to run the invariant checkers over a healthy run.
    """

    def __init__(self, actions: Sequence[FaultAction] = ()) -> None:
        self.actions: Tuple[FaultAction, ...] = tuple(actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    @classmethod
    def random(
        cls,
        topology,
        *,
        seed: int,
        failures: int = 2,
        window_s: Tuple[float, float] = (0.5, 2.5),
        outage_s: float = 0.5,
        kinds: Sequence[str] = ("link", "broker"),
        spare: Sequence[str] = (),
    ) -> "FaultPlan":
        """A seeded random chaos plan: ``failures`` fail/recover pairs.

        Publisher-hosting brokers (plus ``spare``) are never failed, so
        every run keeps injecting events; each element is targeted at most
        once so recoveries cannot race their own failures.
        """
        rng = random.Random(seed)
        protected = set(spare)
        for publisher in topology.publishers():
            protected.add(topology.broker_of(publisher))
        broker_pool = [b for b in topology.brokers() if b not in protected]
        link_pool = [
            link
            for link in topology.links()
            if not topology.node(link.a).kind.is_client
            and not topology.node(link.b).kind.is_client
        ]
        rng.shuffle(broker_pool)
        rng.shuffle(link_pool)
        actions: List[FaultAction] = []
        for _ in range(failures):
            start = rng.uniform(*window_s)
            kind = rng.choice(tuple(kinds))
            if kind == "broker" and broker_pool:
                broker = broker_pool.pop()
                actions.append(FaultAction.fail_broker(broker, at_s=start))
                actions.append(FaultAction.recover_broker(broker, at_s=start + outage_s))
            elif link_pool:
                link = link_pool.pop()
                actions.append(FaultAction.fail_link(link.a, link.b, at_s=start))
                actions.append(
                    FaultAction.recover_link(link.a, link.b, at_s=start + outage_s)
                )
        return cls(actions)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.actions)} actions)"


# ----------------------------------------------------------------------
# Internal bookkeeping records


class _Entry:
    """One logged copy of a message: where it came from, where it can be
    re-injected, and what subtree it was responsible for."""

    __slots__ = ("log_key", "seq", "message", "source", "target", "tree_gen", "responsibility")

    def __init__(
        self,
        log_key: Tuple[str, str],
        seq: int,
        message: SimMessage,
        source: str,
        target: Optional[str],
        tree_gen: int,
        responsibility: Optional[FrozenSet[str]],
    ) -> None:
        self.log_key = log_key
        self.seq = seq
        self.message = message
        self.source = source
        self.target = target
        self.tree_gen = tree_gen
        # None means "the whole tree" (publisher-side copies and copies
        # whose tree was repaired before the responsibility was read).
        self.responsibility = responsibility


class PublishRecord:
    """What the invariant checker needs to know about one published event."""

    __slots__ = ("event", "root", "publisher", "publish_ticks", "entered")

    def __init__(self, event, root: str, publisher: str, publish_ticks: int) -> None:
        self.event = event
        self.root = root
        self.publisher = publisher
        self.publish_ticks = publish_ticks
        #: Whether the event actually reached its root broker (immediately,
        #: or later via publisher-log replay).
        self.entered = False


# ----------------------------------------------------------------------
# The coordinator


class FaultCoordinator:
    """Applies a :class:`FaultPlan` to a running simulation (see module
    docstring for the failure/repair/replay lifecycle)."""

    def __init__(
        self,
        network: "NetworkSimulation",
        plan: FaultPlan,
        *,
        repair_delay_ms: float = 5.0,
        annotation_lag_ms: float = 0.0,
    ) -> None:
        if len(plan) and not network.protocol.supports_faults:
            raise SimulationError(
                f"protocol {network.protocol.name!r} does not support fault injection"
            )
        if repair_delay_ms < 0 or annotation_lag_ms < 0:
            raise SimulationError("repair/annotation delays must be >= 0")
        self.network = network
        self.topology = network.topology
        self.protocol = network.protocol
        self.plan = plan
        self.repair_delay_ms = repair_delay_ms
        self.annotation_lag_ms = annotation_lag_ms

        obs = network.registry.scope("sim.fault")
        self._obs_actions = obs.counter("actions_applied")
        self._obs_repairs = obs.counter("repairs")
        self._obs_parked = obs.counter("messages_parked")
        self._obs_dropped = obs.counter("messages_dropped_inflight")
        self._obs_swept = obs.counter("queue_swept")
        self._obs_pub_parked = obs.counter("publishes_parked")
        self._obs_replayed = obs.counter("messages_replayed")
        self._obs_pub_replayed = obs.counter("publishes_replayed")
        self._obs_offline_logged = obs.counter("offline_logged")
        self._obs_offline_replayed = obs.counter("offline_replayed")
        self._obs_stale_windows = obs.counter("stale_windows")
        self._obs_deferred_subs = obs.counter("deferred_subscriptions")
        self._obs_brokers_down = obs.gauge("brokers_down")
        self._obs_links_down = obs.gauge("links_down")

        # Element state
        self.down_brokers: Set[str] = set()
        self.left_brokers: Set[str] = set()
        self._down_links: Dict[Tuple[str, str], Link] = {}
        self._islands: Dict[str, List[Link]] = {}

        # Logs and replay state.  EventLogs keep the paper's per-client
        # sequence/ack/GC discipline; the entries themselves additionally
        # carry the live message so replay never depends on GC timing.
        self._logs: Dict[Tuple[str, str], EventLog] = {}
        self._offline_logs: Dict[str, EventLog] = {}
        self._offline_messages: Dict[str, Dict[int, SimMessage]] = {}
        self._entries: Dict[int, _Entry] = {}
        self._pending: List[_Entry] = []

        # Invariant bookkeeping
        self.events: Dict[int, PublishRecord] = {}
        self.disturbed: Set[int] = set()
        self._outstanding: Dict[int, int] = {}
        self.link_copies: Dict[Tuple[int, Tuple[str, str]], int] = {}
        self._tree_gen: Dict[str, int] = {}

        # Subscription epochs: (activation tick, subscriptions) — the
        # initial set is epoch 0, runtime additions get the tick at which
        # the protocol actually indexed them.
        self.subscription_epochs: List[Tuple[int, List[Subscription]]] = [
            (0, list(self.protocol.context.subscriptions))
        ]
        self._deferred_subscriptions: List[Subscription] = []

        self._publish_index = 0
        self._by_index: Dict[int, List[FaultAction]] = {}
        self._pending_repairs = 0
        self._stale_brokers: Set[str] = set()
        for action in plan:
            if action.after_events is not None:
                self._by_index.setdefault(action.after_events, []).append(action)
            else:
                network.simulator.schedule_at(
                    seconds_to_ticks(action.at_s or 0.0),
                    (lambda a=action: self._apply(a)),
                )
        # Subscribers with no live path per tree root, refreshed at every
        # repair; publishes consult it to fill offline logs.
        self._uncovered: Dict[str, FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    # Element state queries

    def is_broker_down(self, broker: str) -> bool:
        return broker in self.down_brokers or broker in self.left_brokers

    @property
    def settled(self) -> bool:
        """No repair scheduled and no broker held stale."""
        return self._pending_repairs == 0 and not self._stale_brokers

    # ------------------------------------------------------------------
    # Hooks called by the simulation

    def on_publish(self, publisher: str, broker: str, message: SimMessage) -> bool:
        """Register a publish attempt; returns False when the event must be
        parked because the publisher's broker is down (it re-enters via the
        publisher log once the broker recovers)."""
        event_id = message.event.event_id
        now = self.network.simulator.now
        record = PublishRecord(message.event, message.root, publisher, now)
        self.events[event_id] = record
        self._publish_index += 1
        for action in self._by_index.pop(self._publish_index, ()):  # event-index triggers
            self.network.simulator.schedule(0, (lambda a=action: self._apply(a)))
        entry = self._log(("client", publisher), message, source=broker, target=broker)
        if self.is_broker_down(broker):
            self._obs_pub_parked.inc()
            self._park(entry)
            return False
        record.entered = True
        self._bump(event_id, +1)
        self._offline_log_uncovered(message)
        return True

    def on_transmit(self, source: str, target: str, message: SimMessage) -> bool:
        """Log an outgoing broker-broker copy; returns False (parked) when
        the link or the target is currently dead."""
        entry = self._log((source, target), message, source=source, target=target)
        if self.is_broker_down(target) or not self.topology.has_link(source, target):
            self._obs_parked.inc()
            self._park(entry)
            return False
        self._bump(message.event.event_id, +1)
        key = (message.event.event_id, self._link_key(source, target))
        self.link_copies[key] = self.link_copies.get(key, 0) + 1
        return True

    def on_arrival_lost(self, message: SimMessage) -> None:
        """A copy in flight when its link or target died drops at arrival."""
        self._obs_dropped.inc()
        self._bump(message.event.event_id, -1)
        entry = self._entries.get(message.message_id)
        if entry is not None:
            self._park(entry)

    def on_service_annihilated(self, messages: Sequence[SimMessage]) -> None:
        """Messages being serviced when their broker died."""
        for message in messages:
            self._bump(message.event.event_id, -1)
            entry = self._entries.get(message.message_id)
            if entry is not None:
                self._park(entry)

    def on_processed(self, broker: str, message: SimMessage) -> None:
        """A broker finished servicing a copy: ack its log entry."""
        self._bump(message.event.event_id, -1)
        entry = self._entries.pop(message.message_id, None)
        if entry is None:
            return
        log = self._logs[entry.log_key]
        log.ack(entry.seq)
        if entry.seq % 256 == 0:
            log.collect()

    # ------------------------------------------------------------------
    # Runtime subscriptions (thundering herds, joining subscribers)

    def add_subscription(self, subscription: Subscription) -> None:
        """Index a runtime subscription, deferring while the network is
        mid-repair (stale annotations would index against dying layouts)."""
        if not self.settled:
            self._obs_deferred_subs.inc()
            self._deferred_subscriptions.append(subscription)
            return
        self.protocol.add_subscription(subscription)
        self.subscription_epochs.append(
            (self.network.simulator.now, [subscription])
        )

    def _drain_deferred_subscriptions(self) -> None:
        if not self._deferred_subscriptions or not self.settled:
            return
        pending, self._deferred_subscriptions = self._deferred_subscriptions, []
        now = self.network.simulator.now
        for subscription in pending:
            self.protocol.add_subscription(subscription)
        self.subscription_epochs.append((now, pending))

    # ------------------------------------------------------------------
    # Applying actions

    def _apply(self, action: FaultAction) -> None:
        self._obs_actions.inc()
        kind = action.kind
        if kind == "fail_link":
            a, b = action.target  # type: ignore[misc]
            self._fail_link(a, b)
        elif kind == "recover_link":
            a, b = action.target  # type: ignore[misc]
            self._recover_link(a, b)
        elif kind == "fail_broker":
            self._fail_broker(str(action.target))
        elif kind == "recover_broker":
            self._recover_broker(str(action.target))
        elif kind == "leave_broker":
            self._leave_broker(str(action.target))
        elif kind == "join_broker":
            self._join_broker(action)
        self._disturb_in_flight()
        self._obs_brokers_down.set(len(self.down_brokers))
        self._obs_links_down.set(len(self._down_links))
        self._schedule_repair()

    def _fail_link(self, a: str, b: str) -> None:
        if self.topology.node(a).kind.is_client or self.topology.node(b).kind.is_client:
            raise SimulationError("only broker-broker links can fail")
        if self.topology.has_link(a, b):
            link = self.topology.remove_link(a, b)
        else:
            # The link may already be absent because an endpoint broker is
            # down and holds it in its island; failing it independently moves
            # ownership here so broker recovery does not resurrect it.
            link = self._pop_island_link(a, b)
            if link is None:
                raise SimulationError(f"no link between {a!r} and {b!r} to fail")
        self._down_links[link.key()] = link

    def _pop_island_link(self, a: str, b: str) -> Optional[Link]:
        key = (a, b) if a <= b else (b, a)
        for island in self._islands.values():
            for index, link in enumerate(island):
                if link.key() == key:
                    del island[index]
                    return link
        return None

    def _recover_link(self, a: str, b: str) -> None:
        key = (a, b) if a <= b else (b, a)
        link = self._down_links.pop(key, None)
        if link is None:
            raise SimulationError(f"link {a!r}-{b!r} is not down")
        if not (self.is_broker_down(a) or self.is_broker_down(b)):
            self.topology.add_link(a, b, latency_ms=link.latency_ms)
        else:
            # An endpoint is itself down; the link comes back with it.
            endpoint = a if self.is_broker_down(a) else b
            self._islands.setdefault(endpoint, []).append(link)

    def _fail_broker(self, broker: str) -> None:
        if self.is_broker_down(broker):
            raise SimulationError(f"broker {broker!r} is already down")
        island = self._islands.setdefault(broker, [])
        for neighbor in list(self.topology.broker_neighbors(broker)):
            island.append(self.topology.remove_link(broker, neighbor))
        self.down_brokers.add(broker)
        sim_broker = self.network.brokers[broker]
        for message in sim_broker.queue:
            self._obs_swept.inc()
            self._bump(message.event.event_id, -1)
            entry = self._entries.get(message.message_id)
            if entry is not None:
                self._park(entry)
        sim_broker.queue.clear()

    def _recover_broker(self, broker: str) -> None:
        if broker not in self.down_brokers:
            raise SimulationError(f"broker {broker!r} is not down")
        self.down_brokers.discard(broker)
        for link in self._islands.pop(broker, []):
            other = link.other(broker)
            if self.is_broker_down(other):
                # The far endpoint is still down; it owns the link now.
                self._islands.setdefault(other, []).append(link)
            elif other in self.topology and not self.topology.has_link(broker, other):
                self.topology.add_link(broker, other, latency_ms=link.latency_ms)

    def _leave_broker(self, broker: str) -> None:
        """A graceful, permanent departure: same cut as a failure, but the
        broker never recovers and the checker stops expecting deliveries to
        its clients."""
        if self.is_broker_down(broker):
            raise SimulationError(f"broker {broker!r} is already down")
        for publisher in self.topology.publishers():
            if self.topology.broker_of(publisher) == broker:
                raise SimulationError(f"{broker!r} hosts a publisher and cannot leave")
        self._fail_broker(broker)
        self.down_brokers.discard(broker)
        self.left_brokers.add(broker)
        self._islands.pop(broker, None)

    def _join_broker(self, action: FaultAction) -> None:
        from repro.sim.brokers import SimBroker

        broker = str(action.target)
        if broker in self.topology:
            raise SimulationError(f"{broker!r} is already in the topology")
        attach_to = action.attach_to or ""
        if attach_to not in self.topology or self.is_broker_down(attach_to):
            raise SimulationError(f"cannot attach {broker!r} to {attach_to!r}")
        self.topology.add_broker(broker)
        self.topology.add_link(broker, attach_to, latency_ms=action.latency_ms)
        for client in action.clients:
            self.topology.add_client(client, broker)
        self.network.brokers[broker] = SimBroker(
            self.network.simulator,
            broker,
            self.protocol,
            self.network.cost_model,
            self.network,
            batch_size=self.network.batch_size,
        )

    # ------------------------------------------------------------------
    # Repair

    def _schedule_repair(self) -> None:
        self._pending_repairs += 1
        self.network.simulator.schedule(ms_to_ticks(self.repair_delay_ms), self._run_repair)

    def _run_repair(self) -> None:
        self._pending_repairs -= 1
        self._disturb_in_flight()
        repair = self.protocol.context.repair_topology()
        self._obs_repairs.inc()
        for root in repair.tree_changes:
            self._tree_gen[root] = self._tree_gen.get(root, 0) + 1
        changed_brokers = self.protocol.on_topology_repaired(repair)
        old_uncovered = self._uncovered
        self._refresh_uncovered()
        self._offline_sweep_in_flight(old_uncovered)
        self._replay_moved_subscribers(repair)
        if self.annotation_lag_ms > 0 and changed_brokers:
            for broker in changed_brokers:
                self.protocol.set_stale(broker, True)
                self._stale_brokers.add(broker)
                self._obs_stale_windows.inc()
            self.network.simulator.schedule(
                ms_to_ticks(self.annotation_lag_ms),
                (lambda brokers=tuple(changed_brokers): self._clear_stale(brokers)),
            )
        self._drain_pending()
        self._drain_offline()
        self._drain_deferred_subscriptions()

    def _clear_stale(self, brokers: Tuple[str, ...]) -> None:
        for broker in brokers:
            self.protocol.set_stale(broker, False)
            self._stale_brokers.discard(broker)
        self._drain_deferred_subscriptions()

    def _refresh_uncovered(self) -> None:
        subscribers = frozenset(self.topology.subscribers())
        trees = self.protocol.context.spanning_trees
        self._uncovered = {}
        for root, tree in trees.items():
            missing = subscribers - tree.covered
            if missing:
                self._uncovered[root] = missing

    def _offline_sweep_in_flight(self, old_uncovered: Dict[str, FrozenSet[str]]) -> None:
        """Close the in-flight gap: an event published before a failure but
        still traveling when the repair lands will route with the repaired
        masks, which no longer cover the cut-off subscribers — and it was
        published too early for the publish-time offline logging.  Log every
        such event for the subscribers that just became uncovered."""
        newly: Dict[str, FrozenSet[str]] = {}
        for root, missing in self._uncovered.items():
            fresh = missing - old_uncovered.get(root, frozenset())
            if fresh:
                newly[root] = fresh
        if not newly:
            return
        for event_id in list(self._outstanding):
            record = self.events.get(event_id)
            if record is None or not record.entered:
                continue
            fresh = newly.get(record.root)
            if not fresh:
                continue
            message = SimMessage(
                record.event, record.root, publish_time_ticks=record.publish_ticks
            )
            for client in fresh:
                self._offline_append(client, message)

    def _replay_moved_subscribers(self, repair) -> None:
        """Close the re-parenting gap: a copy routed under the pre-repair
        tree can arrive at a broker that is no longer the subscriber's
        ancestor and die there, even though the subscriber stayed covered
        (it just hangs off a different parent now).  Every in-flight event
        is re-injected at its root restricted to the subscribers whose tree
        position changed; duplicates this causes are what the *disturbed*
        set exists for."""
        if not repair.tree_changes or not self._outstanding:
            return
        subscribers = frozenset(self.topology.subscribers())
        trees = self.protocol.context.spanning_trees
        moved_by_root: Dict[str, FrozenSet[str]] = {}
        for root, changed in repair.tree_changes.items():
            tree = trees.get(root)
            if tree is None:
                continue
            moved = frozenset(
                client
                for client in changed
                if client in subscribers and client in tree.parent
            )
            if moved:
                moved_by_root[root] = moved
        if not moved_by_root:
            return
        for event_id in list(self._outstanding):
            record = self.events.get(event_id)
            if record is None or not record.entered:
                continue
            moved = moved_by_root.get(record.root)
            if not moved:
                continue
            if record.root not in self.topology or self.is_broker_down(record.root):
                continue
            message = SimMessage(
                record.event, record.root, publish_time_ticks=record.publish_ticks
            )
            self._obs_replayed.inc()
            self._inject(record.root, message, replay_for=moved, hop=0)

    # ------------------------------------------------------------------
    # Logs, parking and replay

    def _link_key(self, a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _log(
        self,
        log_key: Tuple[str, str],
        message: SimMessage,
        *,
        source: str,
        target: Optional[str],
    ) -> _Entry:
        log = self._logs.get(log_key)
        if log is None:
            log = EventLog(f"{log_key[0]}->{log_key[1]}")
            self._logs[log_key] = log
        seq = log.append(message)
        root = message.root
        entry = _Entry(
            log_key,
            seq,
            message,
            source,
            target,
            self._tree_gen.get(root, 0),
            None,
        )
        self._entries[message.message_id] = entry
        return entry

    def _park(self, entry: _Entry) -> None:
        """A copy became undeliverable: remember it for replay after repair."""
        message = entry.message
        self.disturbed.add(message.event.event_id)
        if self._entries.pop(message.message_id, None) is None:
            return  # already parked or processed
        if (
            entry.target is not None
            and entry.target != entry.source
            and entry.tree_gen == self._tree_gen.get(message.root, 0)
        ):
            tree = self.protocol.context.spanning_trees.get(message.root)
            if tree is not None and entry.source in tree.parent:
                downstream = tree.downstream_via(entry.source, entry.target)
                entry.responsibility = frozenset(
                    node
                    for node in downstream
                    if node in self.topology and self.topology.node(node).kind.is_client
                )
        # else: responsibility stays None = replay against the whole tree.
        self._logs[entry.log_key].ack(entry.seq)
        self._pending.append(entry)

    def _inject(
        self,
        broker: str,
        message: SimMessage,
        *,
        replay_for: Optional[FrozenSet[str]],
        hop: int,
    ) -> None:
        """Re-inject a replayed copy at ``broker`` (logged like any other
        copy, so a second failure re-parks it)."""
        copy = SimMessage(
            message.event,
            message.root,
            publish_time_ticks=message.publish_time_ticks,
            hop=hop,
            replay_for=replay_for,
        )
        self._log(("replay", broker), copy, source=broker, target=broker)
        self._bump(copy.event.event_id, +1)
        self.disturbed.add(copy.event.event_id)
        self.network.brokers[broker].receive(copy)

    def _drain_pending(self) -> None:
        pending, self._pending = self._pending, []
        trees = self.protocol.context.spanning_trees
        still: List[_Entry] = []
        for entry in pending:
            message = entry.message
            root = message.root
            record = self.events.get(message.event.event_id)
            if entry.responsibility is None and entry.target == entry.source:
                # Publisher-side or injected copy: the whole tree is owed.
                if self.is_broker_down(root) or root not in self.topology:
                    still.append(entry)
                    continue
                self._obs_pub_replayed.inc()
                if record is not None:
                    record.entered = True
                self._inject(root, message, replay_for=None, hop=message.hop)
                continue
            tree = trees.get(root)
            if entry.responsibility is None:
                clients = frozenset(
                    node for node in (tree.covered if tree else frozenset())
                    if self.topology.node(node).kind.is_client
                )
            else:
                clients = entry.responsibility
            covered = frozenset(
                client for client in clients if tree is not None and client in tree.parent
            )
            for client in clients - covered:
                if self.topology.node(client).kind is NodeKind.SUBSCRIBER:
                    self._offline_append(client, message)
            if not covered:
                continue
            # Replay from the holder only while it is still an ancestor of
            # everything owed (repair may have re-parented the subtree away
            # from it); otherwise from the root, which always is.
            inject_at = entry.source
            if (
                inject_at not in self.topology
                or self.is_broker_down(inject_at)
                or tree is None
                or inject_at not in tree.parent
                or any(
                    client != inject_at and not tree.is_downstream(client, inject_at)
                    for client in covered
                )
            ):
                inject_at = root
            if self.is_broker_down(inject_at) or inject_at not in self.topology:
                still.append(entry)
                continue
            self._obs_replayed.inc()
            self._inject(inject_at, message, replay_for=covered, hop=message.hop)
        self._pending.extend(still)

    def _offline_append(self, client: str, message: SimMessage) -> None:
        log = self._offline_logs.get(client)
        if log is None:
            log = EventLog(client)
            self._offline_logs[client] = log
            self._offline_messages[client] = {}
        seq = log.append(message.event.event_id)
        self._offline_messages[client][seq] = message
        self._obs_offline_logged.inc()
        self.disturbed.add(message.event.event_id)

    def _offline_log_uncovered(self, message: SimMessage) -> None:
        """An event entering while some subscribers are cut off goes to
        their offline logs (the paper's reconnect-replay source)."""
        if not self._uncovered:
            return
        for client in self._uncovered.get(message.root, ()):  # post-repair gaps only
            self._offline_append(client, message)

    def _drain_offline(self) -> None:
        trees = self.protocol.context.spanning_trees
        for client, log in self._offline_logs.items():
            backlog = log.entries_after(log.acked)
            if not backlog:
                continue
            broker = self.topology.broker_of(client)
            if self.is_broker_down(broker):
                continue
            messages = self._offline_messages[client]
            only = frozenset((client,))
            for seq, _event_id in backlog:
                message = messages.pop(seq)
                tree = trees.get(message.root)
                if tree is None or client not in tree.parent:
                    messages[seq] = message  # still cut off on this tree
                    continue
                self._obs_offline_replayed.inc()
                self._inject(broker, message, replay_for=only, hop=message.hop)
                log.ack(seq)
            log.collect()

    # ------------------------------------------------------------------
    # Disturbance tracking

    def _bump(self, event_id: int, delta: int) -> None:
        value = self._outstanding.get(event_id, 0) + delta
        if value:
            self._outstanding[event_id] = value
        else:
            self._outstanding.pop(event_id, None)

    def _disturb_in_flight(self) -> None:
        """Any event with copies in the network across a mutation or repair
        may see replay duplicates — exclude it from the ≤1-copy check."""
        self.disturbed.update(self._outstanding)

    def __repr__(self) -> str:
        return (
            f"FaultCoordinator({len(self.plan)} actions, down={sorted(self.down_brokers)}, "
            f"links_down={len(self._down_links)})"
        )


# ----------------------------------------------------------------------
# Invariant checking


class InvariantReport:
    """The two resilience invariants, checked over a finished run.

    ``lost`` — (subscriber, event_id) pairs a live, covered subscriber
    should have received but never did.  ``duplicates`` — (event_id, link,
    count) triples where an *undisturbed* event crossed one link more than
    once.  Both lists must be empty for a run to pass.
    """

    def __init__(
        self,
        lost: List[Tuple[str, int]],
        duplicates: List[Tuple[int, Tuple[str, str], int]],
        events_checked: int,
        expected_deliveries: int,
        copies_checked: int,
        disturbed_events: int,
    ) -> None:
        self.lost = lost
        self.duplicates = duplicates
        self.events_checked = events_checked
        self.expected_deliveries = expected_deliveries
        self.copies_checked = copies_checked
        self.disturbed_events = disturbed_events

    @property
    def ok(self) -> bool:
        return not self.lost and not self.duplicates

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATED"
        return (
            f"invariants {status}: {self.events_checked} events, "
            f"{self.expected_deliveries} expected deliveries, {len(self.lost)} lost; "
            f"{self.copies_checked} undisturbed link copies, "
            f"{len(self.duplicates)} duplicated ({self.disturbed_events} events disturbed)"
        )

    def __repr__(self) -> str:
        return f"InvariantReport({self.summary()})"


def check_invariants(result, coordinator: FaultCoordinator) -> InvariantReport:
    """Check *no event lost to a live subscriber* and *≤1 copy per link*.

    A subscriber expects an event iff one of its subscriptions was active
    when the event was published, the event entered the network, and — at
    end state — the subscriber's broker is alive and the subscriber is
    covered by the event's spanning tree (clients cut off at the end of the
    run are owed the events on reconnect, not during this run).
    """
    topology = coordinator.topology
    context = coordinator.protocol.context
    delivered = {
        (record.client, record.event_id)
        for record in result.deliveries
        if record.matched
    }
    # One matcher per subscription epoch so runtime subscriptions are only
    # expected for events published after they were indexed.
    epochs = []
    for activation, subscriptions in coordinator.subscription_epochs:
        if not subscriptions:
            continue
        engine = create_engine("tree", context.schema, attribute_order=context.attribute_order)
        for subscription in subscriptions:
            engine.insert(subscription)
        epochs.append((activation, engine))
    lost: List[Tuple[str, int]] = []
    expected_count = 0
    events_checked = 0
    for event_id, record in coordinator.events.items():
        if not record.entered:
            continue
        events_checked += 1
        tree = context.spanning_trees.get(record.root)
        if tree is None:
            continue
        expected: Set[str] = set()
        for activation, engine in epochs:
            if activation > record.publish_ticks:
                continue
            expected.update(engine.match(record.event).subscribers)
        for subscriber in expected:
            if subscriber not in topology or subscriber not in tree.parent:
                continue
            broker = topology.broker_of(subscriber)
            if coordinator.is_broker_down(broker):
                continue
            expected_count += 1
            if (subscriber, event_id) not in delivered:
                lost.append((subscriber, event_id))
    duplicates: List[Tuple[int, Tuple[str, str], int]] = []
    copies_checked = 0
    for (event_id, link), count in coordinator.link_copies.items():
        if event_id in coordinator.disturbed:
            continue
        copies_checked += count
        if count > 1:
            duplicates.append((event_id, link, count))
    return InvariantReport(
        sorted(lost),
        sorted(duplicates),
        events_checked,
        expected_count,
        copies_checked,
        len(coordinator.disturbed),
    )
