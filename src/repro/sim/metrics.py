"""Per-broker, per-link and per-delivery statistics for simulation runs.

The quantity Chart 1 turns on is *overload*: "a broker is overloaded when
its input message queue is growing at a rate higher than the broker
processor can handle."  :class:`BrokerStats` keeps periodic queue-length
samples plus utilization, and :meth:`BrokerStats.is_overloaded` implements
the paper's criterion: sustained queue growth over the second half of the
run combined with a saturated processor.

Counting itself lives in the run's :mod:`repro.obs` registry (see
:mod:`repro.sim.runner`); :class:`BrokerStats` remains the overload-criterion
state — plain assignable integers, mirrored into the registry by
:class:`~repro.sim.brokers.SimBroker` — and :class:`SimulationResult`
carries the registry snapshot (:meth:`SimulationResult.counter_snapshot`)
for export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import TICK_US, ticks_to_seconds


class BrokerStats:
    """Counters for one simulated broker."""

    __slots__ = (
        "name",
        "arrivals",
        "processed",
        "busy_ticks",
        "matching_steps",
        "messages_sent",
        "queue_samples",
        "max_queue",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.arrivals = 0
        self.processed = 0
        self.busy_ticks = 0
        self.matching_steps = 0
        self.messages_sent = 0
        self.queue_samples: List[Tuple[int, int]] = []
        self.max_queue = 0

    def record_queue(self, now_ticks: int, length: int) -> None:
        self.queue_samples.append((now_ticks, length))
        if length > self.max_queue:
            self.max_queue = length

    def utilization(self, elapsed_ticks: int) -> float:
        """Fraction of the run the broker's processor was busy."""
        if elapsed_ticks <= 0:
            return 0.0
        return self.busy_ticks / elapsed_ticks

    def is_overloaded(
        self,
        elapsed_ticks: int,
        *,
        queue_threshold: int = 20,
        utilization_threshold: float = 0.95,
    ) -> bool:
        """The paper's overload criterion, made operational.

        Overloaded means the processor is effectively saturated *and* the
        input queue kept growing: the mean queue length over the last third
        of the run exceeds both ``queue_threshold`` and 1.5x the mean over
        the middle third (a queue growing linearly from empty shows a
        tail-to-middle ratio of ~1.67; a stable queue shows ~1.0).
        """
        if self.utilization(elapsed_ticks) < utilization_threshold:
            return False
        if not self.queue_samples:
            return self.max_queue > queue_threshold
        third = max(1, len(self.queue_samples) // 3)
        middle = self.queue_samples[third : 2 * third] or self.queue_samples[:third]
        tail = self.queue_samples[2 * third :] or self.queue_samples[-1:]
        mean_middle = sum(length for _t, length in middle) / len(middle)
        mean_tail = sum(length for _t, length in tail) / len(tail)
        return mean_tail > queue_threshold and mean_tail > 1.5 * max(mean_middle, 1.0)

    def __repr__(self) -> str:
        return (
            f"BrokerStats({self.name!r}, arrivals={self.arrivals}, "
            f"processed={self.processed}, max_queue={self.max_queue})"
        )


class DeliveryRecord:
    """One event handed to one client."""

    __slots__ = (
        "client",
        "event_id",
        "publish_time_ticks",
        "delivery_time_ticks",
        "matched",
        "hop",
    )

    def __init__(
        self,
        client: str,
        event_id: int,
        publish_time_ticks: int,
        delivery_time_ticks: int,
        matched: bool,
        hop: int,
    ) -> None:
        self.client = client
        self.event_id = event_id
        self.publish_time_ticks = publish_time_ticks
        self.delivery_time_ticks = delivery_time_ticks
        self.matched = matched
        self.hop = hop

    @property
    def latency_ticks(self) -> int:
        return self.delivery_time_ticks - self.publish_time_ticks

    @property
    def latency_ms(self) -> float:
        return self.latency_ticks * TICK_US / 1000.0

    def __repr__(self) -> str:
        return (
            f"DeliveryRecord({self.client!r}, event #{self.event_id}, "
            f"{self.latency_ms:.2f} ms, matched={self.matched})"
        )


class SimulationResult:
    """Everything a run produced, with the roll-ups experiments need."""

    def __init__(
        self,
        *,
        elapsed_ticks: int,
        broker_stats: Dict[str, BrokerStats],
        link_messages: Dict[Tuple[str, str], int],
        deliveries: List[DeliveryRecord],
        published_events: int,
        aborted_overloaded: bool = False,
        link_bytes: Optional[Dict[Tuple[str, str], int]] = None,
        metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> None:
        self.elapsed_ticks = elapsed_ticks
        self.broker_stats = broker_stats
        self.link_messages = link_messages
        self.link_bytes = link_bytes if link_bytes is not None else {}
        self.deliveries = deliveries
        self.published_events = published_events
        self.aborted_overloaded = aborted_overloaded
        self._metrics = metrics if metrics is not None else {}

    def counter_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The run's :mod:`repro.obs` registry snapshot — per-link message
        and byte counters, per-broker arrival/processing counters, the
        delivery-latency and queue-depth histograms.  This is the
        machine-readable block ``BENCH_*.json`` artifacts embed; empty when
        the result was built by hand (unit tests)."""
        return dict(self._metrics)

    @property
    def elapsed_seconds(self) -> float:
        return ticks_to_seconds(self.elapsed_ticks)

    def overloaded_brokers(
        self, *, queue_threshold: int = 20, utilization_threshold: float = 0.95
    ) -> List[str]:
        return sorted(
            name
            for name, stats in self.broker_stats.items()
            if stats.is_overloaded(
                self.elapsed_ticks,
                queue_threshold=queue_threshold,
                utilization_threshold=utilization_threshold,
            )
        )

    @property
    def is_overloaded(self) -> bool:
        """Whether the run aborted on runaway queues or any broker met the
        overload criterion."""
        return self.aborted_overloaded or bool(self.overloaded_brokers())

    @property
    def total_broker_messages(self) -> int:
        """Messages processed across all brokers (network load proxy)."""
        return sum(stats.processed for stats in self.broker_stats.values())

    @property
    def total_link_messages(self) -> int:
        return sum(self.link_messages.values())

    @property
    def total_link_bytes(self) -> int:
        """Bytes carried over broker-broker links (header growth included —
        this is where match-first's destination lists cost shows)."""
        return sum(self.link_bytes.values())

    @property
    def matched_deliveries(self) -> List[DeliveryRecord]:
        return [d for d in self.deliveries if d.matched]

    @property
    def wasted_deliveries(self) -> int:
        """Deliveries the client filtered out (pure flooding's waste)."""
        return sum(1 for d in self.deliveries if not d.matched)

    def mean_latency_ms(self, *, matched_only: bool = True) -> Optional[float]:
        records = self.matched_deliveries if matched_only else self.deliveries
        if not records:
            return None
        return sum(r.latency_ms for r in records) / len(records)

    def latency_percentile_ms(
        self, percentile: float, *, matched_only: bool = True
    ) -> Optional[float]:
        """Delivery-latency percentile (nearest-rank), e.g. ``99`` for p99."""
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        records = self.matched_deliveries if matched_only else self.deliveries
        if not records:
            return None
        ordered = sorted(r.latency_ms for r in records)
        rank = max(0, -(-len(ordered) * percentile // 100) - 1)  # ceil - 1
        return ordered[int(rank)]

    def latency_summary_ms(self) -> Dict[str, float]:
        """p50/p95/p99/max of matched-delivery latency (empty dict if none)."""
        if not self.matched_deliveries:
            return {}
        return {
            "p50": self.latency_percentile_ms(50),
            "p95": self.latency_percentile_ms(95),
            "p99": self.latency_percentile_ms(99),
            "max": max(r.latency_ms for r in self.matched_deliveries),
        }

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.published_events} events, "
            f"{len(self.deliveries)} deliveries, "
            f"{self.elapsed_seconds:.3f}s simulated, "
            f"overloaded={self.overloaded_brokers()!r})"
        )
