"""Broker processing-cost model.

The simulator charges each broker CPU time for every message it handles:

* a fixed per-message overhead (parsing / unmarshalling / dispatch),
* a per-matching-step cost — the paper estimates "a time efficient
  implementation can execute a matching step in the order of a few
  microseconds",
* a per-send cost (the "software latency of the communication stack" the
  paper lists as a component of event time), and
* for the match-first baseline, a per-destination-entry cost modelling the
  larger headers it must build, carry and split.

These knobs define *relative* protocol costs; absolute values only shift
every curve.  Defaults are chosen to be consistent with the paper's
narrative (matching cheap, transport comparatively expensive — Section 4.2
observes that transport costs outweigh matching costs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class CostModel:
    """Per-broker CPU costs, in microseconds."""

    per_message_overhead_us: float = 30.0
    per_matching_step_us: float = 3.0
    per_send_us: float = 25.0
    per_destination_entry_us: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "per_message_overhead_us",
            "per_matching_step_us",
            "per_send_us",
            "per_destination_entry_us",
        ):
            if getattr(self, field_name) < 0:
                raise SimulationError(f"{field_name} must be >= 0")

    def service_time_us(
        self,
        *,
        matching_steps: int = 0,
        sends: int = 0,
        destination_entries: int = 0,
    ) -> float:
        """CPU time to process one message with the given work profile."""
        return (
            self.per_message_overhead_us
            + matching_steps * self.per_matching_step_us
            + sends * self.per_send_us
            + destination_entries * self.per_destination_entry_us
        )


#: The defaults used by the chart harnesses.
DEFAULT_COST_MODEL = CostModel()
