"""Simulated clients: Poisson publishers and bursty (ON/OFF) publishers.

"Events arrive at the publishing brokers according to a Poisson
distribution.  The mean arrival rate of published events, which is a key
parameter, is controlled by a user specified parameter."

:class:`PoissonPublisher` draws exponential inter-arrival times;
:class:`BurstyPublisher` implements the ON/OFF (interrupted Poisson) process
the paper's future-work section asks about — alternating exponential ON
periods, during which events arrive at a high rate, and silent OFF periods,
with the same long-run mean rate as a Poisson publisher of equal ``rate``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError
from repro.matching.events import Event
from repro.sim.engine import Simulator, seconds_to_ticks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.runner import NetworkSimulation

#: Produces the next event a publisher publishes.
EventFactory = Callable[[random.Random], Event]


class PoissonPublisher:
    """Publishes ``num_events`` events at exponential inter-arrival times."""

    def __init__(
        self,
        simulator: Simulator,
        network: "NetworkSimulation",
        name: str,
        rate_per_second: float,
        event_factory: EventFactory,
        num_events: int,
        rng: random.Random,
        *,
        start_after_s: float = 0.0,
    ) -> None:
        if rate_per_second <= 0:
            raise SimulationError("publish rate must be positive")
        if num_events < 0:
            raise SimulationError("num_events must be >= 0")
        if start_after_s < 0:
            raise SimulationError("start_after_s must be >= 0")
        self.simulator = simulator
        self.network = network
        self.name = name
        self.rate = rate_per_second
        self.event_factory = event_factory
        self.remaining = num_events
        self.rng = rng
        self.published = 0
        # A delayed start turns the publisher into a flash-crowd source: it
        # stays silent, then fires at full rate from ``start_after_s`` on.
        if self.remaining:
            if start_after_s > 0:
                self.simulator.schedule(
                    seconds_to_ticks(start_after_s), self._schedule_next
                )
            else:
                self._schedule_next()

    def _schedule_next(self) -> None:
        delay_s = self.rng.expovariate(self.rate)
        self.simulator.schedule(max(1, seconds_to_ticks(delay_s)), self._publish_one)

    def _publish_one(self) -> None:
        if self.remaining <= 0:
            return
        event = self.event_factory(self.rng)
        self.network.publish(self.name, event)
        self.published += 1
        self.remaining -= 1
        if self.remaining:
            self._schedule_next()

    def __repr__(self) -> str:
        return f"PoissonPublisher({self.name!r}, rate={self.rate}/s, left={self.remaining})"


class BurstyPublisher:
    """An ON/OFF publisher with the same long-run mean rate.

    During ON periods events arrive at ``rate * burstiness``; ON periods have
    mean length ``on_mean_s`` and OFF periods are sized so the duty cycle is
    ``1 / burstiness``, preserving the long-run mean rate.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: "NetworkSimulation",
        name: str,
        rate_per_second: float,
        event_factory: EventFactory,
        num_events: int,
        rng: random.Random,
        *,
        burstiness: float = 5.0,
        on_mean_s: float = 0.2,
    ) -> None:
        if rate_per_second <= 0:
            raise SimulationError("publish rate must be positive")
        if burstiness < 1.0:
            raise SimulationError("burstiness must be >= 1 (1 = plain Poisson)")
        if on_mean_s <= 0:
            raise SimulationError("on_mean_s must be positive")
        self.simulator = simulator
        self.network = network
        self.name = name
        self.rate = rate_per_second
        self.burstiness = burstiness
        self.on_mean_s = on_mean_s
        self.off_mean_s = on_mean_s * (burstiness - 1.0)
        self.event_factory = event_factory
        self.remaining = num_events
        self.rng = rng
        self.published = 0
        self._on = True
        self._period_ends_at = 0
        if self.remaining:
            self._start_period()

    def _start_period(self) -> None:
        mean = self.on_mean_s if self._on else self.off_mean_s
        length_s = self.rng.expovariate(1.0 / mean) if mean > 0 else 0.0
        self._period_ends_at = self.simulator.now + max(1, seconds_to_ticks(length_s))
        if self._on:
            self._schedule_next_event()
        else:
            self.simulator.schedule_at(self._period_ends_at, self._flip)

    def _flip(self) -> None:
        if self.remaining <= 0:
            return
        self._on = not self._on
        self._start_period()

    def _schedule_next_event(self) -> None:
        burst_rate = self.rate * self.burstiness
        delay_s = self.rng.expovariate(burst_rate)
        arrival = self.simulator.now + max(1, seconds_to_ticks(delay_s))
        if arrival >= self._period_ends_at:
            self.simulator.schedule_at(self._period_ends_at, self._flip)
            return
        self.simulator.schedule_at(arrival, self._publish_one)

    def _publish_one(self) -> None:
        if self.remaining <= 0:
            return
        event = self.event_factory(self.rng)
        self.network.publish(self.name, event)
        self.published += 1
        self.remaining -= 1
        if self.remaining:
            self._schedule_next_event()

    def __repr__(self) -> str:
        return (
            f"BurstyPublisher({self.name!r}, rate={self.rate}/s, "
            f"burstiness={self.burstiness}, left={self.remaining})"
        )
