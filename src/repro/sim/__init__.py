"""Discrete-event network simulator (Section 4.1): virtual clock in 12 µs
ticks, single-server broker queues, hop-delay links, Poisson and bursty
publishers, overload detection and saturation search."""

from repro.sim.brokers import SimBroker
from repro.sim.clients import BurstyPublisher, EventFactory, PoissonPublisher
from repro.sim.cost import DEFAULT_COST_MODEL, CostModel
from repro.sim.engine import (
    TICK_US,
    Simulator,
    ms_to_ticks,
    seconds_to_ticks,
    ticks_to_ms,
    ticks_to_seconds,
    us_to_ticks,
)
from repro.sim.faults import (
    FaultAction,
    FaultCoordinator,
    FaultPlan,
    InvariantReport,
    check_invariants,
)
from repro.sim.metrics import BrokerStats, DeliveryRecord, SimulationResult
from repro.sim.runner import NetworkSimulation
from repro.sim.saturation import (
    RateProbe,
    SaturationSearchResult,
    find_saturation_rate,
)

__all__ = [
    "BrokerStats",
    "BurstyPublisher",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DeliveryRecord",
    "EventFactory",
    "FaultAction",
    "FaultCoordinator",
    "FaultPlan",
    "InvariantReport",
    "NetworkSimulation",
    "check_invariants",
    "PoissonPublisher",
    "RateProbe",
    "SaturationSearchResult",
    "SimBroker",
    "SimulationResult",
    "Simulator",
    "TICK_US",
    "find_saturation_rate",
    "ms_to_ticks",
    "seconds_to_ticks",
    "ticks_to_ms",
    "ticks_to_seconds",
    "us_to_ticks",
]
