"""Saturation-point search — the machinery behind Chart 1.

Chart 1 plots, for each protocol and subscription count, the event publish
rate at which the broker network becomes overloaded.  Given a factory that
builds-and-runs a simulation at a requested aggregate publish rate, the
search brackets the saturation rate (geometric ramp-up until overload) and
then bisects to the requested resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.metrics import SimulationResult

#: Builds and runs a simulation at the given aggregate publish rate
#: (events/second across all publishers), returning its result.
RateProbe = Callable[[float], SimulationResult]


@dataclass(frozen=True)
class SaturationSearchResult:
    """Outcome of a saturation search.

    ``saturation_rate`` is the geometric midpoint of the final bracket
    ``(highest_ok_rate, lowest_overloaded_rate)``; ``probes`` records every
    ``(rate, overloaded)`` probe for inspection.
    """

    saturation_rate: float
    highest_ok_rate: float
    lowest_overloaded_rate: float
    probes: Tuple[Tuple[float, bool], ...]


def find_saturation_rate(
    probe: RateProbe,
    *,
    initial_rate: float = 50.0,
    max_rate: float = 1e6,
    relative_resolution: float = 0.15,
    max_probes: int = 24,
) -> SaturationSearchResult:
    """Bracket and bisect the lowest overloading publish rate.

    Raises :class:`SimulationError` if the network is already overloaded at
    a vanishing rate or never overloads below ``max_rate``.
    """
    if initial_rate <= 0:
        raise SimulationError("initial_rate must be positive")
    probes: List[Tuple[float, bool]] = []

    def run(rate: float) -> bool:
        overloaded = probe(rate).is_overloaded
        probes.append((rate, overloaded))
        return overloaded

    low: Optional[float] = None  # highest rate seen NOT overloaded
    high: Optional[float] = None  # lowest rate seen overloaded
    rate = initial_rate
    while len(probes) < max_probes:
        if run(rate):
            high = rate
            break
        low = rate
        rate *= 2.0
        if rate > max_rate:
            raise SimulationError(
                f"no overload up to {max_rate} events/s — raise max_rate or "
                "check the overload thresholds"
            )
    if high is None:
        raise SimulationError("probe budget exhausted while ramping up")
    if low is None:
        # Overloaded at the very first rate; bisect down toward zero.
        low = high / 64.0
        if run(low):
            raise SimulationError(
                f"network overloaded even at {low} events/s — the topology "
                "cannot sustain this workload at any measurable rate"
            )
    while high / low > 1.0 + relative_resolution and len(probes) < max_probes:
        middle = (low * high) ** 0.5
        if run(middle):
            high = middle
        else:
            low = middle
    return SaturationSearchResult(
        saturation_rate=(low * high) ** 0.5,
        highest_ok_rate=low,
        lowest_overloaded_rate=high,
        probes=tuple(probes),
    )
