"""Wiring brokers, links, clients and a protocol into one simulation.

:class:`NetworkSimulation` owns the event engine, one :class:`SimBroker` per
topology broker, the link model (each transmit schedules an arrival after the
link's hop delay), delivery recording, and a periodic queue-length sampler
(for overload detection).  Publishers are attached with
:meth:`add_poisson_publisher` / :meth:`add_bursty_publisher`; then
:meth:`run` drives the clock and returns a
:class:`~repro.sim.metrics.SimulationResult`.

Counting goes through a per-run :class:`~repro.obs.MetricsRegistry` (always
enabled — these counters *are* the experiment's data, unlike the optional
global registry): events published, messages and bytes per link, deliveries
and their latency histogram, queue-depth samples.  The registry snapshot
rides on the returned result (:meth:`SimulationResult.counter_snapshot`),
which is what ``BENCH_*.json`` artifacts embed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.matching.events import Event
from repro.obs import Counter, MetricsRegistry
from repro.protocols.base import RoutingProtocol, SimMessage
from repro.sim.brokers import SimBroker
from repro.sim.clients import BurstyPublisher, EventFactory, PoissonPublisher
from repro.sim.cost import DEFAULT_COST_MODEL, CostModel
from repro.sim.engine import Simulator, ms_to_ticks, seconds_to_ticks
from repro.sim.faults import FaultCoordinator, FaultPlan
from repro.sim.metrics import DeliveryRecord, SimulationResult
from repro.matching.predicates import Subscription
from repro.network.topology import NodeKind, Topology

#: Delivery-latency histogram boundaries (milliseconds).
LATENCY_BUCKETS_MS = (0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

#: Queue-depth histogram boundaries (messages waiting at sample time).
QUEUE_DEPTH_BUCKETS = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500)


class NetworkSimulation:
    """A timed run of one protocol over one topology (see module docstring)."""

    def __init__(
        self,
        topology: Topology,
        protocol: RoutingProtocol,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        seed: int = 0,
        queue_sample_interval_ms: float = 50.0,
        registry: Optional[MetricsRegistry] = None,
        batch_size: int = 1,
        fault_plan: Optional[FaultPlan] = None,
        repair_delay_ms: float = 5.0,
        annotation_lag_ms: float = 0.0,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.protocol = protocol
        self.cost_model = cost_model
        #: Messages each broker drains per service period (1 = the paper's
        #: one-at-a-time pipeline; >1 enables the batched matching path).
        self.batch_size = batch_size
        self.simulator = Simulator()
        self.rng = random.Random(seed)
        #: The run's own always-enabled registry (pass one in to share).
        self.registry = registry if registry is not None else MetricsRegistry(enabled=True)
        self._obs = self.registry.scope("sim")
        self._obs_published = self._obs.counter("events.published")
        self._obs_deliveries = self._obs.counter("deliveries.total")
        self._obs_matched = self._obs.counter("deliveries.matched")
        self._obs_latency = self._obs.histogram("delivery.latency_ms", LATENCY_BUCKETS_MS)
        self._obs_queue_depth = self._obs.histogram("broker.queue_depth", QUEUE_DEPTH_BUCKETS)
        # Per-link counters, cached by (src, dst) so transmit() pays one
        # plain dict lookup, not a label-string render.
        self._link_counters: Dict[Tuple[str, str], Tuple[Counter, Counter]] = {}
        self.brokers: Dict[str, SimBroker] = {
            name: SimBroker(
                self.simulator, name, protocol, cost_model, self, batch_size=batch_size
            )
            for name in topology.brokers()
        }
        self.deliveries: List[DeliveryRecord] = []
        self._publishers: List[object] = []
        self._sample_interval_ticks = max(1, ms_to_ticks(queue_sample_interval_ms))
        self._sampling = False
        self._abort_queue_threshold: Optional[int] = None
        self._aborted_overloaded = False
        #: Fault injection (failures, repairs, replay).  ``None`` keeps the
        #: healthy fast path byte-for-byte; pass an empty FaultPlan to arm
        #: the invariant bookkeeping without injecting anything.
        self.faults: Optional[FaultCoordinator] = None
        if fault_plan is not None:
            self.faults = FaultCoordinator(
                self,
                fault_plan,
                repair_delay_ms=repair_delay_ms,
                annotation_lag_ms=annotation_lag_ms,
            )

    # ------------------------------------------------------------------
    # Wiring used by brokers and clients

    def publish(self, publisher: str, event: Event) -> None:
        """Inject an event from a publisher client (crosses its client link,
        then joins the broker's input queue)."""
        node = self.topology.node(publisher)
        if node.kind is not NodeKind.PUBLISHER:
            raise SimulationError(f"{publisher!r} is not a publisher client")
        broker = self.topology.broker_of(publisher)
        link = self.topology.link_between(publisher, broker)
        message = self.protocol.make_message(
            event, broker, publish_time_ticks=self.simulator.now
        )
        self._obs_published.inc()
        if self.faults is not None:
            if not self.faults.on_publish(publisher, broker, message):
                return  # parked in the publisher log until the broker recovers
            self.simulator.schedule(
                ms_to_ticks(link.latency_ms),
                lambda: self._guarded_arrival(broker, message),
            )
            return
        self.simulator.schedule(
            ms_to_ticks(link.latency_ms), lambda: self.brokers[broker].receive(message)
        )

    @property
    def published_events(self) -> int:
        return self._obs_published.value

    @property
    def link_messages(self) -> Dict[Tuple[str, str], int]:
        """Messages carried per broker-broker link (counter-backed view)."""
        return {key: pair[0].value for key, pair in self._link_counters.items()}

    @property
    def link_bytes(self) -> Dict[Tuple[str, str], int]:
        """Bytes carried per broker-broker link (counter-backed view)."""
        return {key: pair[1].value for key, pair in self._link_counters.items()}

    def transmit(self, source: str, target: str, message: SimMessage) -> None:
        """Send a message over the broker-broker link (adds hop delay)."""
        if self.faults is not None and not self.faults.on_transmit(source, target, message):
            return  # parked at the failure boundary, replayed after repair
        link = self.topology.link_between(source, target)
        counters = self._link_counters.get((source, target))
        if counters is None:
            counters = (
                self._obs.counter("link.messages", src=source, dst=target),
                self._obs.counter("link.bytes", src=source, dst=target),
            )
            self._link_counters[(source, target)] = counters
        counters[0].inc()
        counters[1].inc(message.wire_size_bytes)
        if self.faults is not None:
            self.simulator.schedule(
                ms_to_ticks(link.latency_ms),
                lambda: self._guarded_link_arrival(source, target, message),
            )
            return
        self.simulator.schedule(
            ms_to_ticks(link.latency_ms), lambda: self.brokers[target].receive(message)
        )

    def _guarded_arrival(self, broker: str, message: SimMessage) -> None:
        """Arrival of a publisher injection under fault injection."""
        assert self.faults is not None
        if self.faults.is_broker_down(broker):
            self.faults.on_arrival_lost(message)
            return
        self.brokers[broker].receive(message)

    def _guarded_link_arrival(self, source: str, target: str, message: SimMessage) -> None:
        """Arrival over a broker-broker link under fault injection: a copy
        in flight when the link or target died is lost (and replayed from
        the sender's log after repair)."""
        assert self.faults is not None
        if self.faults.is_broker_down(target) or not self.topology.has_link(source, target):
            self.faults.on_arrival_lost(message)
            return
        self.brokers[target].receive(message)

    def deliver(self, broker: str, client: str, message: SimMessage, *, matched: bool) -> None:
        """Send the event over the client link and record its arrival."""
        link = self.topology.link_between(broker, client)
        arrival = self.simulator.now + ms_to_ticks(link.latency_ms)

        def record() -> None:
            delivery = DeliveryRecord(
                client,
                message.event.event_id,
                message.publish_time_ticks,
                arrival,
                matched,
                message.hop,
            )
            self.deliveries.append(delivery)
            self._obs_deliveries.inc()
            if matched:
                self._obs_matched.inc()
            self._obs_latency.observe(delivery.latency_ms)

        self.simulator.schedule_at(arrival, record)

    # ------------------------------------------------------------------
    # Publisher attachment

    def add_poisson_publisher(
        self,
        publisher: str,
        rate_per_second: float,
        event_factory: EventFactory,
        num_events: int,
        *,
        start_after_s: float = 0.0,
    ) -> PoissonPublisher:
        process = PoissonPublisher(
            self.simulator,
            self,
            publisher,
            rate_per_second,
            event_factory,
            num_events,
            random.Random(self.rng.randrange(2**63)),
            start_after_s=start_after_s,
        )
        self._publishers.append(process)
        return process

    def add_bursty_publisher(
        self,
        publisher: str,
        rate_per_second: float,
        event_factory: EventFactory,
        num_events: int,
        *,
        burstiness: float = 5.0,
        on_mean_s: float = 0.2,
    ) -> BurstyPublisher:
        process = BurstyPublisher(
            self.simulator,
            self,
            publisher,
            rate_per_second,
            event_factory,
            num_events,
            random.Random(self.rng.randrange(2**63)),
            burstiness=burstiness,
            on_mean_s=on_mean_s,
        )
        self._publishers.append(process)
        return process

    def add_subscription_at(self, at_s: float, subscription: Subscription) -> None:
        """Register a subscription mid-run (thundering herds, late joiners).

        Under fault injection the coordinator defers the insert while a
        repair is pending, so the subscription indexes against settled
        routing state; the invariant checker only expects it for events
        published after it was actually indexed."""

        def apply() -> None:
            if self.faults is not None:
                self.faults.add_subscription(subscription)
            else:
                self.protocol.add_subscription(subscription)

        self.simulator.schedule_at(seconds_to_ticks(at_s), apply)

    # ------------------------------------------------------------------
    # Running

    def _sample_queues(self) -> None:
        for broker in self.brokers.values():
            broker.stats.record_queue(self.simulator.now, broker.queue_length)
            self._obs_queue_depth.observe(broker.queue_length)
            if (
                self._abort_queue_threshold is not None
                and broker.queue_length > self._abort_queue_threshold
            ):
                # The queue is far beyond anything a stable network shows:
                # declare overload and stop burning CPU on a doomed run.
                self._aborted_overloaded = True
                self.simulator.request_stop()
        if self._sampling:
            self.simulator.schedule(self._sample_interval_ticks, self._sample_queues)

    def run(
        self,
        *,
        max_seconds: Optional[float] = None,
        drain: bool = True,
        abort_on_queue: Optional[int] = None,
    ) -> SimulationResult:
        """Run the simulation.

        With ``max_seconds`` the clock is capped (an overloaded network never
        drains, so saturation probes must cap); ``drain=False`` stops exactly
        at the cap even if messages remain queued.  Without a cap the run
        ends when all traffic has drained.  ``abort_on_queue`` ends the run
        (marking the result overloaded) as soon as any broker's input queue
        exceeds the given length — the fast path for saturation probes.
        """
        self._abort_queue_threshold = abort_on_queue
        self._sampling = True
        self._sample_queues()
        if max_seconds is not None:
            horizon = seconds_to_ticks(max_seconds)
            self.simulator.run(until_ticks=horizon)
            self._sampling = False
            if drain and not any(b.queue for b in self.brokers.values()):
                # Let in-flight messages finish when nothing is backlogged.
                self.simulator.run()
        else:
            self._sampling = False
            self.simulator.run()
            # One final sample so overload detection sees the drained state.
            for broker in self.brokers.values():
                broker.stats.record_queue(self.simulator.now, broker.queue_length)
        return SimulationResult(
            elapsed_ticks=self.simulator.now,
            broker_stats={name: b.stats for name, b in self.brokers.items()},
            link_messages=dict(self.link_messages),
            link_bytes=dict(self.link_bytes),
            deliveries=list(self.deliveries),
            published_events=self.published_events,
            aborted_overloaded=self._aborted_overloaded,
            metrics=self.registry.snapshot(),
        )

    def __repr__(self) -> str:
        return (
            f"NetworkSimulation({self.protocol.name}, {len(self.brokers)} brokers, "
            f"now={self.simulator.now})"
        )
