"""The simulated broker: a single-server FIFO queue over the event engine.

Each broker models the paper's processing pipeline: a message "spends time
traversing a link (hop delay), waiting at an incoming broker queue, getting
matched, and being sent (software latency of the communication stack)".

Arriving messages join the input queue; the (single) processor serves them
FIFO.  Service time comes from the :class:`~repro.sim.cost.CostModel` applied
to the protocol's :class:`~repro.protocols.base.Decision` for the message.
When service completes, forwards and deliveries are handed back to the
network (which adds hop delays) and the next queued message starts.

With ``batch_size > 1`` the processor drains up to that many queued messages
per service period and decides them together through the protocol's
``handle_batch`` (identical per-message decisions; the batch kernels only
make them cheaper).  Service ticks are still charged per message from the
cost model and summed, so throughput accounting is unchanged — what batching
models is the *coalescing* of matching work and sends: all of the batch's
forwards leave when the batch completes, trading per-message latency for
matcher amortization exactly like the prototype broker's ingest draining.
``batch_size=1`` (the default) preserves the original one-at-a-time timing
bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List

from repro.protocols.base import Decision, RoutingProtocol, SimMessage
from repro.sim.cost import CostModel
from repro.sim.engine import Simulator, us_to_ticks
from repro.sim.metrics import BrokerStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.runner import NetworkSimulation


class SimBroker:
    """One broker's queue + processor (see module docstring)."""

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        protocol: RoutingProtocol,
        cost_model: CostModel,
        network: "NetworkSimulation",
        *,
        batch_size: int = 1,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.simulator = simulator
        self.name = name
        self.protocol = protocol
        self.cost_model = cost_model
        self.network = network
        self.batch_size = batch_size
        self.queue: Deque[SimMessage] = deque()
        self.busy = False
        #: Messages popped for the in-progress service period — what the
        #: fault layer loses when this broker dies mid-service.
        self.in_service: List[SimMessage] = []
        self.stats = BrokerStats(name)
        # Per-broker instruments in the run's registry (the exported view of
        # the same quantities BrokerStats keeps for the overload criterion).
        obs = network.registry.scope("sim.broker")
        self._obs_arrivals = obs.counter("arrivals", broker=name)
        self._obs_processed = obs.counter("processed", broker=name)
        self._obs_matching_steps = obs.counter("matching_steps", broker=name)
        self._obs_messages_sent = obs.counter("messages_sent", broker=name)
        self._obs_busy_ticks = obs.counter("busy_ticks", broker=name)

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def receive(self, message: SimMessage) -> None:
        """A message arrives on some incoming link (called by the network at
        the arrival instant)."""
        self.stats.arrivals += 1
        self._obs_arrivals.inc()
        self.queue.append(message)
        if len(self.queue) > self.stats.max_queue:
            self.stats.max_queue = len(self.queue)
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        self.busy = True
        if self.batch_size == 1:
            messages = [self.queue.popleft()]
            decisions = [self.protocol.handle(self.name, messages[0])]
        else:
            count = min(self.batch_size, len(self.queue))
            messages = [self.queue.popleft() for _ in range(count)]
            decisions = self.protocol.handle_batch(self.name, messages)
        self.in_service = messages
        # Service ticks are charged per message and summed — batching changes
        # who pays the matcher (the batch kernel), not what the cost model
        # charges for the decisions.
        service_ticks = 0
        for decision in decisions:
            service_us = self.cost_model.service_time_us(
                matching_steps=decision.matching_steps,
                sends=decision.send_count,
                destination_entries=decision.destination_entries,
            )
            service_ticks += max(1, us_to_ticks(service_us))
            self.stats.matching_steps += decision.matching_steps
            self._obs_matching_steps.inc(decision.matching_steps)
        self.stats.busy_ticks += service_ticks
        self._obs_busy_ticks.inc(service_ticks)
        self.simulator.schedule(service_ticks, lambda: self._finish(messages, decisions))

    def _finish(self, messages: List[SimMessage], decisions: List[Decision]) -> None:
        faults = self.network.faults
        if faults is not None and faults.is_broker_down(self.name):
            # The broker died mid-service: the batch is annihilated, its
            # sends never happen (the fault layer replays from its logs).
            faults.on_service_annihilated(messages)
            self.in_service = []
            self.busy = False
            return
        for message, decision in zip(messages, decisions):
            self.stats.processed += 1
            self.stats.messages_sent += decision.send_count
            self._obs_processed.inc()
            self._obs_messages_sent.inc(decision.send_count)
            matched = set(decision.matched_deliveries)
            for neighbor, outgoing in decision.sends:
                self.network.transmit(self.name, neighbor, outgoing)
            for client in decision.deliveries:
                self.network.deliver(self.name, client, message, matched=client in matched)
            if faults is not None:
                faults.on_processed(self.name, message)
        self.in_service = []
        self.busy = False
        if self.queue:
            self._start_next()

    def __repr__(self) -> str:
        return f"SimBroker({self.name!r}, queue={len(self.queue)}, busy={self.busy})"
