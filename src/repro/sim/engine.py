"""Discrete-event simulation core.

The paper measures time in "ticks" of a virtual clock, each tick about 12
microseconds.  The engine keeps the same convention: simulation time is an
integer number of ticks, with helpers to convert from the milliseconds used
in topology hop delays and the microseconds used in broker cost models.

:class:`Simulator` is a minimal but complete event-driven engine: a priority
queue of ``(time, sequence, callback)`` entries, `schedule`/`schedule_at`,
and a `run` loop with an optional horizon.  Everything in :mod:`repro.sim`
(brokers, links, clients) is plain callbacks over this engine — no threads,
fully deterministic given a seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Microseconds per virtual-clock tick (from the paper: "each tick
#: corresponding to about 12 microseconds").
TICK_US = 12.0


def us_to_ticks(us: float) -> int:
    """Convert microseconds to whole ticks (rounded, at least 0)."""
    if us < 0:
        raise SimulationError(f"negative duration: {us} us")
    return max(0, round(us / TICK_US))


def ms_to_ticks(ms: float) -> int:
    """Convert milliseconds to whole ticks."""
    return us_to_ticks(ms * 1000.0)


def ticks_to_ms(ticks: int) -> float:
    """Convert ticks back to milliseconds (for reporting)."""
    return ticks * TICK_US / 1000.0


def ticks_to_seconds(ticks: int) -> float:
    return ticks * TICK_US / 1e6


def seconds_to_ticks(seconds: float) -> int:
    return us_to_ticks(seconds * 1e6)


class Simulator:
    """A deterministic event-driven simulator over integer ticks."""

    def __init__(self) -> None:
        self.now: int = 0
        self._sequence = itertools.count()
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._processed_events = 0
        self._stop_requested = False

    def schedule(self, delay_ticks: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay_ticks`` from now."""
        if delay_ticks < 0:
            raise SimulationError(f"cannot schedule in the past (delay {delay_ticks})")
        self.schedule_at(self.now + delay_ticks, callback)

    def schedule_at(self, time_ticks: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``time_ticks``."""
        if time_ticks < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ticks}, now is {self.now}"
            )
        heapq.heappush(self._queue, (time_ticks, next(self._sequence), callback))

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed callbacks."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Total callbacks executed so far."""
        return self._processed_events

    def request_stop(self) -> None:
        """Make :meth:`run` return after the current callback (used by probes
        that detect overload early and have no reason to keep simulating)."""
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def run(self, until_ticks: Optional[int] = None) -> int:
        """Process events in time order.

        With ``until_ticks`` the clock stops there (events scheduled later
        stay queued); without it the simulation drains completely.  Returns
        the final clock value.  A :meth:`request_stop` from inside a callback
        ends the run immediately.
        """
        self._stop_requested = False
        while self._queue:
            if self._stop_requested:
                return self.now
            time_ticks, _seq, callback = self._queue[0]
            if until_ticks is not None and time_ticks > until_ticks:
                self.now = until_ticks
                return self.now
            heapq.heappop(self._queue)
            self.now = time_ticks
            self._processed_events += 1
            callback()
        if until_ticks is not None:
            self.now = max(self.now, until_ticks)
        return self.now

    def __repr__(self) -> str:
        return f"Simulator(now={self.now}, pending={self.pending})"
