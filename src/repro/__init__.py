"""Reproduction of "An Efficient Multicast Protocol for Content-Based
Publish-Subscribe Systems" (Banavar et al., ICDCS 1999) — the Gryphon link
matching protocol, with the full substrate it needs: a content-based matching
engine, a broker-network model, a discrete-event simulator, and a prototype
broker.

Public API highlights
---------------------
* :mod:`repro.matching` — event schemas, predicates, the Parallel Search Tree.
* :mod:`repro.core` — trits, annotations, masks, the link-matching router.
* :mod:`repro.network` — topologies, routing tables, spanning trees.
* :mod:`repro.sim` / :mod:`repro.protocols` — the network simulator and the
  link-matching / flooding / match-first protocols it compares.
* :mod:`repro.workload` — the paper's random workload generators.
* :mod:`repro.broker` — the Section 4.2 prototype broker.
* :mod:`repro.experiments` — harnesses that regenerate Charts 1-3.
"""

__version__ = "1.0.0"

from repro.core import (  # noqa: E402 (re-exports after module docstring)
    ContentRoutedNetwork,
    ContentRouter,
    DeliveryTrace,
    LinkMatcher,
    Trit,
    TritVector,
)
from repro.matching import (  # noqa: E402
    Event,
    EventSchema,
    FactoredMatcher,
    ParallelSearchTree,
    Predicate,
    SearchDag,
    Subscription,
    parse_predicate,
    stock_trade_schema,
    uniform_schema,
)
from repro.network import Topology, figure6_topology  # noqa: E402

__all__ = [
    "ContentRoutedNetwork",
    "ContentRouter",
    "DeliveryTrace",
    "Event",
    "EventSchema",
    "FactoredMatcher",
    "LinkMatcher",
    "ParallelSearchTree",
    "Predicate",
    "SearchDag",
    "Subscription",
    "Topology",
    "Trit",
    "TritVector",
    "figure6_topology",
    "parse_predicate",
    "stock_trade_schema",
    "uniform_schema",
    "__version__",
]
