"""Transport abstraction plus the in-memory implementation.

The prototype broker is transport-agnostic: it talks to
:class:`Connection` objects (send payload bytes, receive payload bytes via a
callback) obtained from a :class:`Transport` (listen on an endpoint /
connect to one).  Two implementations ship:

* :class:`InMemoryTransport` (here) — all endpoints live in one process and
  one :class:`InMemoryHub`; message delivery is deferred into a FIFO the
  test (or example) drains with :meth:`InMemoryHub.pump`.  Fully
  deterministic, no threads, ideal for tests and for measuring matching
  throughput without kernel noise.
* :class:`repro.broker.tcp.TcpTransport` — real sockets, a receiver thread
  per connection and the paper's outgoing-queue + sender-thread-pool design.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import ConnectionClosedError, TransportError

#: Called with each received payload.
MessageHandler = Callable[[bytes], None]
#: Called when the peer closes.
CloseHandler = Callable[[], None]
#: Called by a listener with each newly accepted connection.
AcceptHandler = Callable[["Connection"], None]


class Connection(abc.ABC):
    """One bidirectional message channel (already framed: whole payloads)."""

    def __init__(self) -> None:
        self.on_message: Optional[MessageHandler] = None
        self.on_close: Optional[CloseHandler] = None

    def start(self) -> None:
        """Begin receiving.  Call after attaching ``on_message``/``on_close``.

        A no-op for transports that deliver via an external pump (in-memory);
        socket transports start their receiver thread here.
        """

    @abc.abstractmethod
    def send(self, payload: bytes) -> None:
        """Queue a payload for asynchronous delivery to the peer."""

    @abc.abstractmethod
    def close(self) -> None:
        """Close both directions; the peer's ``on_close`` fires."""

    @property
    @abc.abstractmethod
    def is_open(self) -> bool: ...


class Listener(abc.ABC):
    """An open server endpoint; close to stop accepting."""

    @abc.abstractmethod
    def close(self) -> None: ...


class Transport(abc.ABC):
    """Factory for listeners and outbound connections."""

    @abc.abstractmethod
    def listen(self, endpoint: str, on_accept: AcceptHandler) -> Listener: ...

    @abc.abstractmethod
    def connect(self, endpoint: str) -> Connection: ...


# ----------------------------------------------------------------------
# In-memory implementation


class InMemoryHub:
    """The shared switchboard for in-process endpoints.

    ``send`` enqueues ``(connection, payload)`` pairs; :meth:`pump` delivers
    them in order until quiescent.  Deferring delivery (instead of calling
    handlers inline) avoids unbounded recursion when brokers react to
    messages by sending more messages.
    """

    def __init__(self) -> None:
        self._listeners: Dict[str, AcceptHandler] = {}
        self._pending: Deque[Tuple["InMemoryConnection", Optional[bytes]]] = deque()
        self._pumping = False

    def register_listener(self, endpoint: str, on_accept: AcceptHandler) -> None:
        if endpoint in self._listeners:
            raise TransportError(f"endpoint {endpoint!r} is already listening")
        self._listeners[endpoint] = on_accept

    def unregister_listener(self, endpoint: str) -> None:
        self._listeners.pop(endpoint, None)

    def dial(self, endpoint: str) -> "InMemoryConnection":
        on_accept = self._listeners.get(endpoint)
        if on_accept is None:
            raise TransportError(f"nothing is listening on {endpoint!r}")
        near = InMemoryConnection(self)
        far = InMemoryConnection(self)
        near.peer = far
        far.peer = near
        on_accept(far)
        return near

    def enqueue(self, target: "InMemoryConnection", payload: Optional[bytes]) -> None:
        """``payload=None`` is the close notification."""
        self._pending.append((target, payload))

    def pump(self, max_messages: Optional[int] = None) -> int:
        """Deliver queued messages in order; returns how many were delivered.

        Re-entrant calls (a handler that pumps) are flattened into the outer
        pump to keep ordering sane.
        """
        if self._pumping:
            return 0
        self._pumping = True
        delivered = 0
        try:
            while self._pending:
                if max_messages is not None and delivered >= max_messages:
                    break
                target, payload = self._pending.popleft()
                delivered += 1
                if payload is None:
                    target._handle_close()
                else:
                    target._handle_message(payload)
        finally:
            self._pumping = False
        return delivered

    @property
    def pending(self) -> int:
        return len(self._pending)


class InMemoryConnection(Connection):
    """One side of an in-memory channel."""

    def __init__(self, hub: InMemoryHub) -> None:
        super().__init__()
        self.hub = hub
        self.peer: Optional["InMemoryConnection"] = None
        self._open = True
        self.sent_count = 0

    def send(self, payload: bytes) -> None:
        if not self._open or self.peer is None:
            raise ConnectionClosedError("connection is closed")
        if not isinstance(payload, (bytes, bytearray)):
            raise TransportError(f"payload must be bytes, got {type(payload).__name__}")
        self.sent_count += 1
        self.hub.enqueue(self.peer, bytes(payload))

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        if self.peer is not None:
            self.hub.enqueue(self.peer, None)

    @property
    def is_open(self) -> bool:
        return self._open

    def _handle_message(self, payload: bytes) -> None:
        if self._open and self.on_message is not None:
            self.on_message(payload)

    def _handle_close(self) -> None:
        if not self._open:
            return
        self._open = False
        if self.on_close is not None:
            self.on_close()


class _InMemoryListener(Listener):
    def __init__(self, hub: InMemoryHub, endpoint: str) -> None:
        self.hub = hub
        self.endpoint = endpoint

    def close(self) -> None:
        self.hub.unregister_listener(self.endpoint)


class InMemoryTransport(Transport):
    """Transport over a shared :class:`InMemoryHub`."""

    def __init__(self, hub: Optional[InMemoryHub] = None) -> None:
        self.hub = hub if hub is not None else InMemoryHub()

    def listen(self, endpoint: str, on_accept: AcceptHandler) -> Listener:
        self.hub.register_listener(endpoint, on_accept)
        return _InMemoryListener(self.hub, endpoint)

    def connect(self, endpoint: str) -> Connection:
        return self.hub.dial(endpoint)

    def pump(self, max_messages: Optional[int] = None) -> int:
        """Convenience passthrough to the hub."""
        return self.hub.pump(max_messages)
