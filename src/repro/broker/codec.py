"""Binary marshalling for events and primitive wire fields.

The prototype broker's event parser "first parses a received event, then
un-marshals it according to the pre-defined event schema" — events travel as
compact schema-ordered binary tuples, not self-describing documents:

* ``STRING`` — u16 length + UTF-8 bytes,
* ``INTEGER`` — signed 64-bit big-endian,
* ``FLOAT`` / ``DOLLAR`` — IEEE-754 double,
* ``BOOLEAN`` — one byte.

:class:`ByteWriter` / :class:`ByteReader` are the shared primitives the
message codec (:mod:`repro.broker.messages`) builds on.  All multi-byte
integers are big-endian ("network order").
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import CodecError
from repro.matching.events import Event
from repro.matching.schema import AttributeType, AttributeValue, EventSchema

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


class ByteWriter:
    """Append-only binary buffer with typed writes."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def u8(self, value: int) -> "ByteWriter":
        self._chunks.append(_U8.pack(value))
        return self

    def u16(self, value: int) -> "ByteWriter":
        self._chunks.append(_U16.pack(value))
        return self

    def u32(self, value: int) -> "ByteWriter":
        self._chunks.append(_U32.pack(value))
        return self

    def u64(self, value: int) -> "ByteWriter":
        self._chunks.append(_U64.pack(value))
        return self

    def i64(self, value: int) -> "ByteWriter":
        self._chunks.append(_I64.pack(value))
        return self

    def f64(self, value: float) -> "ByteWriter":
        self._chunks.append(_F64.pack(value))
        return self

    def boolean(self, value: bool) -> "ByteWriter":
        return self.u8(1 if value else 0)

    def string(self, value: str) -> "ByteWriter":
        data = value.encode("utf-8")
        if len(data) > 0xFFFF:
            raise CodecError(f"string too long to marshal ({len(data)} bytes)")
        self.u16(len(data))
        self._chunks.append(data)
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self._chunks.append(data)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class ByteReader:
    """Sequential binary reader with typed reads and bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._data):
            raise CodecError(
                f"truncated message: wanted {count} bytes at offset {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        piece = self._data[self._offset : end]
        self._offset = end
        return piece

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def boolean(self) -> bool:
        return self.u8() != 0

    def string(self) -> str:
        length = self.u16()
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string field: {exc}") from exc

    @property
    def exhausted(self) -> bool:
        return self._offset >= len(self._data)

    def expect_exhausted(self) -> None:
        if not self.exhausted:
            raise CodecError(
                f"{len(self._data) - self._offset} trailing bytes after message payload"
            )


def encode_event(event: Event) -> bytes:
    """Marshal an event's values in schema order (no schema data on the wire
    — both ends know the information space's schema)."""
    writer = ByteWriter()
    for attribute, value in zip(event.schema, event.as_tuple()):
        _write_value(writer, attribute.type, value)
    return writer.getvalue()


def decode_event(schema: EventSchema, data: bytes, *, publisher: str = "") -> Event:
    """Unmarshal an event against ``schema`` (the broker's event parser)."""
    reader = ByteReader(data)
    values = {}
    for attribute in schema:
        values[attribute.name] = _read_value(reader, attribute.type)
    reader.expect_exhausted()
    return Event(schema, values, publisher=publisher or None)


def _write_value(writer: ByteWriter, type: AttributeType, value: AttributeValue) -> None:
    if type is AttributeType.STRING:
        writer.string(str(value))
    elif type is AttributeType.INTEGER:
        writer.i64(int(value))
    elif type is AttributeType.BOOLEAN:
        writer.boolean(bool(value))
    else:  # FLOAT and DOLLAR
        writer.f64(float(value))


def _read_value(reader: ByteReader, type: AttributeType) -> AttributeValue:
    if type is AttributeType.STRING:
        return reader.string()
    if type is AttributeType.INTEGER:
        return reader.i64()
    if type is AttributeType.BOOLEAN:
        return reader.boolean()
    return reader.f64()
