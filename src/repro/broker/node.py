"""The prototype broker node (Section 4.2, Figure 7).

A :class:`BrokerNode` assembles the components the paper diagrams:

* **matching engine** — subscription manager + event parser
  (:class:`~repro.broker.engine.MatchingEngine`), used here through the
  link-matching :class:`~repro.core.router.ContentRouter` so inter-broker
  forwarding is content-routed exactly as in Section 3;
* **client protocol** — CONNECT/SUBSCRIBE/PUBLISH/EVENT/ACK handling with a
  per-client :class:`~repro.broker.event_log.EventLog` for reliable
  redelivery across disconnects, plus a garbage collector for acked entries;
* **broker protocol** — BROKER_HELLO handshakes, flooded subscription
  propagation (every broker keeps a full copy of the subscription set, as
  Section 3.1 requires), and BROKER_EVENT forwarding along spanning trees;
* **connection manager** — tracks broker and client connections, dials
  neighbor brokers at startup (the lexicographically smaller name dials, so
  each topology link maps to exactly one TCP connection);
* **transport** — any :class:`~repro.broker.transport.Transport`
  (in-memory for tests, TCP for real deployments).

The broker network's shape is static configuration
(:class:`BrokerNetworkConfig` wraps the topology, routing tables and
spanning trees), matching the paper's "brokers are connected using a
specified topology"; clients are *declared* in the topology and attach by
name.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ProtocolError, RoutingError, TransportError
from repro.broker import messages as wire
from repro.broker.event_log import EventLog
from repro.broker.transport import Connection, Listener, Transport
from repro.core.router import ContentRouter
from repro.matching.digest import MatchDigest
from repro.matching.parser import parse_predicate
from repro.matching.predicates import Subscription
from repro.matching.schema import AttributeValue, EventSchema
from repro.network.paths import RoutingTable, all_routing_tables
from repro.network.spanning import SpanningTree, spanning_trees_for_publishers
from repro.network.topology import Topology
from repro.obs import get_registry

_global_subscription_ids = itertools.count(1_000_000)


class BrokerNetworkConfig:
    """Shared static configuration for a prototype broker network."""

    def __init__(
        self,
        topology: Topology,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        factoring_attributes: Optional[Sequence[str]] = None,
        engine: str = "compiled",
        shards: Optional[int] = None,
        shard_policy: Optional[str] = None,
        shard_workers: int = 0,
        backend: Optional[str] = None,
        aggregate: bool = False,
    ) -> None:
        topology.validate()
        if not topology.publishers():
            raise RoutingError("the topology declares no publishers")
        self.topology = topology
        self.schema = schema
        self.attribute_order = attribute_order
        self.domains = domains
        self.factoring_attributes = factoring_attributes
        self.engine = engine
        self.shards = shards
        self.shard_policy = shard_policy
        self.shard_workers = shard_workers
        self.backend = backend
        self.aggregate = aggregate
        self.routing_tables: Dict[str, RoutingTable] = all_routing_tables(topology)
        self.spanning_trees: Dict[str, SpanningTree] = spanning_trees_for_publishers(topology)


class ClientSession:
    """Broker-side state for one declared client: its event log (which
    outlives connections) and the live connection, when any."""

    __slots__ = ("name", "log", "connection")

    def __init__(self, name: str, log: Optional[object] = None) -> None:
        self.name = name
        self.log = log if log is not None else EventLog(name)
        self.connection: Optional[Connection] = None

    @property
    def is_connected(self) -> bool:
        return self.connection is not None and self.connection.is_open

    def __repr__(self) -> str:
        return f"ClientSession({self.name!r}, connected={self.is_connected})"


class BrokerNode:
    """One prototype broker (see module docstring).

    Lifecycle: construct, :meth:`start` (listens and dials neighbors), use,
    :meth:`stop`.  All message handling is serialized under one lock, so the
    node is safe under the TCP transport's receiver threads.
    """

    def __init__(
        self,
        config: BrokerNetworkConfig,
        name: str,
        transport: Transport,
        endpoints: Mapping[str, str],
        *,
        gc_interval_acks: int = 64,
        log_directory: Optional[str] = None,
        ingest_batch_size: int = 64,
    ) -> None:
        if name not in config.topology.brokers():
            raise ProtocolError(f"{name!r} is not a broker in the topology")
        if ingest_batch_size < 1:
            raise ProtocolError("ingest_batch_size must be >= 1")
        self.config = config
        self.name = name
        self.transport = transport
        # Kept by reference on purpose: when several nodes share one mapping
        # and listen on ephemeral ports ("host:0"), each node publishes its
        # actual bound port back into the shared mapping at start().
        self.endpoints = endpoints if isinstance(endpoints, dict) else dict(endpoints)
        self.router = ContentRouter(
            config.topology,
            name,
            config.routing_tables[name],
            config.spanning_trees,
            config.schema,
            attribute_order=config.attribute_order,
            domains=config.domains,
            factoring_attributes=config.factoring_attributes,
            engine=config.engine,
            shards=config.shards,
            shard_policy=config.shard_policy,
            shard_workers=config.shard_workers,
            backend=config.backend,
            aggregate=config.aggregate,
        )
        #: When set, per-client event logs are persisted under this
        #: directory (one subdirectory per broker), so reliable redelivery
        #: also survives broker restarts — see
        #: :class:`repro.broker.persistent_log.FileEventLog`.
        self.log_directory = log_directory
        self._lock = threading.RLock()
        self._listener: Optional[Listener] = None
        self._broker_connections: Dict[str, Connection] = {}
        #: Connections we have already sent our hello+resync on; prevents
        #: hello ping-pong when both ends of a link dial each other.
        self._greeted_connections: Set[int] = set()
        self._sessions: Dict[str, ClientSession] = {}
        self._seen_subscription_ids: Set[int] = set()
        self._gc_interval_acks = max(1, gc_interval_acks)
        self._acks_since_gc = 0
        #: Pending (event_data, root, publisher) triples awaiting routing;
        #: drained in batches of up to ``ingest_batch_size`` through the
        #: router's batched matching path.
        self.ingest_batch_size = ingest_batch_size
        self._ingest: Deque[Tuple[bytes, str, str, Optional[MatchDigest]]] = deque()
        self._draining = False
        self.events_routed = 0
        self.events_delivered = 0
        # Observability mirrors of the dashboard counters (no-ops unless the
        # global registry is enabled before the node is constructed).
        obs = get_registry().scope("broker")
        self._obs_routed = obs.counter("events_routed", broker=name)
        self._obs_delivered = obs.counter("events_delivered", broker=name)
        self._obs_subscribes = obs.counter("subscriptions_added", broker=name)
        self._obs_unsubscribes = obs.counter("subscriptions_removed", broker=name)
        self._obs_ingest_batches = obs.counter("ingest_batches", broker=name)
        self._obs_coalesced_sends = obs.counter("coalesced_sends", broker=name)
        self._obs_digest_hits = obs.counter("digest_hits", broker=name)
        self._obs_digest_fallbacks = obs.counter("digest_fallbacks", broker=name)

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Listen on this broker's endpoint and dial neighbor brokers.

        Only the lexicographically smaller broker of each link dials, so
        every topology link yields exactly one connection.
        """
        endpoint = self.endpoints.get(self.name)
        if endpoint is None:
            raise TransportError(f"no endpoint configured for broker {self.name!r}")
        self._listener = self.transport.listen(endpoint, self._on_accept)
        bound_port = getattr(self._listener, "port", None)
        if bound_port is not None and endpoint.endswith(":0"):
            self.endpoints[self.name] = f"{endpoint[: -len(':0')]}:{bound_port}"

    def connect_neighbors(self) -> None:
        """Dial broker neighbors this node is responsible for.  Separate from
        :meth:`start` so a whole network can listen first, then dial."""
        for neighbor in self.config.topology.broker_neighbors(self.name):
            if self.name < neighbor:
                self._dial_broker(neighbor)

    def stop(self) -> None:
        with self._lock:
            if self._listener is not None:
                self._listener.close()
                self._listener = None
            for connection in list(self._broker_connections.values()):
                connection.close()
            self._broker_connections.clear()
            for session in self._sessions.values():
                if session.connection is not None:
                    session.connection.close()
                    session.connection = None
                close = getattr(session.log, "close", None)
                if close is not None:
                    close()

    def dial_broker(self, neighbor: str) -> None:
        """Open (or re-open) the connection to a neighbor broker.

        Used at startup for the neighbors this node is responsible for, and
        by operators after a neighbor restart (a restarted broker has lost
        its connections *and* its subscription state; the hello handshake
        triggers a full subscription resync from the peer — see
        :meth:`_handle_broker_hello`).
        """
        endpoint = self.endpoints.get(neighbor)
        if endpoint is None:
            raise TransportError(f"no endpoint configured for broker {neighbor!r}")
        connection = self.transport.connect(endpoint)
        connection.on_message = lambda payload: self._on_payload(connection, payload)
        connection.on_close = lambda: self._on_connection_closed(connection)
        connection.start()
        with self._lock:
            self._broker_connections[neighbor] = connection
            self._greeted_connections.add(id(connection))
        connection.send(wire.encode_message(wire.BrokerHello(self.name)))
        self._send_subscription_sync(connection)

    # Backwards-compatible private alias used by connect_neighbors.
    _dial_broker = dial_broker

    # ------------------------------------------------------------------
    # Connection management

    def _on_accept(self, connection: Connection) -> None:
        # The peer identifies itself with its first message (BrokerHello or
        # Connect); until then the connection is anonymous.
        connection.on_message = lambda payload: self._on_payload(connection, payload)
        connection.on_close = lambda: self._on_connection_closed(connection)
        connection.start()

    def _on_connection_closed(self, connection: Connection) -> None:
        with self._lock:
            self._greeted_connections.discard(id(connection))
            for neighbor, existing in list(self._broker_connections.items()):
                if existing is connection:
                    del self._broker_connections[neighbor]
            for session in self._sessions.values():
                if session.connection is connection:
                    session.connection = None  # log is kept for redelivery

    def _session_for(self, client_name: str) -> ClientSession:
        session = self._sessions.get(client_name)
        if session is None:
            log = None
            if self.log_directory is not None:
                from repro.broker.persistent_log import FileEventLog

                import os.path

                log = FileEventLog(
                    client_name, os.path.join(self.log_directory, self.name)
                )
            session = ClientSession(client_name, log)
            self._sessions[client_name] = session
        return session

    # ------------------------------------------------------------------
    # Message dispatch

    def _on_payload(self, connection: Connection, payload: bytes) -> None:
        message = wire.decode_message(payload)
        with self._lock:
            self._dispatch(connection, message)

    def _dispatch(self, connection: Connection, message: object) -> None:
        if isinstance(message, wire.BrokerHello):
            self._handle_broker_hello(connection, message)
        elif isinstance(message, wire.Connect):
            self._handle_connect(connection, message)
        elif isinstance(message, wire.Subscribe):
            self._handle_subscribe(connection, message)
        elif isinstance(message, wire.Unsubscribe):
            self._handle_unsubscribe(connection, message)
        elif isinstance(message, wire.Publish):
            self._handle_publish(connection, message)
        elif isinstance(message, wire.Ack):
            self._handle_ack(connection, message)
        elif isinstance(message, wire.Disconnect):
            self._handle_disconnect(connection)
        elif isinstance(message, wire.BrokerEvent):
            self._handle_broker_event(message)
        elif isinstance(message, wire.BrokerEventBatch):
            self._handle_broker_event_batch(message)
        elif isinstance(message, wire.PublishBatch):
            self._handle_publish_batch(connection, message)
        elif isinstance(message, wire.SubPropagate):
            self._handle_sub_propagate(connection, message)
        elif isinstance(message, wire.UnsubPropagate):
            self._handle_unsub_propagate(connection, message)
        else:
            raise ProtocolError(f"broker cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------
    # Client protocol

    def _client_name_of(self, connection: Connection) -> Optional[str]:
        for name, session in self._sessions.items():
            if session.connection is connection:
                return name
        return None

    def _handle_connect(self, connection: Connection, message: wire.Connect) -> None:
        name = message.client_name
        node = self.config.topology.node(name) if name in self.config.topology else None
        if node is None or not node.kind.is_client:
            connection.send(
                wire.encode_message(wire.ErrorReply(0, f"unknown client {name!r}"))
            )
            connection.close()
            return
        if self.config.topology.broker_of(name) != self.name:
            connection.send(
                wire.encode_message(
                    wire.ErrorReply(0, f"{name!r} is not attached to broker {self.name!r}")
                )
            )
            connection.close()
            return
        session = self._session_for(name)
        if session.connection is not None and session.connection.is_open:
            session.connection.close()
        session.connection = connection
        session.log.ack(min(message.last_seq, session.log.last_seq))
        backlog = session.log.entries_after(message.last_seq)
        connection.send(wire.encode_message(wire.ConnAck(self.name, len(backlog))))
        for seq, event_data in backlog:
            connection.send(wire.encode_message(wire.EventDelivery(seq, event_data)))

    def _handle_subscribe(self, connection: Connection, message: wire.Subscribe) -> None:
        client = self._client_name_of(connection)
        if client is None:
            connection.send(
                wire.encode_message(wire.ErrorReply(message.request_id, "not connected"))
            )
            return
        try:
            predicate = parse_predicate(self.config.schema, message.expression)
        except Exception as exc:  # parse/predicate errors go back to the client
            connection.send(
                wire.encode_message(wire.ErrorReply(message.request_id, str(exc)))
            )
            return
        subscription_id = next(_global_subscription_ids)
        subscription = Subscription(predicate, client, subscription_id=subscription_id)
        self.router.add_subscription(subscription)
        self._obs_subscribes.inc()
        self._seen_subscription_ids.add(subscription_id)
        self._flood_to_brokers(
            wire.SubPropagate(subscription_id, client, message.expression, self.name),
            exclude=None,
        )
        connection.send(
            wire.encode_message(wire.SubAck(message.request_id, subscription_id))
        )

    def _handle_unsubscribe(self, connection: Connection, message: wire.Unsubscribe) -> None:
        client = self._client_name_of(connection)
        if client is None:
            connection.send(
                wire.encode_message(wire.ErrorReply(message.request_id, "not connected"))
            )
            return
        try:
            removed = self.router.remove_subscription(message.subscription_id)
        except Exception as exc:
            connection.send(
                wire.encode_message(wire.ErrorReply(message.request_id, str(exc)))
            )
            return
        if removed.subscriber != client:
            # Put it back; clients may only remove their own subscriptions.
            self.router.add_subscription(removed)
            connection.send(
                wire.encode_message(
                    wire.ErrorReply(message.request_id, "not your subscription")
                )
            )
            return
        self._seen_subscription_ids.discard(message.subscription_id)
        self._flood_to_brokers(
            wire.UnsubPropagate(message.subscription_id, self.name), exclude=None
        )
        connection.send(
            wire.encode_message(wire.UnsubAck(message.request_id, message.subscription_id))
        )

    def _handle_publish(self, connection: Connection, message: wire.Publish) -> None:
        client = self._client_name_of(connection)
        if client is None:
            connection.send(wire.encode_message(wire.ErrorReply(0, "not connected")))
            return
        if self.name not in self.config.spanning_trees:
            connection.send(
                wire.encode_message(
                    wire.ErrorReply(0, f"broker {self.name!r} hosts no declared publisher")
                )
            )
            return
        self._enqueue_event(message.event_data, root=self.name, publisher=client)

    def _handle_publish_batch(
        self, connection: Connection, message: wire.PublishBatch
    ) -> None:
        client = self._client_name_of(connection)
        if client is None:
            connection.send(wire.encode_message(wire.ErrorReply(0, "not connected")))
            return
        if self.name not in self.config.spanning_trees:
            connection.send(
                wire.encode_message(
                    wire.ErrorReply(0, f"broker {self.name!r} hosts no declared publisher")
                )
            )
            return
        for event_data in message.events:
            self._ingest.append((event_data, self.name, client, None))
        self._drain_ingest()

    def _handle_ack(self, connection: Connection, message: wire.Ack) -> None:
        client = self._client_name_of(connection)
        if client is None:
            return
        session = self._sessions[client]
        session.log.ack(message.seq)
        self._acks_since_gc += 1
        if self._acks_since_gc >= self._gc_interval_acks:
            self.collect_garbage()

    def _handle_disconnect(self, connection: Connection) -> None:
        client = self._client_name_of(connection)
        if client is not None:
            self._sessions[client].connection = None
        connection.close()

    # ------------------------------------------------------------------
    # Broker protocol

    def _handle_broker_hello(self, connection: Connection, message: wire.BrokerHello) -> None:
        """Register the peer and resync it.

        The hello may come from a broker that just (re)started with empty
        state, so we push our full subscription copy as individual
        SUB_PROPAGATE messages; the id-based flood deduplication makes the
        sync idempotent for peers that already know them.

        Each connection is greeted (hello + resync) at most once per side:
        the dialer greets when dialing, the acceptor greets on the first
        hello it sees.  Without that cap, two brokers dialing each other
        would answer each other's answers forever.
        """
        self._broker_connections[message.broker_name] = connection
        if id(connection) in self._greeted_connections:
            return
        self._greeted_connections.add(id(connection))
        connection.send(wire.encode_message(wire.BrokerHello(self.name)))
        self._send_subscription_sync(connection)

    def _send_subscription_sync(self, connection: Connection) -> None:
        for subscription in self.router.matcher.subscriptions:
            connection.send(
                wire.encode_message(
                    wire.SubPropagate(
                        subscription.subscription_id,
                        subscription.subscriber,
                        subscription.predicate.describe(),
                        self.name,
                    )
                )
            )

    def _flood_to_brokers(self, message: object, exclude: Optional[Connection]) -> None:
        payload = wire.encode_message(message)
        for connection in self._broker_connections.values():
            if connection is exclude or not connection.is_open:
                continue
            connection.send(payload)

    def _handle_sub_propagate(self, connection: Connection, message: wire.SubPropagate) -> None:
        if message.subscription_id in self._seen_subscription_ids:
            return  # flood deduplication
        self._seen_subscription_ids.add(message.subscription_id)
        predicate = parse_predicate(self.config.schema, message.expression)
        self.router.add_subscription(
            Subscription(predicate, message.subscriber, subscription_id=message.subscription_id)
        )
        self._obs_subscribes.inc()
        self._flood_to_brokers(message, exclude=connection)

    def _handle_unsub_propagate(self, connection: Connection, message: wire.UnsubPropagate) -> None:
        if message.subscription_id not in self._seen_subscription_ids:
            return
        self._seen_subscription_ids.discard(message.subscription_id)
        self.router.remove_subscription(message.subscription_id)
        self._obs_unsubscribes.inc()
        self._flood_to_brokers(message, exclude=connection)

    def _handle_broker_event(self, message: wire.BrokerEvent) -> None:
        self._enqueue_event(
            message.event_data,
            root=message.root,
            publisher=message.publisher,
            digest=message.digest,
        )

    def _handle_broker_event_batch(self, message: wire.BrokerEventBatch) -> None:
        for i, (publisher, event_data) in enumerate(message.entries):
            self._ingest.append(
                (event_data, message.root, publisher, message.digest_for(i))
            )
        self._drain_ingest()

    def _enqueue_event(
        self,
        event_data: bytes,
        *,
        root: str,
        publisher: str,
        digest: Optional[MatchDigest] = None,
    ) -> None:
        self._ingest.append((event_data, root, publisher, digest))
        self._drain_ingest()

    def _drain_ingest(self) -> None:
        """Route everything queued, in batches of up to ``ingest_batch_size``.

        Re-entrant calls (a handler enqueuing while a drain is in progress)
        just leave their entries on the queue; the outer drain picks them up.
        """
        if self._draining:
            return
        self._draining = True
        try:
            while self._ingest:
                count = min(self.ingest_batch_size, len(self._ingest))
                self._route_entries([self._ingest.popleft() for _ in range(count)])
        finally:
            self._draining = False

    def _route_entries(
        self, entries: List[Tuple[bytes, str, str, Optional[MatchDigest]]]
    ) -> None:
        """Route one ingest batch: batched refinement, coalesced forwarding.

        Entries are grouped by spanning-tree root for the router's
        :meth:`~repro.core.router.ContentRouter.route_batch`; forwards are
        then coalesced so each neighbor link carries one
        :class:`~repro.broker.messages.BrokerEventBatch` per root instead of
        one message per event.  Per-event decisions, deliveries and event-log
        appends are identical to the one-at-a-time path.

        Match-once forwarding: digest-less entries route through
        :meth:`~repro.core.router.ContentRouter.route_digest_batch`, minting
        a digest the forwards carry; digest-bearing entries convert the
        digest straight to this node's link mask.  A digest that fails
        verification (the replicated subscription set diverged — e.g. a
        subscription still propagating) falls back to a full rematch and is
        stripped from the forwards.  The epoch/checksum converge without any
        coordination because subscription flooding applies every add/remove
        exactly once at every broker.
        """
        from repro.broker.codec import decode_event

        self._obs_ingest_batches.inc()
        events = [
            decode_event(self.config.schema, event_data, publisher=publisher)
            for event_data, _root, publisher, _digest in entries
        ]
        use_digests = self.router.supports_digests
        by_root: Dict[str, List[int]] = {}
        for i, (_event_data, root, _publisher, _digest) in enumerate(entries):
            group = by_root.get(root)
            if group is None:
                by_root[root] = [i]
            else:
                group.append(i)
        decisions = [None] * len(entries)
        # The digest each entry's forwards carry (consumed, minted, or None).
        out_digests: List[Optional[MatchDigest]] = [None] * len(entries)
        for root, indices in by_root.items():
            plain: List[int] = []
            for i in indices:
                digest = entries[i][3]
                if digest is None or not use_digests:
                    plain.append(i)
                    continue
                try:
                    decisions[i] = self.router.route_with_digest(
                        events[i], root, digest
                    )
                except RoutingError:
                    self._obs_digest_fallbacks.inc()
                    decisions[i] = self.router.route(events[i], root)
                else:
                    self._obs_digest_hits.inc()
                    out_digests[i] = digest
            if not plain:
                continue
            plain_events = [events[i] for i in plain]
            if use_digests:
                for i, (decision, digest) in zip(
                    plain, self.router.route_digest_batch(plain_events, root)
                ):
                    decisions[i] = decision
                    out_digests[i] = digest
            else:
                for i, decision in zip(plain, self.router.route_batch(plain_events, root)):
                    decisions[i] = decision
        self.events_routed += len(entries)
        self._obs_routed.inc(len(entries))
        # neighbor -> root -> (publisher, event_data, digest), in batch order.
        forwards: Dict[str, Dict[str, List[Tuple[str, bytes, Optional[MatchDigest]]]]] = {}
        for (event_data, root, publisher, _digest), decision, out_digest in zip(
            entries, decisions, out_digests
        ):
            assert decision is not None
            for neighbor in decision.forward_to:
                per_root = forwards.setdefault(neighbor, {})
                per_root.setdefault(root, []).append((publisher, event_data, out_digest))
            for client in decision.deliver_to:
                self._deliver_to_client(client, event_data)
        for neighbor, per_root in forwards.items():
            connection = self._broker_connections.get(neighbor)
            if connection is None or not connection.is_open:
                continue  # neighbor down; the simulator studies this, not the prototype
            for root, batch in per_root.items():
                if len(batch) == 1:
                    publisher, event_data, digest = batch[0]
                    connection.send(
                        wire.encode_message(
                            wire.BrokerEvent(root, publisher, event_data, digest)
                        )
                    )
                else:
                    digests = tuple(digest for _, _, digest in batch)
                    connection.send(
                        wire.encode_message(
                            wire.BrokerEventBatch(
                                root,
                                tuple((p, d) for p, d, _ in batch),
                                digests if any(d is not None for d in digests) else (),
                            )
                        )
                    )
                    self._obs_coalesced_sends.inc()

    def _deliver_to_client(self, client: str, event_data: bytes) -> None:
        session = self._session_for(client)
        seq = session.log.append(event_data)
        self.events_delivered += 1
        self._obs_delivered.inc()
        if session.is_connected:
            assert session.connection is not None
            session.connection.send(
                wire.encode_message(wire.EventDelivery(seq, event_data))
            )

    # ------------------------------------------------------------------
    # Maintenance / introspection

    def collect_garbage(self) -> int:
        """Run the event-log garbage collector over all sessions."""
        with self._lock:
            self._acks_since_gc = 0
            return sum(session.log.collect() for session in self._sessions.values())

    def session(self, client_name: str) -> ClientSession:
        with self._lock:
            return self._session_for(client_name)

    def stats(self) -> Dict[str, object]:
        """A consistent snapshot of the node's operational counters —
        what an operator's dashboard would scrape."""
        with self._lock:
            connected_clients = sorted(
                name for name, session in self._sessions.items() if session.is_connected
            )
            return {
                "broker": self.name,
                "subscriptions": self.subscription_count,
                "events_routed": self.events_routed,
                "events_delivered": self.events_delivered,
                "connected_brokers": sorted(
                    name for name, c in self._broker_connections.items() if c.is_open
                ),
                "connected_clients": connected_clients,
                "sessions": len(self._sessions),
                "logged_entries": sum(
                    len(session.log) for session in self._sessions.values()
                ),
                "acks_since_gc": self._acks_since_gc,
            }

    @property
    def subscription_count(self) -> int:
        return self.router.subscription_count

    @property
    def connected_brokers(self) -> List[str]:
        with self._lock:
            return sorted(
                name for name, c in self._broker_connections.items() if c.is_open
            )

    def __repr__(self) -> str:
        return (
            f"BrokerNode({self.name!r}, {self.subscription_count} subscriptions, "
            f"{len(self._broker_connections)} broker links)"
        )
