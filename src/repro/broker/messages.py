"""Wire messages of the client and broker protocols (Figure 7).

Messages are dataclasses with a compact binary encoding (one type byte plus
typed fields — see :mod:`repro.broker.codec`).  Framing (length prefix) is
the transport's job; this module converts between message objects and
payload bytes.

Client protocol: ``CONNECT``/``CONNACK`` (with resume point for reliable
redelivery), ``SUBSCRIBE``/``SUBACK``, ``UNSUBSCRIBE``/``UNSUBACK``,
``PUBLISH`` (client → broker), ``EVENT`` (broker → client, sequenced) and
``ACK`` (client → broker, drives log garbage collection).

Broker protocol: ``BROKER_EVENT`` (an event in transit on a spanning tree),
``SUB_PROPAGATE``/``UNSUB_PROPAGATE`` (replicating the subscription set to
every broker, flooded with origin-based deduplication) and ``BROKER_HELLO``
(identifying the dialing broker when a broker-broker connection opens).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import CodecError
from repro.broker.codec import ByteReader, ByteWriter
from repro.matching.digest import MatchDigest


class MessageType(enum.IntEnum):
    CONNECT = 1
    CONNACK = 2
    SUBSCRIBE = 3
    SUBACK = 4
    UNSUBSCRIBE = 5
    UNSUBACK = 6
    PUBLISH = 7
    EVENT = 8
    ACK = 9
    DISCONNECT = 10
    BROKER_HELLO = 11
    BROKER_EVENT = 12
    SUB_PROPAGATE = 13
    UNSUB_PROPAGATE = 14
    ERROR = 15
    BROKER_EVENT_BATCH = 16
    PUBLISH_BATCH = 17


@dataclass(frozen=True)
class Connect:
    """Client → broker: open (or resume) a session.

    ``last_seq`` is the highest event sequence number the client has safely
    processed; the broker redelivers everything after it.
    """

    client_name: str
    last_seq: int = 0


@dataclass(frozen=True)
class ConnAck:
    broker_name: str
    backlog: int  # events about to be redelivered


@dataclass(frozen=True)
class Subscribe:
    request_id: int
    expression: str


@dataclass(frozen=True)
class SubAck:
    request_id: int
    subscription_id: int


@dataclass(frozen=True)
class Unsubscribe:
    request_id: int
    subscription_id: int


@dataclass(frozen=True)
class UnsubAck:
    request_id: int
    subscription_id: int


@dataclass(frozen=True)
class Publish:
    event_data: bytes


@dataclass(frozen=True)
class EventDelivery:
    seq: int
    event_data: bytes


@dataclass(frozen=True)
class Ack:
    seq: int


@dataclass(frozen=True)
class Disconnect:
    pass


@dataclass(frozen=True)
class BrokerHello:
    broker_name: str


@dataclass(frozen=True)
class BrokerEvent:
    """An event in transit on a spanning tree.

    ``digest`` is the optional match-once forwarding summary (see
    :mod:`repro.matching.digest`): the matched-subscription set computed at
    the publisher's broker, which downstream brokers project straight onto
    their links instead of rematching.  On the wire it is a trailing
    section, absent when ``None`` — pre-digest payloads decode unchanged.
    """

    root: str
    publisher: str
    event_data: bytes
    digest: Optional[MatchDigest] = None


@dataclass(frozen=True)
class BrokerEventBatch:
    """A coalesced batch of events in transit on one spanning tree.

    Emitted when a broker's batched route decides to forward several events
    over the same link: one wire message (and one framing/syscall round)
    carries them all.  ``entries`` are ``(publisher, event_data)`` pairs in
    arrival order.  ``digests`` aligns by index with ``entries`` when
    non-empty (the empty default means "no entry carries a digest"); on the
    wire the digest table is a trailing section listing only the entries
    that have one, so pre-digest payloads decode unchanged.
    """

    root: str
    entries: Tuple[Tuple[str, bytes], ...]
    digests: Tuple[Optional[MatchDigest], ...] = ()

    def digest_for(self, index: int) -> Optional[MatchDigest]:
        """The digest of entry ``index`` (``None`` when the batch carries no
        digest table)."""
        return self.digests[index] if self.digests else None


@dataclass(frozen=True)
class PublishBatch:
    """Client → broker: publish several events in one message.

    The broker enqueues all of them and drains its ingest queue through the
    batched matching path.
    """

    events: Tuple[bytes, ...]


@dataclass(frozen=True)
class SubPropagate:
    subscription_id: int
    subscriber: str
    expression: str
    origin: str  # broker that accepted the subscription


@dataclass(frozen=True)
class UnsubPropagate:
    subscription_id: int
    origin: str


@dataclass(frozen=True)
class ErrorReply:
    request_id: int
    reason: str


_TYPE_OF = {
    Connect: MessageType.CONNECT,
    ConnAck: MessageType.CONNACK,
    Subscribe: MessageType.SUBSCRIBE,
    SubAck: MessageType.SUBACK,
    Unsubscribe: MessageType.UNSUBSCRIBE,
    UnsubAck: MessageType.UNSUBACK,
    Publish: MessageType.PUBLISH,
    EventDelivery: MessageType.EVENT,
    Ack: MessageType.ACK,
    Disconnect: MessageType.DISCONNECT,
    BrokerHello: MessageType.BROKER_HELLO,
    BrokerEvent: MessageType.BROKER_EVENT,
    BrokerEventBatch: MessageType.BROKER_EVENT_BATCH,
    PublishBatch: MessageType.PUBLISH_BATCH,
    SubPropagate: MessageType.SUB_PROPAGATE,
    UnsubPropagate: MessageType.UNSUB_PROPAGATE,
    ErrorReply: MessageType.ERROR,
}


def encode_message(message: object) -> bytes:
    """Message object → payload bytes (type byte + fields)."""
    message_type = _TYPE_OF.get(type(message))
    if message_type is None:
        raise CodecError(f"not a wire message: {message!r}")
    writer = ByteWriter().u8(int(message_type))
    if isinstance(message, Connect):
        writer.string(message.client_name).u64(message.last_seq)
    elif isinstance(message, ConnAck):
        writer.string(message.broker_name).u32(message.backlog)
    elif isinstance(message, Subscribe):
        writer.u32(message.request_id).string(message.expression)
    elif isinstance(message, (SubAck, UnsubAck, Unsubscribe)):
        writer.u32(message.request_id).u64(message.subscription_id)
    elif isinstance(message, Publish):
        writer.u32(len(message.event_data)).raw(message.event_data)
    elif isinstance(message, EventDelivery):
        writer.u64(message.seq).u32(len(message.event_data)).raw(message.event_data)
    elif isinstance(message, Ack):
        writer.u64(message.seq)
    elif isinstance(message, Disconnect):
        pass
    elif isinstance(message, BrokerHello):
        writer.string(message.broker_name)
    elif isinstance(message, BrokerEvent):
        writer.string(message.root).string(message.publisher)
        writer.u32(len(message.event_data)).raw(message.event_data)
        if message.digest is not None:
            blob = message.digest.to_bytes()
            writer.u32(len(blob)).raw(blob)
    elif isinstance(message, BrokerEventBatch):
        writer.string(message.root).u32(len(message.entries))
        for publisher, event_data in message.entries:
            writer.string(publisher).u32(len(event_data)).raw(event_data)
        if message.digests:
            if len(message.digests) != len(message.entries):
                raise CodecError(
                    f"digest table length {len(message.digests)} does not match "
                    f"{len(message.entries)} batch entries"
                )
            carried = [
                (index, digest)
                for index, digest in enumerate(message.digests)
                if digest is not None
            ]
            if carried:
                writer.u32(len(carried))
                for index, digest in carried:
                    blob = digest.to_bytes()
                    writer.u32(index).u32(len(blob)).raw(blob)
    elif isinstance(message, PublishBatch):
        writer.u32(len(message.events))
        for event_data in message.events:
            writer.u32(len(event_data)).raw(event_data)
    elif isinstance(message, SubPropagate):
        writer.u64(message.subscription_id).string(message.subscriber)
        writer.string(message.expression).string(message.origin)
    elif isinstance(message, UnsubPropagate):
        writer.u64(message.subscription_id).string(message.origin)
    elif isinstance(message, ErrorReply):
        writer.u32(message.request_id).string(message.reason)
    return writer.getvalue()


def decode_message(payload: bytes) -> object:
    """Payload bytes → message object; raises :class:`CodecError` on any
    malformed input (unknown type byte, truncation, trailing bytes)."""
    reader = ByteReader(payload)
    type_byte = reader.u8()
    try:
        message_type = MessageType(type_byte)
    except ValueError:
        raise CodecError(f"unknown message type byte {type_byte}") from None
    message = _DECODERS[message_type](reader)
    reader.expect_exhausted()
    return message


def _read_blob(reader: ByteReader) -> bytes:
    length = reader.u32()
    return reader._take(length)  # noqa: SLF001 - codec-internal access


def _read_digest(reader: ByteReader) -> MatchDigest:
    return MatchDigest.from_bytes(_read_blob(reader))


def _read_broker_event(reader: ByteReader) -> BrokerEvent:
    root = reader.string()
    publisher = reader.string()
    event_data = _read_blob(reader)
    digest = None if reader.exhausted else _read_digest(reader)
    return BrokerEvent(root, publisher, event_data, digest)


def _read_broker_event_batch(reader: ByteReader) -> BrokerEventBatch:
    root = reader.string()
    count = reader.u32()
    entries = tuple((reader.string(), _read_blob(reader)) for _ in range(count))
    if reader.exhausted:
        return BrokerEventBatch(root, entries)
    digests: list[Optional[MatchDigest]] = [None] * count
    for _ in range(reader.u32()):
        index = reader.u32()
        if index >= count:
            raise CodecError(
                f"digest table references entry {index} of a {count}-entry batch"
            )
        digests[index] = _read_digest(reader)
    return BrokerEventBatch(root, entries, tuple(digests))


def _read_publish_batch(reader: ByteReader) -> PublishBatch:
    count = reader.u32()
    return PublishBatch(tuple(_read_blob(reader) for _ in range(count)))


_DECODERS: Dict[MessageType, Callable[[ByteReader], object]] = {
    MessageType.CONNECT: lambda r: Connect(r.string(), r.u64()),
    MessageType.CONNACK: lambda r: ConnAck(r.string(), r.u32()),
    MessageType.SUBSCRIBE: lambda r: Subscribe(r.u32(), r.string()),
    MessageType.SUBACK: lambda r: SubAck(r.u32(), r.u64()),
    MessageType.UNSUBSCRIBE: lambda r: Unsubscribe(r.u32(), r.u64()),
    MessageType.UNSUBACK: lambda r: UnsubAck(r.u32(), r.u64()),
    MessageType.PUBLISH: lambda r: Publish(_read_blob(r)),
    MessageType.EVENT: lambda r: EventDelivery(r.u64(), _read_blob(r)),
    MessageType.ACK: lambda r: Ack(r.u64()),
    MessageType.DISCONNECT: lambda r: Disconnect(),
    MessageType.BROKER_HELLO: lambda r: BrokerHello(r.string()),
    MessageType.BROKER_EVENT: _read_broker_event,
    MessageType.BROKER_EVENT_BATCH: _read_broker_event_batch,
    MessageType.PUBLISH_BATCH: _read_publish_batch,
    MessageType.SUB_PROPAGATE: lambda r: SubPropagate(r.u64(), r.string(), r.string(), r.string()),
    MessageType.UNSUB_PROPAGATE: lambda r: UnsubPropagate(r.u64(), r.string()),
    MessageType.ERROR: lambda r: ErrorReply(r.u32(), r.string()),
}
