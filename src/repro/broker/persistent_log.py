"""Disk-backed per-client event logs.

The in-memory :class:`~repro.broker.event_log.EventLog` survives client
crashes; this variant also survives *broker* restarts, extending the
Section 4.2 reliability story ("robust enough to handle transient failures
of connections") to broker failures.

Layout, one pair of files per client under the log directory:

* ``<client>.log`` — append-only records ``u64 seq | u32 length | payload``;
* ``<client>.ack`` — the cumulative ack watermark (8 bytes), rewritten
  atomically (`os.replace`) on every ack.

`collect()` compacts by rewriting the live suffix to a temporary file and
atomically replacing the log — a crash at any point leaves either the old
or the new file, both correct.  The class keeps an in-memory mirror for
queries, so reads never touch the disk after construction.
"""

from __future__ import annotations

import os
import pathlib
import struct
from collections import OrderedDict
from typing import List, Tuple, Union

from repro.errors import ProtocolError

_RECORD_HEADER = struct.Struct(">QI")
_WATERMARK = struct.Struct(">Q")

#: Characters allowed in client names used as file stems.
_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def _safe_stem(client_name: str) -> str:
    """File-system-safe stem for a client name (escape anything unusual)."""
    if client_name and set(client_name) <= _SAFE and client_name not in (".", ".."):
        return client_name
    return "x" + client_name.encode("utf-8").hex()


class FileEventLog:
    """A drop-in replacement for :class:`EventLog` persisted to disk."""

    def __init__(self, client_name: str, directory: Union[str, pathlib.Path]) -> None:
        self.client_name = client_name
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        stem = _safe_stem(client_name)
        self._log_path = self.directory / f"{stem}.log"
        self._ack_path = self.directory / f"{stem}.ack"
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self._acked = 0
        self._next_seq = 1
        self._load()
        self._log_file = open(self._log_path, "ab")

    # ------------------------------------------------------------------
    # Recovery

    def _load(self) -> None:
        if self._ack_path.exists():
            data = self._ack_path.read_bytes()
            if len(data) == _WATERMARK.size:
                (self._acked,) = _WATERMARK.unpack(data)
        if not self._log_path.exists():
            self._next_seq = self._acked + 1
            return
        highest = self._acked
        with open(self._log_path, "rb") as log_file:
            while True:
                header = log_file.read(_RECORD_HEADER.size)
                if len(header) < _RECORD_HEADER.size:
                    break  # clean EOF or torn final header: stop replaying
                seq, length = _RECORD_HEADER.unpack(header)
                payload = log_file.read(length)
                if len(payload) < length:
                    break  # torn final record from a crash mid-append
                highest = max(highest, seq)
                if seq > self._acked:
                    self._entries[seq] = payload
        self._next_seq = highest + 1

    # ------------------------------------------------------------------
    # EventLog interface

    def append(self, event_data: bytes) -> int:
        seq = self._next_seq
        self._next_seq += 1
        record = _RECORD_HEADER.pack(seq, len(event_data)) + event_data
        self._log_file.write(record)
        self._log_file.flush()
        self._entries[seq] = event_data
        return seq

    def ack(self, seq: int) -> None:
        if seq >= self._next_seq:
            raise ProtocolError(
                f"client {self.client_name!r} acked seq {seq}, which was never sent"
            )
        if seq <= self._acked:
            return
        self._acked = seq
        temporary = self._ack_path.with_suffix(".ack.tmp")
        temporary.write_bytes(_WATERMARK.pack(seq))
        os.replace(temporary, self._ack_path)

    @property
    def acked(self) -> int:
        return self._acked

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    def __len__(self) -> int:
        return len(self._entries)

    def entries_after(self, seq: int) -> List[Tuple[int, bytes]]:
        return [(s, data) for s, data in self._entries.items() if s > seq]

    def collect(self) -> int:
        """Compact: drop acked entries from memory and rewrite the log file
        with only the live suffix (atomic replace)."""
        stale = [seq for seq in self._entries if seq <= self._acked]
        if not stale:
            return 0
        for seq in stale:
            del self._entries[seq]
        temporary = self._log_path.with_suffix(".log.tmp")
        with open(temporary, "wb") as fresh:
            for seq, payload in self._entries.items():
                fresh.write(_RECORD_HEADER.pack(seq, len(payload)) + payload)
            fresh.flush()
        self._log_file.close()
        os.replace(temporary, self._log_path)
        self._log_file = open(self._log_path, "ab")
        return len(stale)

    def close(self) -> None:
        """Flush and close file handles (safe to call more than once)."""
        if not self._log_file.closed:
            self._log_file.flush()
            self._log_file.close()

    def __repr__(self) -> str:
        return (
            f"FileEventLog({self.client_name!r}, {len(self._entries)} entries, "
            f"acked={self._acked}, next={self._next_seq}, at {self._log_path})"
        )
