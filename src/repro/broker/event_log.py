"""Per-client event logs for reliable redelivery (Section 4.2).

"These protocol objects are robust enough to handle transient failures of
connections by maintaining an event log per client.  Once a client
re-connects after a failure, the client protocol object delivers the events
received while the client was dis-connected.  A garbage collector
periodically cleans up the log."

:class:`EventLog` assigns each outgoing event a monotonically increasing
per-client sequence number.  Entries stay in the log until the client ACKs
them; :meth:`collect` (the garbage collector) drops everything at or below
the acked watermark.  :meth:`entries_after` yields the redelivery backlog on
reconnect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, List, Tuple

from repro.errors import ProtocolError


class EventLog:
    """Sequence-numbered outgoing log for one client."""

    def __init__(self, client_name: str) -> None:
        self.client_name = client_name
        self._entries: "OrderedDict[int, Any]" = OrderedDict()
        self._next_seq = 1
        self._acked = 0

    def append(self, event_data: Any) -> int:
        """Log an outgoing event; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._entries[seq] = event_data
        return seq

    def ack(self, seq: int) -> None:
        """The client confirms processing everything up to ``seq``."""
        if seq >= self._next_seq:
            raise ProtocolError(
                f"client {self.client_name!r} acked seq {seq}, which was never sent"
            )
        if seq > self._acked:
            self._acked = seq

    @property
    def acked(self) -> int:
        return self._acked

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    def __len__(self) -> int:
        return len(self._entries)

    def entries_after(self, seq: int) -> List[Tuple[int, Any]]:
        """The redelivery backlog: all logged entries with sequence > ``seq``."""
        return [(s, data) for s, data in self._entries.items() if s > seq]

    def collect(self) -> int:
        """Garbage-collect acked entries; returns how many were dropped.

        Never drops an unacked entry, so a crash-and-reconnect after any
        number of collections still replays every unprocessed event.
        """
        stale = [seq for seq in self._entries if seq <= self._acked]
        for seq in stale:
            del self._entries[seq]
        return len(stale)

    def __repr__(self) -> str:
        return (
            f"EventLog({self.client_name!r}, {len(self._entries)} entries, "
            f"acked={self._acked}, next={self._next_seq})"
        )
