"""Client library for the prototype broker.

:class:`BrokerClient` speaks the client protocol: connect (with resume),
subscribe/unsubscribe by expression, publish, receive sequenced events and
acknowledge them (driving the broker's log GC).

Synchronization model: requests return a request id immediately;
:meth:`wait_for` blocks until the matching reply arrives.  Over the
in-memory transport "blocking" means pumping the hub; over TCP it means
waiting on a condition variable fed by the receiver thread.  The ``pump``
constructor argument selects the former: pass ``hub.pump`` (tests and
examples built on :class:`~repro.broker.transport.InMemoryTransport` do).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ProtocolError, TransportError
from repro.broker import messages as wire
from repro.broker.codec import decode_event, encode_event
from repro.broker.transport import Connection, Transport
from repro.matching.events import Event
from repro.matching.schema import AttributeValue, EventSchema

#: Receives (event, sequence number) for every delivery.
EventHandler = Callable[[Event, int], None]


class RequestFailed(ProtocolError):
    """The broker answered a request with an error."""


class _PendingRequest:
    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[int] = None
        self.error: Optional[str] = None


class BrokerClient:
    """A publisher/subscriber client of one prototype broker."""

    def __init__(
        self,
        name: str,
        schema: EventSchema,
        transport: Transport,
        endpoint: str,
        *,
        on_event: Optional[EventHandler] = None,
        auto_ack: bool = True,
        pump: Optional[Callable[[], int]] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.transport = transport
        self.endpoint = endpoint
        self.on_event = on_event
        self.auto_ack = auto_ack
        self._pump = pump
        self._connection: Optional[Connection] = None
        self._requests = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        self._lock = threading.Lock()
        self.connected_broker: Optional[str] = None
        self.last_seq = 0
        self.deliveries: List[Tuple[int, Event]] = []
        self.subscription_ids: List[int] = []
        #: Broker error replies not tied to a pending request (connect
        #: rejections, publish failures) land here instead of raising inside
        #: the transport's delivery path.
        self.errors: List[str] = []
        self._expected_backlog: Optional[int] = None

    # ------------------------------------------------------------------
    # Connection

    @property
    def is_connected(self) -> bool:
        return self._connection is not None and self._connection.is_open

    def connect(self, *, resume: bool = True) -> None:
        """Open a session.  With ``resume`` the broker replays every event
        logged since the last one this client acknowledged."""
        if self.is_connected:
            raise TransportError(f"client {self.name!r} is already connected")
        connection = self.transport.connect(self.endpoint)
        connection.on_message = self._on_payload
        connection.on_close = self._on_close
        connection.start()
        self._connection = connection
        last_seq = self.last_seq if resume else 0
        connection.send(wire.encode_message(wire.Connect(self.name, last_seq)))

    def disconnect(self) -> None:
        """Graceful disconnect (the broker keeps logging for us)."""
        if self._connection is not None and self._connection.is_open:
            self._connection.send(wire.encode_message(wire.Disconnect()))
            self._connection.close()
        self._connection = None
        self.connected_broker = None

    def drop_connection(self) -> None:
        """Simulate a transient failure: close without telling the broker."""
        if self._connection is not None:
            self._connection.close()
        self._connection = None
        self.connected_broker = None

    def _on_close(self) -> None:
        self._connection = None
        self.connected_broker = None

    # ------------------------------------------------------------------
    # Requests

    def subscribe(self, expression: str) -> int:
        """Send a SUBSCRIBE; returns the request id (see :meth:`wait_for`)."""
        return self._request(lambda rid: wire.Subscribe(rid, expression))

    def unsubscribe(self, subscription_id: int) -> int:
        return self._request(lambda rid: wire.Unsubscribe(rid, subscription_id))

    def _request(self, build: Callable[[int], object]) -> int:
        connection = self._require_connection()
        request_id = next(self._requests)
        with self._lock:
            self._pending[request_id] = _PendingRequest()
        connection.send(wire.encode_message(build(request_id)))
        return request_id

    def wait_for(self, request_id: int, timeout_s: float = 5.0) -> int:
        """Block until the reply for ``request_id`` arrives; returns the
        subscription id.  Raises :class:`RequestFailed` on an error reply and
        :class:`ProtocolError` on timeout."""
        with self._lock:
            pending = self._pending.get(request_id)
        if pending is None:
            raise ProtocolError(f"unknown request id {request_id}")
        deadline = time.monotonic() + timeout_s
        while not pending.done.is_set():
            if self._pump is not None:
                self._pump()
                if pending.done.is_set():
                    break
                if time.monotonic() > deadline:
                    raise ProtocolError(f"request {request_id} timed out")
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not pending.done.wait(min(remaining, 0.05)):
                    if time.monotonic() > deadline:
                        raise ProtocolError(f"request {request_id} timed out")
        with self._lock:
            self._pending.pop(request_id, None)
        if pending.error is not None:
            raise RequestFailed(pending.error)
        assert pending.result is not None
        return pending.result

    def subscribe_and_wait(self, expression: str, timeout_s: float = 5.0) -> int:
        """Subscribe and block for the subscription id."""
        subscription_id = self.wait_for(self.subscribe(expression), timeout_s)
        self.subscription_ids.append(subscription_id)
        return subscription_id

    def unsubscribe_and_wait(self, subscription_id: int, timeout_s: float = 5.0) -> int:
        result = self.wait_for(self.unsubscribe(subscription_id), timeout_s)
        if subscription_id in self.subscription_ids:
            self.subscription_ids.remove(subscription_id)
        return result

    # ------------------------------------------------------------------
    # Publishing and receiving

    def publish(self, values: Union[Event, Mapping[str, AttributeValue]]) -> None:
        """Publish an event (a mapping is validated against the schema)."""
        connection = self._require_connection()
        event = values if isinstance(values, Event) else Event(self.schema, values)
        connection.send(wire.encode_message(wire.Publish(encode_event(event))))

    def publish_many(
        self, batch: List[Union[Event, Mapping[str, AttributeValue]]]
    ) -> None:
        """Publish a batch of events in one ``PUBLISH_BATCH`` wire message.

        The broker ingests all of them together and routes them through its
        batched matching path; per-event delivery semantics are identical to
        calling :meth:`publish` in a loop.
        """
        if not batch:
            return
        connection = self._require_connection()
        blobs = tuple(
            encode_event(
                values if isinstance(values, Event) else Event(self.schema, values)
            )
            for values in batch
        )
        connection.send(wire.encode_message(wire.PublishBatch(blobs)))

    def ack(self, seq: int) -> None:
        """Acknowledge processing up to ``seq`` (automatic by default)."""
        connection = self._require_connection()
        connection.send(wire.encode_message(wire.Ack(seq)))

    def _require_connection(self) -> Connection:
        if self._connection is None or not self._connection.is_open:
            raise TransportError(f"client {self.name!r} is not connected")
        return self._connection

    def _on_payload(self, payload: bytes) -> None:
        message = wire.decode_message(payload)
        if isinstance(message, wire.ConnAck):
            self.connected_broker = message.broker_name
            self._expected_backlog = message.backlog
        elif isinstance(message, (wire.SubAck, wire.UnsubAck)):
            self._resolve(message.request_id, result=message.subscription_id)
        elif isinstance(message, wire.ErrorReply):
            self._resolve(message.request_id, error=message.reason)
        elif isinstance(message, wire.EventDelivery):
            self._on_event_delivery(message)
        else:
            raise ProtocolError(f"client cannot handle {type(message).__name__}")

    def _resolve(
        self, request_id: int, *, result: Optional[int] = None, error: Optional[str] = None
    ) -> None:
        with self._lock:
            pending = self._pending.get(request_id)
        if pending is None:
            if error is not None:
                self.errors.append(error)
            return
        pending.result = result
        pending.error = error
        pending.done.set()

    def _on_event_delivery(self, message: wire.EventDelivery) -> None:
        event = decode_event(self.schema, message.event_data)
        if message.seq > self.last_seq:
            self.last_seq = message.seq
            self.deliveries.append((message.seq, event))
            if self.on_event is not None:
                self.on_event(event, message.seq)
        # Duplicates (redelivery overlap) are acked but not re-processed.
        if self.auto_ack and self.is_connected:
            self.ack(message.seq)

    @property
    def received_events(self) -> List[Event]:
        return [event for _seq, event in self.deliveries]

    def __repr__(self) -> str:
        return (
            f"BrokerClient({self.name!r}, connected={self.is_connected}, "
            f"last_seq={self.last_seq})"
        )
