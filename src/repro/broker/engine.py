"""The matching engine of a prototype broker (Figure 7).

"The matching engine, which implements one of the matching algorithms
described earlier, consists of a subscription manager, and an event parser.
A subscription manager receives a subscription from a client, parses the
subscription expression, and adds the subscription to the matching tree.
An event parser first parses a received event, then un-marshals it according
to the pre-defined event schema."

:class:`MatchingEngine` bundles exactly those two roles around any
:class:`~repro.matching.base.Matcher` (plain PST by default, factored on
request).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

from repro.errors import SubscriptionError
from repro.broker.codec import decode_event, encode_event
from repro.matching.base import MatcherEngine
from repro.matching.engines import DEFAULT_ENGINE, create_engine
from repro.matching.events import Event
from repro.matching.optimizations import FactoredMatcher
from repro.matching.parser import parse_predicate
from repro.matching.predicates import Predicate, Subscription
from repro.matching.pst import MatchResult
from repro.matching.schema import AttributeValue, EventSchema


class MatchingEngine:
    """Subscription manager + event parser over one information space.

    ``engine`` selects the matching implementation — ``"compiled"`` (the
    default: array kernels from :mod:`repro.matching.compile`) or ``"tree"``
    (the object-graph PST).  With ``factoring_attributes`` the matcher is a
    :class:`FactoredMatcher` whose sub-trees are searched with the selected
    engine."""

    def __init__(
        self,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        factoring_attributes: Optional[Sequence[str]] = None,
        engine: str = DEFAULT_ENGINE,
        shards: Optional[int] = None,
        shard_policy: Optional[str] = None,
        shard_workers: int = 0,
        backend: Optional[str] = None,
        aggregate: bool = False,
    ) -> None:
        self.schema = schema
        self.engine = engine
        if aggregate:
            # Aggregation compresses the subscription set inside the engine;
            # factoring splits it before the engine sees it — aggregation
            # takes precedence (mirrors ContentRouter).
            factoring_attributes = None
        if engine == "sharded":
            # Sharding is itself a partitioned index; it takes precedence
            # over factoring (FactoredMatcher only wraps tree/compiled).
            factoring_attributes = None
        if factoring_attributes:
            if domains is None:
                raise SubscriptionError("factoring requires finite attribute domains")
            self.matcher: Union[MatcherEngine, FactoredMatcher] = FactoredMatcher(
                schema,
                factoring_attributes,
                domains,
                residual_order=(
                    [n for n in attribute_order if n not in factoring_attributes]
                    if attribute_order is not None
                    else None
                ),
                engine=engine,
                backend=backend,
            )
        else:
            self.matcher = create_engine(
                engine,
                schema,
                attribute_order=attribute_order,
                domains=domains,
                shards=shards,
                shard_policy=shard_policy,
                shard_workers=shard_workers,
                backend=backend,
                aggregate=aggregate,
            )

    # ------------------------------------------------------------------
    # Subscription manager

    def add_subscription(
        self,
        subscriber: str,
        predicate: Union[Predicate, str],
        *,
        subscription_id: Optional[int] = None,
    ) -> Subscription:
        """Parse (when given an expression string) and register a
        subscription; returns the stored :class:`Subscription`."""
        if isinstance(predicate, str):
            predicate = parse_predicate(self.schema, predicate)
        subscription = Subscription(predicate, subscriber, subscription_id=subscription_id)
        self.matcher.insert(subscription)
        return subscription

    def remove_subscription(self, subscription_id: int) -> Subscription:
        return self.matcher.remove(subscription_id)

    @property
    def subscriptions(self) -> List[Subscription]:
        return self.matcher.subscriptions

    @property
    def subscription_count(self) -> int:
        return len(self.matcher.subscriptions)

    # ------------------------------------------------------------------
    # Event parser + matching

    def parse_event(self, data: bytes, *, publisher: str = "") -> Event:
        """Unmarshal a wire event against the information space's schema."""
        return decode_event(self.schema, data, publisher=publisher)

    def encode_event(self, event: Event) -> bytes:
        return encode_event(event)

    def match(self, event: Event) -> MatchResult:
        """Match an (already unmarshalled) event; returns subscriptions+steps."""
        return self.matcher.match(event)

    def match_data(self, data: bytes, *, publisher: str = "") -> MatchResult:
        """Parse-then-match in one call, as the broker's hot path does."""
        return self.match(self.parse_event(data, publisher=publisher))

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        """Match a batch of events through the matcher's batch kernel.

        Result ``i`` is exactly ``match(events[i])``.
        """
        return self.matcher.match_batch(events)

    def match_data_batch(
        self, blobs: Sequence[bytes], *, publisher: str = ""
    ) -> List[MatchResult]:
        """Parse-then-match a batch of wire events in one call."""
        return self.match_batch(
            [self.parse_event(data, publisher=publisher) for data in blobs]
        )

    def __repr__(self) -> str:
        return f"MatchingEngine({self.subscription_count} subscriptions)"
