"""The prototype broker of Section 4.2: matching engine, client and broker
protocols with reliable redelivery, connection manager, and pluggable
transports (in-memory and TCP with a sender-thread pool)."""

from repro.broker.client import BrokerClient, EventHandler, RequestFailed
from repro.broker.codec import ByteReader, ByteWriter, decode_event, encode_event
from repro.broker.engine import MatchingEngine
from repro.broker.event_log import EventLog
from repro.broker.messages import MessageType, decode_message, encode_message
from repro.broker.node import BrokerNetworkConfig, BrokerNode, ClientSession
from repro.broker.persistent_log import FileEventLog
from repro.broker.tcp import SenderPool, TcpConnection, TcpTransport, parse_endpoint
from repro.broker.transport import (
    Connection,
    InMemoryHub,
    InMemoryTransport,
    Listener,
    Transport,
)

__all__ = [
    "BrokerClient",
    "BrokerNetworkConfig",
    "BrokerNode",
    "ByteReader",
    "ByteWriter",
    "ClientSession",
    "Connection",
    "EventHandler",
    "EventLog",
    "FileEventLog",
    "InMemoryHub",
    "InMemoryTransport",
    "Listener",
    "MatchingEngine",
    "MessageType",
    "RequestFailed",
    "SenderPool",
    "TcpConnection",
    "TcpTransport",
    "Transport",
    "decode_event",
    "decode_message",
    "encode_event",
    "encode_message",
    "parse_endpoint",
]
