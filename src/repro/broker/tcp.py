"""TCP transport — the prototype's real network layer (Section 4.2).

Mirrors the paper's design: "To improve scalability, it implements an
asynchronous 'send' operation by maintaining a set of outgoing queues, one
per connection.  A broker thread sends a message by en-queueing it in the
appropriate queue.  A pool of sending threads is responsible for monitoring
these queues for outgoing messages, and sending them to destinations using
the underlying network protocol."

* Framing: 4-byte big-endian payload length + payload.
* Each connection has a receiver thread (blocking reads, frame reassembly,
  ``on_message`` callbacks) and an unbounded outgoing queue.
* A :class:`SenderPool` shared by the whole transport drains ready
  connections round-robin; ``send`` never blocks on the socket.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import ConnectionClosedError, TransportError
from repro.broker.transport import AcceptHandler, Connection, Listener, Transport

_LENGTH = struct.Struct(">I")
#: Frames above this are rejected as corrupt rather than allocated.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``."""
    host, separator, port_text = endpoint.rpartition(":")
    if not separator or not host:
        raise TransportError(f"endpoint must look like host:port, got {endpoint!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise TransportError(f"invalid port in endpoint {endpoint!r}") from None
    return host, port


class SenderPool:
    """The paper's pool of sending threads.

    Connections with queued output register themselves on a ready queue;
    pool threads pop a connection, drain a batch from its outgoing queue to
    the socket, and re-register it if output remains.  One connection is
    never drained by two threads at once (the ``_draining`` flag).
    """

    def __init__(self, num_threads: int = 2) -> None:
        if num_threads < 1:
            raise TransportError("sender pool needs at least one thread")
        self._ready: "queue.Queue[Optional[TcpConnection]]" = queue.Queue()
        self._threads = [
            threading.Thread(target=self._run, name=f"sender-{i}", daemon=True)
            for i in range(num_threads)
        ]
        self._closed = False
        for thread in self._threads:
            thread.start()

    def notify(self, connection: "TcpConnection") -> None:
        if not self._closed:
            self._ready.put(connection)

    def close(self) -> None:
        self._closed = True
        for _thread in self._threads:
            self._ready.put(None)

    def _run(self) -> None:
        while True:
            connection = self._ready.get()
            if connection is None:
                return
            connection._drain()


class TcpConnection(Connection):
    """One TCP socket with framing, a receiver thread and an outgoing queue."""

    def __init__(self, sock: socket.socket, pool: SenderPool) -> None:
        super().__init__()
        self._socket = sock
        self._pool = pool
        self._outgoing: Deque[bytes] = deque()
        self._lock = threading.Lock()
        self._draining = False
        self._open = True
        self._receiver = threading.Thread(target=self._receive_loop, daemon=True)

    def start(self) -> None:
        """Begin receiving (called once handlers are attached).  Idempotent —
        accepted connections are started by the listener, and a node calling
        ``start`` again per the base-class contract is harmless."""
        if not self._receiver.is_alive() and self._open:
            try:
                self._receiver.start()
            except RuntimeError:
                pass  # raced with another starter; the thread is running

    def send(self, payload: bytes) -> None:
        if not self._open:
            raise ConnectionClosedError("connection is closed")
        frame = _LENGTH.pack(len(payload)) + payload
        with self._lock:
            self._outgoing.append(frame)
            should_notify = not self._draining
        if should_notify:
            self._pool.notify(self)

    def _drain(self) -> None:
        """Called by a pool thread: flush the outgoing queue to the socket."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        try:
            while True:
                with self._lock:
                    if not self._outgoing:
                        return
                    frame = self._outgoing.popleft()
                try:
                    self._socket.sendall(frame)
                except OSError:
                    self._close_from_error()
                    return
        finally:
            with self._lock:
                self._draining = False

    def _receive_loop(self) -> None:
        try:
            while self._open:
                header = self._read_exact(_LENGTH.size)
                if header is None:
                    break
                (length,) = _LENGTH.unpack(header)
                if length > MAX_FRAME_BYTES:
                    break
                payload = self._read_exact(length)
                if payload is None:
                    break
                handler = self.on_message
                if handler is not None:
                    handler(payload)
        finally:
            self._close_from_error()

    def _read_exact(self, count: int) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._socket.recv(remaining)
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._socket.close()

    def _close_from_error(self) -> None:
        if not self._open:
            return
        self.close()
        handler = self.on_close
        if handler is not None:
            handler()

    @property
    def is_open(self) -> bool:
        return self._open


class _TcpListener(Listener):
    def __init__(
        self, sock: socket.socket, transport: "TcpTransport", on_accept: AcceptHandler
    ) -> None:
        self._socket = sock
        self._transport = transport
        self._on_accept = on_accept
        self._open = True
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self._socket.getsockname()[1]

    def _accept_loop(self) -> None:
        while self._open:
            try:
                client_socket, _address = self._socket.accept()
            except OSError:
                return
            client_socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = TcpConnection(client_socket, self._transport.pool)
            self._on_accept(connection)
            connection.start()

    def close(self) -> None:
        self._open = False
        try:
            self._socket.close()
        except OSError:
            pass


class TcpTransport(Transport):
    """TCP transport with a shared sender pool (see module docstring).

    Note for acceptors: ``on_accept`` runs on the accept thread and must
    attach ``on_message`` *before* returning — reception starts immediately
    after.
    """

    def __init__(self, *, sender_threads: int = 2) -> None:
        self.pool = SenderPool(sender_threads)
        self._listeners: list = []

    def listen(self, endpoint: str, on_accept: AcceptHandler) -> _TcpListener:
        host, port = parse_endpoint(endpoint)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        listener = _TcpListener(sock, self, on_accept)
        self._listeners.append(listener)
        return listener

    def connect(self, endpoint: str) -> TcpConnection:
        host, port = parse_endpoint(endpoint)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.connect((host, port))
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot connect to {endpoint!r}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        connection = TcpConnection(sock, self.pool)
        return connection

    def close(self) -> None:
        for listener in self._listeners:
            listener.close()
        self.pool.close()
