"""Schema-versioned, machine-readable benchmark artifacts (``BENCH_*.json``).

Every benchmark entry point — the chart harnesses under ``benchmarks/``,
``benchmarks/compare_engines.py``, the throughput study — emits one JSON
artifact next to its plain-text table.  The artifact is what the CI
``bench-smoke`` job uploads and what ``benchmarks/trend.py`` ingests to show
the cross-PR perf trajectory, so its shape is versioned and validated:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "schema_version": 1,
      "name": "chart3_matching_time",
      "created_unix": 1754500000.0,
      "machine": {"host": "...", "platform": "...", "python": "3.11.7"},
      "git_sha": "91ce3a2...",
      "engine": "compiled",
      "workload": {"subscription_counts": [1000, 5000], "num_events": 120},
      "wall_clock_s": 12.34,
      "metrics": { "...counter snapshot..." },
      "table": {"title": "...", "columns": [...], "rows": [[...], ...]}
    }

``created_unix`` is the one place wall-clock *time-of-day* is recorded (it
identifies the artifact, it is not a duration); every duration in the
payload comes from ``time.perf_counter`` via :class:`repro.obs.registry.Timer`.
"""

from __future__ import annotations

import json
import pathlib
import platform
import socket
import subprocess
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, List, Optional, Union

from repro.obs.registry import MetricsRegistry

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "bench_payload",
    "write_bench",
    "validate_bench",
    "load_bench",
    "load_bench_dir",
    "git_sha",
    "machine_fingerprint",
]

BENCH_SCHEMA = "repro.bench/v1"
BENCH_SCHEMA_VERSION = 1

#: Required top-level fields and the types :func:`validate_bench` enforces.
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "schema": (str,),
    "schema_version": (int,),
    "name": (str,),
    "created_unix": (int, float),
    "machine": (dict,),
    "git_sha": (str,),
    "engine": (str, type(None)),
    "workload": (dict,),
    "wall_clock_s": (int, float, type(None)),
    "metrics": (dict,),
}


def git_sha(repo_root: Optional[Union[str, pathlib.Path]] = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def machine_fingerprint() -> Dict[str, str]:
    """Enough machine identity to compare artifacts apples-to-apples."""
    return {
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def _workload_dict(workload: Any) -> Dict[str, Any]:
    """Normalize a workload/config description into a JSON-safe dict."""
    if workload is None:
        return {}
    if is_dataclass(workload) and not isinstance(workload, type):
        raw = asdict(workload)
    elif isinstance(workload, dict):
        raw = dict(workload)
    else:
        raw = {"description": repr(workload)}
    return json.loads(json.dumps(raw, default=repr))


def bench_payload(
    name: str,
    *,
    engine: Optional[str] = None,
    workload: Any = None,
    wall_clock_s: Optional[float] = None,
    metrics: Optional[Union[MetricsRegistry, Dict[str, Any]]] = None,
    table: Any = None,
    extra: Optional[Dict[str, Any]] = None,
    repo_root: Optional[Union[str, pathlib.Path]] = None,
) -> Dict[str, Any]:
    """Assemble a valid v1 artifact payload.

    ``workload`` may be a config dataclass (e.g. ``Chart3Config``), a plain
    dict, or anything ``repr``-able; ``metrics`` a registry or an existing
    snapshot/diff; ``table`` an :class:`~repro.experiments.tables.ExperimentTable`
    (anything with ``title``/``columns``/``rows``).
    """
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "git_sha": git_sha(repo_root),
        "engine": engine,
        "workload": _workload_dict(workload),
        "wall_clock_s": wall_clock_s,
        "metrics": (
            metrics.snapshot() if isinstance(metrics, MetricsRegistry) else dict(metrics or {})
        ),
    }
    if table is not None:
        payload["table"] = {
            "title": table.title,
            "columns": list(table.columns),
            "rows": json.loads(json.dumps([list(row) for row in table.rows], default=repr)),
        }
    if extra:
        payload["extra"] = json.loads(json.dumps(extra, default=repr))
    validate_bench(payload)
    return payload


def validate_bench(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Check a payload against the v1 schema; raises ``ValueError`` with
    every problem found (not just the first).  Returns the payload."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        raise ValueError(f"bench artifact must be a JSON object, got {type(payload).__name__}")
    for field, types in _REQUIRED_FIELDS.items():
        if field not in payload:
            problems.append(f"missing required field {field!r}")
        elif not isinstance(payload[field], types):
            expected = "/".join(t.__name__ for t in types)
            problems.append(
                f"field {field!r} must be {expected}, got {type(payload[field]).__name__}"
            )
    if payload.get("schema") not in (None, BENCH_SCHEMA):
        problems.append(f"unknown schema {payload.get('schema')!r} (expected {BENCH_SCHEMA!r})")
    if payload.get("schema_version") not in (None, BENCH_SCHEMA_VERSION):
        problems.append(
            f"unknown schema_version {payload.get('schema_version')!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    table = payload.get("table")
    if table is not None:
        if not isinstance(table, dict):
            problems.append("field 'table' must be an object")
        else:
            for table_field, table_type in (("title", str), ("columns", list), ("rows", list)):
                if not isinstance(table.get(table_field), table_type):
                    problems.append(f"table.{table_field} must be {table_type.__name__}")
    for key, entry in (payload.get("metrics") or {}).items():
        if not isinstance(entry, dict) or "type" not in entry:
            problems.append(f"metrics[{key!r}] must be an object with a 'type' field")
    if problems:
        raise ValueError(
            "invalid bench artifact: " + "; ".join(problems)
        )
    return payload


def bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def write_bench(
    payload: Dict[str, Any], directory: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Validate and write ``BENCH_<name>.json`` under ``directory``."""
    validate_bench(payload)
    target_dir = pathlib.Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / bench_filename(payload["name"])
    target.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return target


def load_bench(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read and validate one artifact."""
    payload = json.loads(pathlib.Path(path).read_text())
    return validate_bench(payload)


def load_bench_dir(
    directory: Union[str, pathlib.Path], *, recursive: bool = True
) -> List[Dict[str, Any]]:
    """All valid ``BENCH_*.json`` artifacts under ``directory``, oldest
    first (by ``created_unix``); invalid files are skipped, not fatal —
    a trend report over many PRs should survive one bad artifact."""
    root = pathlib.Path(directory)
    pattern = "**/BENCH_*.json" if recursive else "BENCH_*.json"
    artifacts: List[Dict[str, Any]] = []
    for path in sorted(root.glob(pattern)):
        try:
            payload = load_bench(path)
        except (ValueError, OSError, json.JSONDecodeError):
            continue
        payload["_path"] = str(path)
        artifacts.append(payload)
    artifacts.sort(key=lambda p: p.get("created_unix", 0))
    return artifacts
