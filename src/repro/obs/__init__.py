"""``repro.obs`` — the unified observability layer.

One metrics registry (:mod:`repro.obs.registry`) feeds every measurement
surface of the reproduction: the simulator's per-link and per-broker
counters, the protocols' per-hop refinement counts, the matcher engines'
compile/patch accounting, the CLI's ``--metrics-out`` flag, and the
schema-versioned ``BENCH_*.json`` benchmark artifacts
(:mod:`repro.obs.bench`) that the CI perf-regression gate consumes.

Quick tour::

    from repro import obs

    obs.configure(enabled=True)           # the global registry is off by default
    registry = obs.get_registry()
    hits = registry.counter("cache.hits")
    hits.inc()

    with registry.timer("load.wall_clock"):
        expensive()

    print(obs.export.to_json(registry))
    print(obs.export.to_prometheus(registry))

Component-owned registries (the simulator creates one per run) follow the
same API; see :mod:`repro.sim.runner`.
"""

from repro.obs import bench, export
from repro.obs.export import metrics_output
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Scope,
    Timer,
    configure,
    diff_snapshots,
    get_registry,
    set_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Scope",
    "MetricsRegistry",
    "configure",
    "diff_snapshots",
    "get_registry",
    "set_registry",
    "metrics_output",
    "bench",
    "export",
]
