"""Exporters for :mod:`repro.obs` registries.

Two wire formats, both dependency-free:

* **JSON** (:func:`to_json` / :func:`write_json`) — the machine-readable
  form consumed by ``BENCH_*.json`` artifacts, ``benchmarks/trend.py`` and
  the ``--metrics-out`` CLI flag;
* **Prometheus text exposition** (:func:`to_prometheus`) — so a deployment
  can serve the same counters to a real scraper without new code.

Snapshots are plain dicts (see :meth:`MetricsRegistry.snapshot`), so the
snapshot/diff API composes: export a snapshot taken before a run, one taken
after, or their :func:`~repro.obs.registry.diff_snapshots` delta, all
through the same functions.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import re
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs.registry import MetricsRegistry, diff_snapshots, get_registry

__all__ = ["to_json", "write_json", "to_prometheus", "metrics_output", "diff_snapshots"]

Snapshot = Dict[str, Dict[str, Any]]

#: Characters Prometheus forbids in metric names, collapsed to ``_``.
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: Flat snapshot keys look like ``name{k=v,k2=v2}`` or plain ``name``.
_FLAT_KEY = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _as_snapshot(source: Union[MetricsRegistry, Snapshot]) -> Snapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def to_json(source: Union[MetricsRegistry, Snapshot], *, indent: int = 2) -> str:
    """Serialize a registry (or a snapshot/diff) as a JSON object."""
    return json.dumps(_as_snapshot(source), indent=indent, sort_keys=True, default=str)


def write_json(
    source: Union[MetricsRegistry, Snapshot], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write :func:`to_json` output to ``path`` (parents created)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_json(source) + "\n")
    return target


@contextlib.contextmanager
def metrics_output(
    path: Optional[Union[str, pathlib.Path]],
    *,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Enable the (global) registry for the duration of a block and write its
    JSON snapshot to ``path`` on exit.

    This is how ``--metrics-out`` is threaded through the CLI and every
    experiment config: instruments only record if the registry was enabled
    when they were fetched, so the enable MUST happen before the experiment
    constructs its engines and protocols — wrapping the whole ``run_*`` body
    guarantees that ordering.  With ``path=None`` the block is a no-op
    passthrough (the registry's enabled state is untouched), so callers can
    wrap unconditionally.
    """
    target = get_registry() if registry is None else registry
    if path is None:
        yield target
        return
    was_enabled = target.enabled
    target.enable()
    try:
        yield target
    finally:
        write_json(target, path)
        if not was_enabled:
            target.disable()


def _split_flat_key(key: str) -> tuple[str, Dict[str, str]]:
    match = _FLAT_KEY.match(key)
    if match is None:  # defensive; snapshot keys are always well-formed
        return key, {}
    labels: Dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for pair in raw.split(","):
            label_key, _, label_value = pair.partition("=")
            labels[label_key] = label_value
    return match.group("name"), labels


def _prom_name(name: str) -> str:
    return _PROM_NAME_BAD.sub("_", name)


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    rendered = [f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        rendered.append(extra)
    return "{" + ",".join(rendered) + "}" if rendered else ""


def to_prometheus(source: Union[MetricsRegistry, Snapshot], *, namespace: str = "repro") -> str:
    """Render the Prometheus text exposition format (version 0.0.4).

    Histograms and timers become the conventional ``_bucket``/``_sum``/
    ``_count`` triplet with cumulative ``le`` buckets; timers are exported in
    seconds, which is the Prometheus convention for durations.
    """
    snapshot = _as_snapshot(source)
    lines: list[str] = []
    typed: set[str] = set()
    for key in sorted(snapshot):
        entry = snapshot[key]
        name, labels = _split_flat_key(key)
        metric = _prom_name(f"{namespace}_{name}" if namespace else name)
        kind = entry.get("type", "counter")
        if kind in ("counter", "gauge"):
            if metric not in typed:
                lines.append(f"# TYPE {metric} {kind}")
                typed.add(metric)
            lines.append(f"{metric}{_prom_labels(labels)} {entry['value']}")
        else:  # histogram / timer
            if metric not in typed:
                lines.append(f"# TYPE {metric} histogram")
                typed.add(metric)
            cumulative = 0
            for boundary, count in entry["buckets"]:
                cumulative += count
                le_label = 'le="{}"'.format(boundary)
                lines.append(f"{metric}_bucket{_prom_labels(labels, le_label)} {cumulative}")
            lines.append(f"{metric}_sum{_prom_labels(labels)} {entry['sum']}")
            lines.append(f"{metric}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
