"""A zero-dependency metrics registry for the hot match path.

The paper's evaluation is entirely quantitative — saturation rates per link,
matching steps per hop, matching time per subscription count — so every
component of the reproduction needs a uniform way to count things without
paying for it on the hot path.  This module provides the four instrument
kinds the charts consume:

* :class:`Counter` — a monotonically increasing integer (events published,
  matching steps, recompiles);
* :class:`Gauge` — a point-in-time value (waste ratio, queue depth);
* :class:`Histogram` — fixed bucket boundaries chosen at creation time
  (delivery latency, queue-depth samples);
* :class:`Timer` — monotonic-clock (``time.perf_counter``) duration
  accumulation, so wall-clock can never be conflated with the simulator's
  virtual ticks.

Cost model, by design:

* **disabled registry** — instrument constructors hand back shared no-op
  singletons whose methods are empty; the hot path pays one no-op method
  call and allocates nothing;
* **enabled registry** — fetching an instrument is a single dict lookup
  (callers fetch once, at setup time), and ``Counter.inc`` is one integer
  add.

Instruments are identified by a dotted name plus optional labels
(``registry.counter("sim.link.messages", src="B0", dst="B1")``); a
:class:`Scope` prefixes names so subsystems can namespace themselves
without string concatenation at every call site.  :meth:`MetricsRegistry.snapshot`
flattens everything into a plain dict (JSON-ready), and
:func:`diff_snapshots` subtracts two snapshots so a benchmark can report
exactly what one run added.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Scope",
    "MetricsRegistry",
    "diff_snapshots",
    "get_registry",
    "set_registry",
    "configure",
]

#: Labels as stored on instruments: a sorted tuple of (key, value) pairs.
LabelItems = Tuple[Tuple[str, str], ...]

#: Default bucket boundaries for timers, in seconds (1 us .. ~8 min).
DEFAULT_TIME_BUCKETS_S = tuple(
    round(base * scale, 9)
    for scale in (1e-6, 1e-3, 1.0)
    for base in (1, 2, 5, 10, 20, 50, 100, 200, 500)
)


def instrument_key(name: str, labels: LabelItems) -> str:
    """The canonical flat key for one instrument: ``name{k=v,...}``."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot_value(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({instrument_key(self.name, self.labels)!r}, value={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot_value(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({instrument_key(self.name, self.labels)!r}, value={self.value})"


class Histogram:
    """Counts of observations in fixed, creation-time bucket boundaries.

    ``boundaries`` are upper bounds (inclusive, ascending); one implicit
    overflow bucket catches everything above the last boundary.  ``observe``
    is a ``bisect`` plus an integer add — cheap enough for per-event use.
    """

    __slots__ = ("name", "labels", "boundaries", "bucket_counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, boundaries: Sequence[float], labels: LabelItems = ()) -> None:
        ordered = tuple(float(b) for b in boundaries)
        if not ordered:
            raise ValueError("a histogram needs at least one bucket boundary")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket boundaries must be strictly ascending: {ordered}")
        self.name = name
        self.labels = labels
        self.boundaries = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left keeps boundary-equal values in their own bucket, so
        # boundaries are inclusive upper bounds (Prometheus `le` semantics).
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return (self.total / self.count) if self.count else None

    def snapshot_value(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [
                [boundary, count]
                for boundary, count in zip(self.boundaries, self.bucket_counts)
            ]
            + [["+Inf", self.bucket_counts[-1]]],
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({instrument_key(self.name, self.labels)!r}, "
            f"count={self.count}, sum={self.total})"
        )


class Timer:
    """Accumulated wall-clock durations, measured on the monotonic clock.

    Always ``time.perf_counter`` — never ``time.time`` — so durations are
    immune to wall-clock adjustments and cannot be confused with the
    simulator's virtual tick clock.  Use as a context manager::

        with registry.timer("bench.chart3.wall_clock"):
            run_chart3(config)

    or measure a callable with :meth:`timeit`, or feed an externally
    measured duration with :meth:`observe_s`.
    """

    # _start exists only between __enter__ and __exit__.
    __slots__ = ("name", "labels", "histogram", "_start")

    kind = "timer"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
    ) -> None:
        self.name = name
        self.labels = labels
        self.histogram = Histogram(name, boundaries, labels)

    def observe_s(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def timeit(self, fn: Callable[[], Any]) -> Tuple[Any, float]:
        """Run ``fn``, record its duration, return ``(result, seconds)``."""
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        self.observe_s(elapsed)
        return result, elapsed

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.observe_s(time.perf_counter() - self._start)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total_s(self) -> float:
        return self.histogram.total

    def snapshot_value(self) -> Dict[str, Any]:
        value = self.histogram.snapshot_value()
        value["type"] = "timer"
        return value

    def __repr__(self) -> str:
        return (
            f"Timer({instrument_key(self.name, self.labels)!r}, "
            f"count={self.count}, total_s={self.total_s})"
        )


class _NoopInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()

    name = "noop"
    labels: LabelItems = ()
    value = 0
    count = 0
    total = 0.0
    total_s = 0.0
    mean = None

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_s(self, seconds: float) -> None:
        pass

    def timeit(self, fn: Callable[[], Any]) -> Tuple[Any, float]:
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    def __enter__(self) -> "_NoopInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def __repr__(self) -> str:
        return "<noop instrument>"


NOOP_INSTRUMENT = _NoopInstrument()


class Scope:
    """A name prefix over a registry (``scope("sim").counter("x")`` →
    ``sim.x``); scopes nest."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str, **labels: str) -> Counter:
        return self.registry.counter(self._qualify(name), **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self.registry.gauge(self._qualify(name), **labels)

    def histogram(self, name: str, boundaries: Sequence[float], **labels: str) -> Histogram:
        return self.registry.histogram(self._qualify(name), boundaries, **labels)

    def timer(self, name: str, **labels: str) -> Timer:
        return self.registry.timer(self._qualify(name), **labels)

    def scope(self, name: str) -> "Scope":
        return Scope(self.registry, self._qualify(name))

    def __repr__(self) -> str:
        return f"Scope({self.prefix!r})"


class MetricsRegistry:
    """All instruments of one measurement domain (see module docstring).

    A *disabled* registry hands out :data:`NOOP_INSTRUMENT` and records
    nothing; enable/disable is decided at instrument-fetch time, so callers
    that cache instruments (the supported hot-path pattern) must fetch them
    after :meth:`enable`.  Creation is thread-safe; the increment path is a
    plain int add (atomic enough under the GIL for counters, and the
    simulator is single-threaded by construction).
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self._enabled = enabled
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Mode

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every instrument (used between benchmark runs)."""
        with self._lock:
            self._instruments.clear()

    # ------------------------------------------------------------------
    # Instrument creation / lookup

    def _get_or_create(self, key: str, factory: Callable[[], Any]) -> Any:
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory()
                    self._instruments[key] = instrument
        return instrument

    @staticmethod
    def _label_items(labels: Dict[str, str]) -> LabelItems:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels: str) -> Counter:
        if not self._enabled:
            return NOOP_INSTRUMENT  # type: ignore[return-value]
        items = self._label_items(labels)
        return self._get_or_create(instrument_key(name, items), lambda: Counter(name, items))

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self._enabled:
            return NOOP_INSTRUMENT  # type: ignore[return-value]
        items = self._label_items(labels)
        return self._get_or_create(instrument_key(name, items), lambda: Gauge(name, items))

    def histogram(self, name: str, boundaries: Sequence[float], **labels: str) -> Histogram:
        if not self._enabled:
            return NOOP_INSTRUMENT  # type: ignore[return-value]
        items = self._label_items(labels)
        return self._get_or_create(
            instrument_key(name, items), lambda: Histogram(name, boundaries, items)
        )

    def timer(self, name: str, **labels: str) -> Timer:
        if not self._enabled:
            return NOOP_INSTRUMENT  # type: ignore[return-value]
        items = self._label_items(labels)
        return self._get_or_create(instrument_key(name, items), lambda: Timer(name, items))

    def scope(self, prefix: str) -> Scope:
        return Scope(self, prefix)

    # ------------------------------------------------------------------
    # Introspection

    def instruments(self, prefix: str = "") -> Iterator[Tuple[str, object]]:
        """All ``(flat key, instrument)`` pairs, sorted, optionally filtered
        by dotted-name prefix."""
        for key in sorted(self._instruments):
            if prefix and not key.startswith(prefix):
                continue
            yield key, self._instruments[key]

    def value_of(self, name: str, **labels: str) -> Optional[float]:
        """The current value of a counter/gauge by name+labels (``None`` if
        the instrument does not exist)."""
        key = instrument_key(name, self._label_items(labels))
        instrument = self._instruments.get(key)
        return getattr(instrument, "value", None) if instrument is not None else None

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        """A JSON-ready flat dict: ``{flat key: {type, value/...}}``."""
        return {
            key: instrument.snapshot_value()  # type: ignore[attr-defined]
            for key, instrument in self.instruments(prefix)
        }

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"MetricsRegistry({state}, {len(self._instruments)} instruments)"


def diff_snapshots(
    before: Dict[str, Dict[str, Any]], after: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """What ``after`` added relative to ``before``.

    Counters, histogram/timer counts and sums subtract; gauges keep the
    ``after`` value (a gauge is a level, not a flow); instruments absent
    from ``before`` pass through unchanged.  Bucket lists subtract
    per-bucket (boundaries are fixed at creation, so they always align).
    """
    result: Dict[str, Dict[str, Any]] = {}
    for key, entry in after.items():
        previous = before.get(key)
        if previous is None or previous.get("type") != entry.get("type"):
            result[key] = dict(entry)
            continue
        kind = entry.get("type")
        if kind in ("counter",):
            delta = entry["value"] - previous["value"]
            if delta:
                result[key] = {"type": kind, "value": delta}
        elif kind == "gauge":
            result[key] = dict(entry)
        elif kind in ("histogram", "timer"):
            count_delta = entry["count"] - previous["count"]
            if not count_delta:
                continue
            previous_buckets = {str(b): c for b, c in previous["buckets"]}
            result[key] = {
                "type": kind,
                "count": count_delta,
                "sum": entry["sum"] - previous["sum"],
                "min": entry["min"],
                "max": entry["max"],
                "buckets": [
                    [boundary, count - previous_buckets.get(str(boundary), 0)]
                    for boundary, count in entry["buckets"]
                ],
            }
        else:  # unknown types pass through verbatim
            result[key] = dict(entry)
    return result


# ----------------------------------------------------------------------
# The process-global default registry.
#
# Disabled by default: library code instruments itself unconditionally, and
# only pays when an entry point (``--metrics-out``, the benchmark suite)
# turns the registry on *before* the instrumented objects are constructed.

_default_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global default registry (disabled until configured)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global default (tests use this for isolation); returns the
    previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def configure(*, enabled: bool, reset: bool = False) -> MetricsRegistry:
    """Enable or disable the global registry (optionally clearing it)."""
    registry = get_registry()
    if reset:
        registry.reset()
    if enabled:
        registry.enable()
    else:
        registry.disable()
    return registry
