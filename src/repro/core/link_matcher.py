"""The link-matching search — Section 3.3.

Given an event, a broker refines the initialization mask of the publisher's
spanning tree against the annotated PST until every trit is Yes or No:

1. Start with the initialization mask.
2. At each node, replace every Maybe in the mask with the node's annotation
   trit.  If no Maybe remains, the search terminates.
3. Otherwise perform the node's test, fork a subsearch (with a copy of the
   mask) into each applicable child; when a subsearch returns, convert to Yes
   every Maybe whose returned trit is Yes.  After all children, remaining
   Maybes become No.
4. The event is sent on every link whose final trit is Yes.

The broker does *just enough* matching to decide its links: the search stops
as soon as the mask is fully refined, which on selective workloads is long
before a full match would finish — that is the efficiency claim Chart 2
measures via the ``steps`` counter.
"""

from __future__ import annotations

from typing import List

from repro.errors import RoutingError
from repro.core.annotation import TreeAnnotation
from repro.core.trits import TritVector
from repro.matching.events import Event
from repro.matching.pst import ParallelSearchTree, PSTNode


class LinkMatchResult:
    """Outcome of a link-matching search: the fully refined mask and the
    number of matching steps (node visits) it took."""

    __slots__ = ("mask", "steps")

    def __init__(self, mask: TritVector, steps: int) -> None:
        self.mask = mask
        self.steps = steps

    def __repr__(self) -> str:
        return f"LinkMatchResult(mask={self.mask}, steps={self.steps})"


class LinkMatcher:
    """Runs the refinement search over one annotated PST."""

    def __init__(self, tree: ParallelSearchTree, annotation: TreeAnnotation) -> None:
        self.tree = tree
        self.annotation = annotation

    def match_links(self, event: Event, initialization_mask: TritVector) -> LinkMatchResult:
        """Refine ``initialization_mask`` for ``event``; see module docstring."""
        if event.schema != self.tree.schema:
            raise RoutingError("event schema does not match the annotated tree")
        values = event.as_tuple()
        positions = tuple(
            self.tree.schema.position_of(name) for name in self.tree.attribute_order
        )
        steps = 0

        def search(node: PSTNode, mask: TritVector) -> TritVector:
            nonlocal steps
            steps += 1
            mask = mask.refine_with(self.annotation.vector_for(node))
            if not mask.has_maybe:
                return mask
            if node.is_leaf:
                # Leaf annotations are Yes/No only, so refinement above has
                # already removed every Maybe; this is unreachable unless an
                # annotation is stale.
                raise RoutingError("leaf annotation left Maybe trits — stale annotation?")
            value = values[positions[node.attribute_position]]
            children: List[PSTNode] = []
            child = node.value_branches.get(value)
            if child is not None:
                children.append(child)
            for test, range_child in node.range_branches:
                if test.evaluate(value):
                    children.append(range_child)
            if node.star_child is not None:
                children.append(node.star_child)
            for child in children:
                returned = search(child, mask)
                mask = mask.import_yes(returned)
                if not mask.has_maybe:
                    return mask
            return mask.close_maybes()

        final = search(self.tree.root, initialization_mask)
        return LinkMatchResult(final, steps)
