"""The paper's contribution: link matching.  Trit algebra, PST annotations,
virtual links and initialization masks, the refinement search, per-broker
routers, and the untimed content-routed network fabric."""

from repro.core.annotation import TreeAnnotation
from repro.core.fabric import ContentRoutedNetwork, DeliveryTrace
from repro.core.link_matcher import LinkMatcher, LinkMatchResult
from repro.core.masks import VirtualLink, VirtualLinkTable
from repro.core.router import ContentRouter, RouteDecision
from repro.core.trits import (
    M,
    N,
    PackedTrits,
    Trit,
    TritVector,
    Y,
    alternative_combine,
    alternative_combine_all,
    alternative_combine_bits,
    import_yes_bits,
    pack_tritvector,
    parallel_combine,
    parallel_combine_all,
    parallel_combine_bits,
    refine_bits,
    unpack_tritvector,
)

__all__ = [
    "ContentRoutedNetwork",
    "ContentRouter",
    "DeliveryTrace",
    "LinkMatchResult",
    "LinkMatcher",
    "M",
    "N",
    "PackedTrits",
    "RouteDecision",
    "TreeAnnotation",
    "Trit",
    "TritVector",
    "VirtualLink",
    "VirtualLinkTable",
    "Y",
    "alternative_combine",
    "alternative_combine_all",
    "alternative_combine_bits",
    "import_yes_bits",
    "pack_tritvector",
    "parallel_combine",
    "parallel_combine_all",
    "parallel_combine_bits",
    "refine_bits",
    "unpack_tritvector",
]
