"""The content-routed network fabric: all brokers' routers wired together.

:class:`ContentRoutedNetwork` is the *untimed* reference implementation of
the whole protocol: subscriptions are replicated to every broker (each broker
holds a copy of all subscriptions, per Section 3.1), and :meth:`publish`
walks an event hop by hop down the publisher's spanning tree, asking each
broker's :class:`~repro.core.router.ContentRouter` for its route decision.

It returns a :class:`DeliveryTrace` recording exactly which clients received
the event, through which links, with how many matching steps per broker —
the raw material for both the correctness tests (delivery equivalence with
brute-force matching) and the Chart 2 experiment (cumulative steps per hop
count).  The discrete-event simulator of :mod:`repro.sim` layers queues and
latencies over the same route decisions.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.errors import RoutingError, TopologyError
from repro.core.router import ContentRouter, RouteDecision
from repro.matching.events import Event
from repro.matching.parser import parse_predicate
from repro.matching.predicates import Predicate, Subscription
from repro.matching.pst import MatchResult
from repro.matching.schema import AttributeValue, EventSchema
from repro.network.paths import RoutingTable, all_routing_tables
from repro.network.spanning import SpanningTree, spanning_trees_for_publishers
from repro.network.topology import NodeKind, Topology
from repro.obs import get_registry


class DeliveryTrace:
    """Everything that happened while routing one event.

    * ``deliveries`` — client name → broker-hop count (number of brokers on
      the path from the publishing broker to the client's broker, inclusive;
      a client on the publishing broker is 1 hop in Chart 2's terms).
    * ``broker_steps`` — broker → matching steps spent there (brokers that
      never saw the event are absent).
    * ``links_used`` — each broker-to-broker link the event crossed, as
      ``(from, to)`` pairs; client links are not included.
    * ``decisions`` — the per-broker :class:`RouteDecision`, for inspection.
    """

    __slots__ = ("event", "root", "deliveries", "broker_steps", "links_used", "decisions")

    def __init__(self, event: Event, root: str) -> None:
        self.event = event
        self.root = root
        self.deliveries: Dict[str, int] = {}
        self.broker_steps: Dict[str, int] = {}
        self.links_used: List[Tuple[str, str]] = []
        self.decisions: Dict[str, RouteDecision] = {}

    @property
    def delivered_clients(self) -> Set[str]:
        return set(self.deliveries)

    @property
    def total_steps(self) -> int:
        return sum(self.broker_steps.values())

    def cumulative_steps_to(self, client: str) -> int:
        """Chart 2's quantity: the sum of matching steps at every broker on
        the event's path from the publishing broker to ``client``."""
        if client not in self.deliveries:
            raise RoutingError(f"{client!r} did not receive this event")
        broker = self._broker_of(client)
        total = 0
        while True:
            total += self.broker_steps.get(broker, 0)
            parent = self._parent_broker(broker)
            if parent is None:
                return total
            broker = parent

    def _broker_of(self, client: str) -> str:
        for broker, decision in self.decisions.items():
            if client in decision.deliver_to:
                return broker
        raise RoutingError(f"no decision delivered to {client!r}")

    def _parent_broker(self, broker: str) -> Optional[str]:
        for source, target in self.links_used:
            if target == broker:
                return source
        return None

    def render_tree(self) -> str:
        """ASCII rendering of the multicast tree this event actually took.

        One line per broker, indented by depth, with its matching steps and
        local deliveries — handy in examples and postmortems::

            B0 [8 steps]
            +- c0
            +- B1 [5 steps]
               +- c1
        """
        children: Dict[str, List[str]] = {}
        for source, target in self.links_used:
            children.setdefault(source, []).append(target)
        lines: List[str] = []

        def walk(broker: str, indent: str) -> None:
            steps = self.broker_steps.get(broker, 0)
            lines.append(f"{indent}{broker} [{steps} steps]")
            decision = self.decisions.get(broker)
            child_indent = indent + "   "
            if decision is not None:
                for client in decision.deliver_to:
                    lines.append(f"{child_indent}+- {client}")
            for child in sorted(children.get(broker, [])):
                walk(child, child_indent)

        walk(self.root, "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DeliveryTrace({len(self.deliveries)} deliveries, "
            f"{self.total_steps} steps, {len(self.links_used)} broker links)"
        )


class ContentRoutedNetwork:
    """The full link-matching system over a topology (see module docstring).

    Parameters mirror :class:`~repro.core.router.ContentRouter`; they are
    applied uniformly to every broker.
    """

    def __init__(
        self,
        topology: Topology,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        factoring_attributes: Optional[Sequence[str]] = None,
        engine: str = "compiled",
        shards: Optional[int] = None,
        shard_policy: Optional[str] = None,
        shard_workers: int = 0,
        backend: Optional[str] = None,
        aggregate: bool = False,
    ) -> None:
        topology.validate()
        if not topology.publishers():
            raise TopologyError("the topology declares no publishers")
        self.topology = topology
        self.schema = schema
        self.routing_tables: Dict[str, RoutingTable] = all_routing_tables(topology)
        self.spanning_trees: Dict[str, SpanningTree] = spanning_trees_for_publishers(topology)
        self.routers: Dict[str, ContentRouter] = {
            broker: ContentRouter(
                topology,
                broker,
                self.routing_tables[broker],
                self.spanning_trees,
                schema,
                attribute_order=attribute_order,
                domains=domains,
                factoring_attributes=factoring_attributes,
                engine=engine,
                shards=shards,
                shard_policy=shard_policy,
                shard_workers=shard_workers,
                backend=backend,
                aggregate=aggregate,
            )
            for broker in topology.brokers()
        }
        self._subscriptions: Dict[int, Subscription] = {}

    # ------------------------------------------------------------------
    # Subscription management (replicated to every broker)

    def subscribe(self, client: str, predicate: Union[Predicate, str]) -> Subscription:
        """Register a subscription for ``client`` (a subscriber node name).

        ``predicate`` may be a :class:`Predicate` or an expression string
        such as ``"issue='IBM' & price<120"``.
        """
        node = self.topology.node(client)
        if not node.kind.is_client:
            raise RoutingError(f"{client!r} is a broker; only clients subscribe")
        if isinstance(predicate, str):
            predicate = parse_predicate(self.schema, predicate)
        subscription = Subscription(predicate, client)
        for router in self.routers.values():
            router.add_subscription(
                Subscription(predicate, client, subscription_id=subscription.subscription_id)
            )
        self._subscriptions[subscription.subscription_id] = subscription
        return subscription

    def unsubscribe(self, subscription_id: int) -> Subscription:
        """Remove a subscription everywhere."""
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            raise RoutingError(f"unknown subscription id {subscription_id}")
        for router in self.routers.values():
            router.remove_subscription(subscription_id)
        return subscription

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions.values())

    # ------------------------------------------------------------------
    # Publishing

    def publish(
        self, publisher: str, event: Union[Event, Mapping[str, AttributeValue]]
    ) -> DeliveryTrace:
        """Route one event from ``publisher`` through the network.

        Returns the full :class:`DeliveryTrace`.  The walk follows each
        broker's route decision; because decisions follow the publisher's
        spanning tree, every broker is visited at most once.
        """
        node = self.topology.node(publisher)
        if node.kind is not NodeKind.PUBLISHER:
            raise RoutingError(f"{publisher!r} is not a publisher client")
        if not isinstance(event, Event):
            event = Event(self.schema, event, publisher=publisher)
        root = self.topology.broker_of(publisher)
        if root not in self.spanning_trees:
            raise RoutingError(f"no spanning tree rooted at {root!r}")
        trace = DeliveryTrace(event, root)
        registry = get_registry()
        registry.counter("fabric.events_published").inc()
        frontier: List[Tuple[str, int]] = [(root, 1)]
        visited: Set[str] = set()
        while frontier:
            broker, hop = frontier.pop()
            if broker in visited:
                raise RoutingError(
                    f"broker {broker!r} visited twice — spanning tree violation"
                )
            visited.add(broker)
            decision = self.routers[broker].route(event, root)
            # Chart 2's quantity at its source: trit-mask refinement steps
            # spent at each hop distance from the publishing broker.
            registry.counter("fabric.refinement_steps", hop=str(hop)).inc(decision.steps)
            trace.decisions[broker] = decision
            trace.broker_steps[broker] = decision.steps
            for client in decision.deliver_to:
                trace.deliveries[client] = hop
                registry.counter("fabric.deliveries", hop=str(hop)).inc()
            for neighbor in decision.forward_to:
                trace.links_used.append((broker, neighbor))
                frontier.append((neighbor, hop + 1))
        return trace

    def publish_batch(
        self,
        publisher: str,
        events: Sequence[Union[Event, Mapping[str, AttributeValue]]],
    ) -> List[DeliveryTrace]:
        """Route a batch of events from ``publisher`` in one tree walk.

        Trace ``i`` is exactly ``publish(publisher, events[i])``.  The walk
        visits each broker once with the subset of events that reached it
        (a broker is only ever reached through its spanning-tree parent, so
        subsets never split across visits) and routes that subset through
        :meth:`ContentRouter.route_batch`, which amortizes refinement across
        events sharing tested-attribute projections.
        """
        if not events:
            return []
        node = self.topology.node(publisher)
        if node.kind is not NodeKind.PUBLISHER:
            raise RoutingError(f"{publisher!r} is not a publisher client")
        batch: List[Event] = [
            event
            if isinstance(event, Event)
            else Event(self.schema, event, publisher=publisher)
            for event in events
        ]
        root = self.topology.broker_of(publisher)
        if root not in self.spanning_trees:
            raise RoutingError(f"no spanning tree rooted at {root!r}")
        traces = [DeliveryTrace(event, root) for event in batch]
        registry = get_registry()
        registry.counter("fabric.events_published").inc(len(batch))
        # Frontier entries carry (broker, hop, indices of events that reached
        # it); forwarding splits the subset by next-hop neighbor.
        frontier: List[Tuple[str, int, List[int]]] = [(root, 1, list(range(len(batch))))]
        visited: Set[str] = set()
        while frontier:
            broker, hop, indices = frontier.pop()
            if broker in visited:
                raise RoutingError(
                    f"broker {broker!r} visited twice — spanning tree violation"
                )
            visited.add(broker)
            decisions = self.routers[broker].route_batch(
                [batch[i] for i in indices], root
            )
            by_neighbor: Dict[str, List[int]] = {}
            for i, decision in zip(indices, decisions):
                trace = traces[i]
                registry.counter("fabric.refinement_steps", hop=str(hop)).inc(
                    decision.steps
                )
                trace.decisions[broker] = decision
                trace.broker_steps[broker] = decision.steps
                for client in decision.deliver_to:
                    trace.deliveries[client] = hop
                    registry.counter("fabric.deliveries", hop=str(hop)).inc()
                for neighbor in decision.forward_to:
                    trace.links_used.append((broker, neighbor))
                    group = by_neighbor.get(neighbor)
                    if group is None:
                        by_neighbor[neighbor] = [i]
                    else:
                        group.append(i)
            for neighbor, group in by_neighbor.items():
                frontier.append((neighbor, hop + 1, group))
        return traces

    def centralized_match(
        self, publisher: str, event: Union[Event, Mapping[str, AttributeValue]]
    ) -> MatchResult:
        """The Section 2 alternative: one full match at the publishing broker
        (the "centralized" line of Chart 2 and the first stage of the
        match-first baseline)."""
        if not isinstance(event, Event):
            event = Event(self.schema, event, publisher=publisher)
        root = self.topology.broker_of(publisher)
        return self.routers[root].match_locally(event)

    def would_deliver(
        self, publisher: str, event: Union[Event, Mapping[str, AttributeValue]]
    ) -> bool:
        """Quenching (as in Elvin, the paper's related work): would this
        event reach any subscriber at all?

        The publisher's broker answers with one link-matching pass — if no
        link resolves to Yes there, no broker downstream would have said
        otherwise (delivery equivalence), so the publisher can *quench* the
        event before paying to marshal and send it.
        """
        if not isinstance(event, Event):
            event = Event(self.schema, event)
        root = self.topology.broker_of(publisher)
        decision = self.routers[root].route(event, root)
        return bool(decision.forward_to or decision.deliver_to)

    def expected_recipients(self, event: Union[Event, Mapping[str, AttributeValue]]) -> Set[str]:
        """Ground truth for tests: subscribers whose predicate matches,
        evaluated brute force against the replicated subscription set."""
        if not isinstance(event, Event):
            event = Event(self.schema, event)
        return {
            s.subscriber for s in self._subscriptions.values() if s.predicate.matches(event)
        }

    def __repr__(self) -> str:
        return (
            f"ContentRoutedNetwork({len(self.routers)} brokers, "
            f"{len(self._subscriptions)} subscriptions, "
            f"{len(self.spanning_trees)} spanning trees)"
        )
