"""Trits and trit vectors — the three-valued routing logic of Section 3.

A *trit* is Yes / No / Maybe.  In a trit vector annotating a PST node, the
trit at link position *l* means:

* **Yes** — based on the tests performed so far, the event *will* be matched
  by some subscriber best reached by sending the message along link *l*;
* **No** — the event will definitely *not* be matched by any subscriber along
  that link;
* **Maybe** — further searching must take place to decide.

Two operators combine child annotations into a parent's (Figure 4):

* **Alternative Combine** ``A`` merges *alternatives* (the value branches —
  an event takes at most one of them): it keeps the least specific result, so
  any disagreement or Maybe yields Maybe (``x A x = x``, otherwise ``M``).
* **Parallel Combine** ``P`` merges branches searched *in parallel* (a value
  branch together with the ``*``-branch): it keeps the most liberal result
  (``Y`` dominates, then ``M``, then ``N``) — a guaranteed match on either
  parallel branch is a guaranteed match overall.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Sequence, Tuple, Union


class Trit(enum.Enum):
    """Yes / No / Maybe."""

    YES = "Y"
    NO = "N"
    MAYBE = "M"

    def __repr__(self) -> str:
        return f"Trit.{self.name}"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_letter(cls, letter: str) -> "Trit":
        try:
            return cls(letter.upper())
        except ValueError:
            raise ValueError(f"not a trit letter: {letter!r}") from None


Y = Trit.YES
N = Trit.NO
M = Trit.MAYBE

#: Parallel Combine keeps the *most liberal* trit: Y > M > N.
_PARALLEL_RANK = {N: 0, M: 1, Y: 2}


def alternative_combine(a: Trit, b: Trit) -> Trit:
    """Figure 4, left table: agreement is kept, anything else is Maybe."""
    return a if a is b else M


def parallel_combine(a: Trit, b: Trit) -> Trit:
    """Figure 4, right table: Yes dominates Maybe dominates No."""
    return a if _PARALLEL_RANK[a] >= _PARALLEL_RANK[b] else b


class TritVector:
    """An immutable fixed-length vector of trits, one per (virtual) link.

    Supports the two combine operators element-wise, refinement (Section 3.3
    step 2: replace each Maybe with the corresponding annotation trit), and
    the Yes-import step of the search (step 3).

    Construction accepts trits or a compact letter string::

        TritVector("MYY")  ==  TritVector([M, Y, Y])
    """

    __slots__ = ("_trits",)

    def __init__(self, trits: Union[str, Iterable[Trit]]) -> None:
        if isinstance(trits, str):
            self._trits: Tuple[Trit, ...] = tuple(Trit.from_letter(c) for c in trits)
        else:
            self._trits = tuple(trits)
        for trit in self._trits:
            if not isinstance(trit, Trit):
                raise TypeError(f"not a trit: {trit!r}")

    @classmethod
    def all_no(cls, length: int) -> "TritVector":
        """The identity of Parallel Combine and the leaf default."""
        return cls([N] * length)

    @classmethod
    def all_maybe(cls, length: int) -> "TritVector":
        return cls([M] * length)

    @classmethod
    def all_yes(cls, length: int) -> "TritVector":
        return cls([Y] * length)

    @classmethod
    def with_yes_at(cls, length: int, positions: Iterable[int]) -> "TritVector":
        """All-No except Yes at the given positions (leaf annotations)."""
        trits = [N] * length
        for position in positions:
            trits[position] = Y
        return cls(trits)

    def __len__(self) -> int:
        return len(self._trits)

    def __iter__(self) -> Iterator[Trit]:
        return iter(self._trits)

    def __getitem__(self, index: int) -> Trit:
        return self._trits[index]

    def alternative(self, other: "TritVector") -> "TritVector":
        """Element-wise Alternative Combine."""
        self._check_length(other)
        return TritVector(
            alternative_combine(a, b) for a, b in zip(self._trits, other._trits)
        )

    def parallel(self, other: "TritVector") -> "TritVector":
        """Element-wise Parallel Combine."""
        self._check_length(other)
        return TritVector(
            parallel_combine(a, b) for a, b in zip(self._trits, other._trits)
        )

    def refine_with(self, annotation: "TritVector") -> "TritVector":
        """Section 3.3 step 2: replace every Maybe with the annotation's trit."""
        self._check_length(annotation)
        return TritVector(
            annotation[i] if trit is M else trit for i, trit in enumerate(self._trits)
        )

    def import_yes(self, returned: "TritVector") -> "TritVector":
        """Section 3.3 step 3: convert Maybes to Yes where a subsearch said Yes."""
        self._check_length(returned)
        return TritVector(
            Y if trit is M and returned[i] is Y else trit
            for i, trit in enumerate(self._trits)
        )

    def close_maybes(self) -> "TritVector":
        """Section 3.3 step 3, final clause: remaining Maybes become No."""
        return TritVector(N if trit is M else trit for trit in self._trits)

    @property
    def has_maybe(self) -> bool:
        return M in self._trits

    def yes_positions(self) -> List[int]:
        return [i for i, trit in enumerate(self._trits) if trit is Y]

    def maybe_positions(self) -> List[int]:
        return [i for i, trit in enumerate(self._trits) if trit is M]

    def _check_length(self, other: "TritVector") -> None:
        if len(other) != len(self._trits):
            raise ValueError(
                f"trit vector length mismatch: {len(self._trits)} vs {len(other)}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TritVector):
            return NotImplemented
        return self._trits == other._trits

    def __hash__(self) -> int:
        return hash(self._trits)

    def __str__(self) -> str:
        return "".join(t.value for t in self._trits)

    def __repr__(self) -> str:
        return f"TritVector({str(self)!r})"


def alternative_combine_all(vectors: Sequence[TritVector], length: int) -> TritVector:
    """Alternative Combine over any number of vectors.

    The operator is associative and commutative, so the fold order does not
    matter.  With no vectors the result is all-No (there is no alternative
    through which anything could match).
    """
    if not vectors:
        return TritVector.all_no(length)
    result = vectors[0]
    for vector in vectors[1:]:
        result = result.alternative(vector)
    return result


def parallel_combine_all(vectors: Sequence[TritVector], length: int) -> TritVector:
    """Parallel Combine over any number of vectors; identity is all-No."""
    result = TritVector.all_no(length)
    for vector in vectors:
        result = result.parallel(vector)
    return result


# ----------------------------------------------------------------------
# Packed trit vectors — the bitmask encoding used by the compiled matcher.
#
# A trit vector of length n is encoded as two non-negative ints
# ``(yes_bits, maybe_bits)``: bit i of ``yes_bits`` set means trit i is Yes,
# bit i of ``maybe_bits`` set means Maybe, neither set means No.  The two
# masks never overlap.  All combine operators become a handful of machine
# word operations (arbitrary-precision for n > 64, courtesy of Python ints),
# which is what makes :mod:`repro.matching.compile` kernels allocation-free.

PackedTrits = Tuple[int, int]


def pack_tritvector(vector: Iterable[Trit]) -> PackedTrits:
    """Encode a trit vector (or any iterable of trits) as ``(yes, maybe)``."""
    yes = 0
    maybe = 0
    for i, trit in enumerate(vector):
        if trit is Y:
            yes |= 1 << i
        elif trit is M:
            maybe |= 1 << i
        elif trit is not N:
            raise TypeError(f"not a trit: {trit!r}")
    return yes, maybe


def unpack_tritvector(yes_bits: int, maybe_bits: int, length: int) -> TritVector:
    """Decode ``(yes, maybe)`` back into a :class:`TritVector` of ``length``."""
    if yes_bits < 0 or maybe_bits < 0:
        raise ValueError("packed trit masks must be non-negative")
    if yes_bits & maybe_bits:
        raise ValueError("packed trit masks overlap: a trit cannot be Yes and Maybe")
    if (yes_bits | maybe_bits) >> length:
        raise ValueError(f"packed trit masks have bits beyond length {length}")
    return TritVector(
        Y if yes_bits >> i & 1 else (M if maybe_bits >> i & 1 else N)
        for i in range(length)
    )


def parallel_combine_bits(
    a_yes: int, a_maybe: int, b_yes: int, b_maybe: int
) -> PackedTrits:
    """Packed element-wise Parallel Combine (Y > M > N)."""
    yes = a_yes | b_yes
    return yes, (a_maybe | b_maybe) & ~yes


def alternative_combine_bits(
    a_yes: int, a_maybe: int, b_yes: int, b_maybe: int, full: int
) -> PackedTrits:
    """Packed element-wise Alternative Combine (agreement kept, else M).

    ``full`` is the all-ones mask ``(1 << length) - 1``; it is needed because
    "both No" can only be recognized relative to the vector length.
    """
    yes = a_yes & b_yes
    no = (full & ~(a_yes | a_maybe)) & (full & ~(b_yes | b_maybe))
    return yes, full & ~(yes | no)


def refine_bits(m_yes: int, m_maybe: int, a_yes: int, a_maybe: int) -> PackedTrits:
    """Packed Section 3.3 step 2: Maybe positions take the annotation's trit."""
    return m_yes | (m_maybe & a_yes), m_maybe & a_maybe


def import_yes_bits(m_yes: int, m_maybe: int, returned_yes: int) -> PackedTrits:
    """Packed Section 3.3 step 3: Maybes become Yes where a subsearch said Yes."""
    return m_yes | (m_maybe & returned_yes), m_maybe & ~returned_yes
