"""A broker's content router: PST copy + annotations + masks + link matching.

Per the paper, "each broker in the network has a copy of all the
subscriptions, organized into a PST" (Section 3.1).  A :class:`ContentRouter`
is that per-broker state:

* the broker's matcher (a :class:`~repro.matching.base.MatcherEngine` — tree
  or compiled, selected by the ``engine`` parameter — or a
  :class:`FactoredMatcher` when factoring is enabled),
* its :class:`VirtualLinkTable` (virtual links + one initialization mask per
  spanning tree),
* the trit-vector annotations of the matcher's tree(s) — maintained
  incrementally inside the engine on the non-factored path, recomputed
  lazily per sub-tree on the factored path,
* :meth:`route` — run the Section 3.3 refinement for an event arriving on a
  given spanning tree and return the neighbors to forward to.

Routers do not move messages themselves; the fabric
(:class:`repro.core.fabric.ContentRoutedNetwork`) and the simulator drive
them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import RoutingError
from repro.core.annotation import TreeAnnotation
from repro.core.link_matcher import LinkMatcher, LinkMatchResult
from repro.core.masks import VirtualLinkTable
from repro.core.trits import TritVector, pack_tritvector, unpack_tritvector
from repro.matching.base import MatcherEngine
from repro.matching.compile import CompiledProgram, compile_tree
from repro.matching.digest import MatchDigest, mix_subscription_id
from repro.matching.events import Event
from repro.matching.optimizations import FactoredMatcher
from repro.matching.pst import MatchResult
from repro.matching.predicates import Subscription
from repro.matching.schema import AttributeValue, EventSchema
from repro.network.paths import RoutingTable
from repro.obs import get_registry
from repro.network.spanning import SpanningTree
from repro.network.topology import Topology


class RouteDecision:
    """What a broker decided for one event: neighbors to send to, split into
    next-hop brokers and locally attached clients, plus the matching steps
    spent deciding.

    ``mask`` is a **snapshot**: its bit positions denote the virtual links
    of the router's layout *at decision time*, and its refinement reflects
    the subscription set at decision time.  Any churn (add/remove) or link
    rebuild after the decision can silently change what the same bits mean,
    so the decision carries the router's ``subscription_epoch`` it was made
    under; callers holding a decision across churn must check it with
    :meth:`assert_current` before reusing the mask.
    """

    __slots__ = ("broker", "forward_to", "deliver_to", "steps", "mask", "epoch")

    def __init__(
        self,
        broker: str,
        forward_to: List[str],
        deliver_to: List[str],
        steps: int,
        mask: TritVector,
        epoch: int = 0,
    ) -> None:
        self.broker = broker
        self.forward_to = forward_to
        self.deliver_to = deliver_to
        self.steps = steps
        self.mask = mask
        self.epoch = epoch

    def assert_current(self, subscription_epoch: int) -> None:
        """Guard against cross-churn reuse of the mask snapshot: raises
        :class:`RoutingError` when the router's epoch moved on since this
        decision was stamped."""
        if self.epoch != subscription_epoch:
            raise RoutingError(
                f"stale RouteDecision: mask snapshot from epoch {self.epoch}, "
                f"router is at epoch {subscription_epoch} — re-route the event"
            )

    def __repr__(self) -> str:
        return (
            f"RouteDecision({self.broker!r} -> brokers {self.forward_to!r}, "
            f"clients {self.deliver_to!r}, {self.steps} steps, "
            f"epoch {self.epoch})"
        )


class ContentRouter:
    """Per-broker link-matching state (see module docstring)."""

    def __init__(
        self,
        topology: Topology,
        broker: str,
        routing_table: RoutingTable,
        spanning_trees: Mapping[str, SpanningTree],
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        factoring_attributes: Optional[Sequence[str]] = None,
        engine: str = "compiled",
        shards: Optional[int] = None,
        shard_policy: Optional[str] = None,
        shard_workers: int = 0,
        backend: Optional[str] = None,
        aggregate: bool = False,
    ) -> None:
        self.topology = topology
        self.broker = broker
        self.schema = schema
        self.engine = engine
        # Declared domains are a *contract*: annotation treats them as the
        # exhaustive value universe (that is what lets a covered level
        # promote to Yes, and what makes range annotations precise), so
        # routed events must honor them — route() enforces it.
        self.domains: Dict[str, frozenset] = (
            {name: frozenset(values) for name, values in domains.items()}
            if domains
            else {}
        )
        self.links = VirtualLinkTable(topology, broker, routing_table, spanning_trees)
        self._factored: Optional[FactoredMatcher] = None
        self._engine: Optional[MatcherEngine] = None
        if engine == "sharded":
            # The sharded engine is itself a partitioned index (the hash
            # policy partitions by first indexed attribute — factoring's own
            # idea), so sharding takes precedence over factoring.
            factoring_attributes = None
        if aggregate:
            # Aggregation compresses the engine's subscription set; the
            # factored matcher splits subscriptions across sub-trees before
            # the engine sees them, which would defeat (and complicate) the
            # covering forest — aggregation takes precedence.
            factoring_attributes = None
        if factoring_attributes:
            if domains is None:
                raise RoutingError("factoring requires finite attribute domains")
            self._factored = FactoredMatcher(
                schema,
                factoring_attributes,
                domains,
                residual_order=(
                    [n for n in attribute_order if n not in factoring_attributes]
                    if attribute_order is not None
                    else None
                ),
                engine=engine,
                backend=backend,
            )
        else:
            # Imported here rather than at module scope: repro.matching.engines
            # imports repro.core submodules, so a module-level import would
            # cycle when repro.matching.engines is the entry point.
            from repro.matching.engines import create_engine

            self._engine = create_engine(
                engine,
                schema,
                attribute_order=attribute_order,
                domains=domains,
                shards=shards,
                shard_policy=shard_policy,
                shard_workers=shard_workers,
                backend=backend,
                aggregate=aggregate,
            )
            self._engine.bind_links(self.links.num_links, self._link_of_subscriber)
        # Per-sub-tree link-matching state for the factored matcher; the
        # non-factored path keeps its annotations inside the engine instead.
        self._annotations: Dict[int, Tuple[TreeAnnotation, LinkMatcher]] = {}
        self._programs: Dict[int, CompiledProgram] = {}
        self._dirty = True
        # Subscription-set epoch: a monotonic version counter over this
        # router's subscription set and link layout, plus an order-independent
        # checksum of the registered subscription ids.  Together they tag
        # match digests (see route_digest) so a consumer can detect that the
        # minting set is not its own and fall back to full matching.
        self.subscription_epoch = 0
        self._subscription_checksum = 0
        # Observability (no-ops unless the global registry is enabled): route
        # invocations and PST node visits (= matching steps) per broker.
        registry = get_registry()
        self._obs_routes = registry.counter("router.route_calls", broker=broker)
        self._obs_steps = registry.counter("router.pst_node_visits", broker=broker)
        self._obs_forwards = registry.counter("router.forwards", broker=broker)
        self._obs_deliveries = registry.counter("router.local_deliveries", broker=broker)
        self._obs_refreshes = registry.counter("router.annotation_refreshes", broker=broker)
        self._obs_epoch = registry.gauge("router.subscription_epoch", broker=broker)

    # ------------------------------------------------------------------
    # Subscription maintenance

    @property
    def matcher(self) -> Union[MatcherEngine, FactoredMatcher]:
        """The underlying matcher (useful for inspection and local matching)."""
        return self._factored if self._factored is not None else self._engine

    def add_subscription(self, subscription: Subscription) -> None:
        """Register a subscription (its ``subscriber`` must be a client).

        The non-factored engine keeps its own annotations fresh incrementally
        along the subscription's path; only the factored matcher needs a full
        refresh (its trees restructure on the next compaction).
        """
        self.links.position_of(subscription.subscriber)  # validates early
        self.matcher.insert(subscription)
        if self._factored is not None:
            self._dirty = True
        self._bump_epoch(subscription.subscription_id)

    def remove_subscription(self, subscription_id: int) -> Subscription:
        subscription = self.matcher.remove(subscription_id)
        if self._factored is not None:
            self._dirty = True
        self._bump_epoch(subscription_id)
        return subscription

    def _bump_epoch(self, subscription_id: Optional[int] = None) -> None:
        self.subscription_epoch += 1
        if subscription_id is not None:
            # XOR of mixed ids: add-then-remove restores the old checksum,
            # and two routers agree iff they folded the same id multiset.
            self._subscription_checksum ^= mix_subscription_id(subscription_id)
        self._obs_epoch.set(self.subscription_epoch)

    def sync_epoch(self, epoch: int) -> None:
        """Fast-forward the epoch counter to a protocol-chosen value.

        :class:`~repro.protocols.link_matching.LinkMatchingProtocol` keeps
        all brokers' epoch counters in lockstep (they hold replicas of one
        subscription set) by syncing them after every protocol-level
        mutation; monotonic, so an in-flight digest minted before the sync
        can never be mistaken for current.
        """
        if epoch > self.subscription_epoch:
            self.subscription_epoch = epoch
            self._obs_epoch.set(epoch)

    @property
    def subscription_count(self) -> int:
        return len(self.matcher.subscriptions)

    def _link_of_subscriber(self, subscription: Subscription) -> int:
        try:
            return self.links.position_of(subscription.subscriber)
        except RoutingError:
            # Cut off by a failure: annotation layers treat a negative
            # position as "contributes no link" until a repair re-adds it.
            return -1

    # ------------------------------------------------------------------
    # Topology repair

    def rebuild_links(
        self,
        routing_table: RoutingTable,
        spanning_trees: Mapping[str, SpanningTree],
    ) -> bool:
        """Re-derive virtual links and masks after a topology repair.

        Returns ``True`` when the layout changed.  In that case every cached
        structure keyed on link positions or packed mask bits is invalid —
        the engine's annotation *and* its link caches (CompiledEngine's
        ``(projection, yes, maybe)``-keyed cache, ShardedEngine's per-shard
        outer caches) — so the engine is rebound, which flushes them.  A
        stale cache here is not a perf bug but a *correctness* bug: after a
        repair the same packed mask bits can denote different virtual links,
        so a cache hit would route to the pre-failure destinations.  When
        the layout is unchanged (a failed lateral link, say) nothing is
        rebound and warm caches survive — the surgical half of the repair.
        """
        changed = self.links.rebuild(routing_table, spanning_trees)
        if not changed:
            return False
        if self._engine is not None:
            self._engine.bind_links(self.links.num_links, self._link_of_subscriber)
        if self._factored is not None:
            self._dirty = True
        # The layout changed: the same mask bits now denote different
        # links, so digests minted (and decisions stamped) before the
        # rebuild must not be trusted against this router anymore.
        self._bump_epoch()
        return True

    def _refresh_annotations(self) -> None:
        """Rebuild link-matching state for every factored sub-tree — either
        annotated compiled programs or (TreeAnnotation, LinkMatcher) pairs,
        depending on the engine."""
        assert self._factored is not None
        self._annotations.clear()
        self._programs.clear()
        for _key, tree in self._factored.trees():
            if self.engine == "compiled":
                program = compile_tree(tree)
                program.annotate(self.links.num_links, self._link_of_subscriber)
                self._programs[id(tree)] = program
            else:
                annotation = TreeAnnotation(self.links.num_links, self._link_of_subscriber)
                annotation.annotate(tree)
                self._annotations[id(tree)] = (annotation, LinkMatcher(tree, annotation))
        self._dirty = False
        self._obs_refreshes.inc()

    # ------------------------------------------------------------------
    # Routing

    def route(
        self,
        event: Event,
        tree_root: str,
        *,
        restrict_to: Optional[FrozenSet[str]] = None,
    ) -> RouteDecision:
        """Run link matching for an event traveling on the spanning tree
        rooted at ``tree_root`` and decide this broker's sends.

        ``restrict_to`` narrows the initialization mask to virtual links
        carrying at least one of the given destinations — the replay path
        for recovered messages, which must not re-traverse subtrees that
        already received the event.

        Raises :class:`RoutingError` if the event violates a declared
        attribute domain — annotations assume domains are exhaustive, so an
        out-of-domain value could be routed unsoundly.
        """
        self._check_domains(event)
        mask = self.links.initialization_mask(tree_root)
        if restrict_to is not None:
            mask = self.links.restrict_mask(mask, restrict_to)
        if self._factored is None:
            assert self._engine is not None
            final = self._engine.match_links(event, mask)
        else:
            self._factored.compact()
            if self._dirty:
                self._refresh_annotations()
            tree = self._factored.tree_for_event(event)
            if tree is None:
                final = LinkMatchResult(mask.close_maybes(), 1)
            elif self.engine == "compiled":
                program = self._programs.get(id(tree))
                if program is None:
                    raise RoutingError("matcher tree appeared after annotation refresh")
                yes_bits, maybe_bits = pack_tritvector(mask)
                final_yes, steps = program.match_links(event, yes_bits, maybe_bits)
                final = LinkMatchResult(
                    unpack_tritvector(final_yes, 0, self.links.num_links), steps
                )
            else:
                annotation_pair = self._annotations.get(id(tree))
                if annotation_pair is None:
                    raise RoutingError("matcher tree appeared after annotation refresh")
                final = annotation_pair[1].match_links(event, mask)
        return self._decision_for(final)

    def route_batch(self, events: Sequence[Event], tree_root: str) -> List[RouteDecision]:
        """Route a batch of events traveling on the same spanning tree.

        Decision ``i`` is exactly ``route(events[i], tree_root)``; the batch
        entry point exists so the engine's deduplicating, cache-backed
        :meth:`~repro.matching.base.MatcherEngine.match_links_batch` (and,
        on the factored path, per-sub-tree grouping) can amortize the
        refinement across the batch.
        """
        if not events:
            return []
        for event in events:
            self._check_domains(event)
        mask = self.links.initialization_mask(tree_root)
        if self._factored is None:
            assert self._engine is not None
            finals: List[LinkMatchResult] = self._engine.match_links_batch(events, mask)
            return [self._decision_for(final) for final in finals]
        self._factored.compact()
        if self._dirty:
            self._refresh_annotations()
        results: List[Optional[LinkMatchResult]] = [None] * len(events)
        # Group by selected sub-tree so each compiled program refines its
        # events in one batch (sharing that program's link cache).
        groups: Dict[int, Tuple[object, List[int]]] = {}
        for i, event in enumerate(events):
            tree = self._factored.tree_for_event(event)
            if tree is None:
                results[i] = LinkMatchResult(mask.close_maybes(), 1)
                continue
            entry = groups.get(id(tree))
            if entry is None:
                groups[id(tree)] = (tree, [i])
            else:
                entry[1].append(i)
        if self.engine == "compiled":
            yes_bits, maybe_bits = pack_tritvector(mask)
            for tree_id, (tree, indices) in groups.items():
                program = self._programs.get(tree_id)
                if program is None:
                    raise RoutingError("matcher tree appeared after annotation refresh")
                packed = program.match_links_batch(
                    [events[i] for i in indices], yes_bits, maybe_bits
                )
                for i, (final_yes, steps) in zip(indices, packed):
                    results[i] = LinkMatchResult(
                        unpack_tritvector(final_yes, 0, self.links.num_links), steps
                    )
        else:
            for tree_id, (_tree, indices) in groups.items():
                annotation_pair = self._annotations.get(tree_id)
                if annotation_pair is None:
                    raise RoutingError("matcher tree appeared after annotation refresh")
                for i in indices:
                    results[i] = annotation_pair[1].match_links(events[i], mask)
        return [self._decision_for(final) for final in results]

    def _decision_for(self, final: LinkMatchResult) -> RouteDecision:
        neighbors = self.links.neighbors_for_mask(final.mask)
        forward_to: List[str] = []
        deliver_to: List[str] = []
        for neighbor in neighbors:
            if self.topology.node(neighbor).kind.is_client:
                deliver_to.append(neighbor)
            else:
                forward_to.append(neighbor)
        self._obs_routes.inc()
        self._obs_steps.inc(final.steps)
        self._obs_forwards.inc(len(forward_to))
        self._obs_deliveries.inc(len(deliver_to))
        return RouteDecision(
            self.broker,
            forward_to,
            deliver_to,
            final.steps,
            final.mask,
            self.subscription_epoch,
        )

    # ------------------------------------------------------------------
    # Match-once forwarding (digest minting and consumption)

    @property
    def supports_digests(self) -> bool:
        """Whether this router can mint and consume match digests.

        The factored matcher splits subscriptions across sub-trees before
        any engine sees them and has no projection surface; factored
        routers route every message the classic way.
        """
        return self._factored is None

    def route_digest(
        self, event: Event, tree_root: str
    ) -> Tuple[RouteDecision, Optional[MatchDigest]]:
        """Route like :meth:`route` *and* mint a :class:`MatchDigest`.

        Runs the full (non-trit) match once, takes the sorted matched
        subscription ids as the digest, and derives this broker's own mask
        by projecting those ids through the engine's leaf→link-bits table —
        the same projection every downstream hop will run, so the origin's
        decision and the consumers' decisions come from one computation.
        Falls back to plain :meth:`route` (returning no digest) on the
        factored path.
        """
        if self._factored is not None:
            return self.route(event, tree_root), None
        self._check_domains(event)
        assert self._engine is not None
        local = self._engine.match(event)
        ids = sorted(s.subscription_id for s in local.subscriptions)
        final = self._project_final(ids, tree_root, local.steps)
        return self._decision_for(final), self._mint(ids)

    def route_digest_batch(
        self, events: Sequence[Event], tree_root: str
    ) -> List[Tuple[RouteDecision, Optional[MatchDigest]]]:
        """Batch form of :meth:`route_digest` (same per-event results); the
        full match rides the engine's deduplicating batch kernel."""
        if not events:
            return []
        if self._factored is not None:
            return [(decision, None) for decision in self.route_batch(events, tree_root)]
        for event in events:
            self._check_domains(event)
        assert self._engine is not None
        out: List[Tuple[RouteDecision, Optional[MatchDigest]]] = []
        for local in self._engine.match_batch(events):
            ids = sorted(s.subscription_id for s in local.subscriptions)
            final = self._project_final(ids, tree_root, local.steps)
            out.append((self._decision_for(final), self._mint(ids)))
        return out

    def route_with_digest(
        self, event: Event, tree_root: str, digest: MatchDigest
    ) -> RouteDecision:
        """Convert an in-flight digest straight into this broker's link mask
        — O(|matched|) ORs instead of a refinement descent.

        Raises :class:`RoutingError` when the digest cannot be trusted
        here: minted under a different epoch or subscription-set checksum,
        naming ids this broker does not hold, or on a factored router.
        Callers fall back to full matching.
        """
        if self._factored is not None:
            raise RoutingError("factored routers cannot consume match digests")
        self._check_domains(event)
        if digest.epoch != self.subscription_epoch or (
            digest.checksum != self._subscription_checksum
        ):
            raise RoutingError(
                f"match digest epoch {digest.epoch} does not match router "
                f"epoch {self.subscription_epoch} at {self.broker!r} — "
                f"subscription sets may have diverged"
            )
        final = self._project_final(digest.ids, tree_root, 0)
        return self._decision_for(final)

    def _mint(self, ids: Sequence[int]) -> MatchDigest:
        return MatchDigest(self.subscription_epoch, self._subscription_checksum, ids)

    def _project_final(
        self, ids: Sequence[int], tree_root: str, base_steps: int
    ) -> LinkMatchResult:
        assert self._engine is not None
        mask = self.links.initialization_mask(tree_root)
        yes_bits, maybe_bits = pack_tritvector(mask)
        final_yes, steps = self._engine.project_links(ids, yes_bits, maybe_bits)
        return LinkMatchResult(
            unpack_tritvector(final_yes, 0, self.links.num_links),
            base_steps + steps,
        )

    def _check_domains(self, event: Event) -> None:
        if not self.domains:
            return
        for name, domain in self.domains.items():
            value = event.value(name)
            if value not in domain:
                raise RoutingError(
                    f"event value {value!r} for attribute {name!r} is outside "
                    f"the declared domain — routed events must honor declared "
                    f"domains (they are treated as exhaustive)"
                )

    def match_locally(self, event: Event) -> MatchResult:
        """Full (non-trit) matching against the broker's subscription copy —
        the centralized algorithm of Section 2, used by the match-first and
        flooding baselines and by Chart 2's "centralized" line."""
        return self.matcher.match(event)

    def match_locally_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        """Batch form of :meth:`match_locally` (same per-event results)."""
        return self.matcher.match_batch(events)

    def __repr__(self) -> str:
        return (
            f"ContentRouter({self.broker!r}, {self.subscription_count} subscriptions, "
            f"{self.links.num_links} virtual links)"
        )
